//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 implementation (Bernstein's ChaCha with 8
//! rounds, the variant rand_chacha exposes as `ChaCha8Rng`) — the keystream
//! is a real cryptographic-family PRNG, so all statistical properties the
//! workspace relies on (model initialization, workload interleaving,
//! synthetic graph generation) hold. Word-for-word output identity with the
//! upstream crate is *not* guaranteed (counter/nonce layout conventions
//! differ across versions); within this repository all randomness is
//! produced and consumed by the same implementation, so results stay
//! deterministic and reproducible for a given seed.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 random number generator: 256-bit key (the seed), 64-bit
/// block counter, 64-bit stream id.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; counter position is enough for debugging.
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("stream", &self.stream)
            .field("index", &self.index)
            .finish()
    }
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Selects an independent keystream (matching rand_chacha's API).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = a.clone();
        b.set_stream(99);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Bits are balanced.
        let ones: u32 = (0..1000u32).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // Zero key, counter 0: block must differ from all-zero and from the
        // raw constants (i.e. the rounds actually mix).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let w = rng.next_u32();
        assert_ne!(w, 0);
        assert_ne!(w, 0x6170_7865);
    }
}
