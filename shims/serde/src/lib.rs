//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this shim supplies the
//! small serialization surface the workspace uses: a JSON-like [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits over it, and `#[derive]`
//! macros (from the sibling `serde_derive` shim) for plain named-field
//! structs. The trait signatures are intentionally simpler than upstream
//! serde's visitor architecture — `serde_json` (also shimmed) is the only
//! consumer.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Objects keep insertion order so serialized
/// output matches struct field order, like derived serde impls do.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (covers u64 exactly).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    pub message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a struct field (used by derived impls).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let inner = v
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))?;
    T::from_value(inner).map_err(|e| DeError::new(format!("field `{name}`: {}", e.message)))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) if *n <= <$t>::MAX as u64 => Ok(*n as $t),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= <$t>::MAX as f64 => {
                        Ok(*f as $t)
                    }
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) if *n <= <$t>::MAX as u64 => Ok(*n as $t),
                    Value::I64(n) if *n >= <$t>::MIN as i64 => Ok(*n as $t),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u8> = Deserialize::from_value(&vec![1u8, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::U64(7))]);
        assert_eq!(field::<u64>(&obj, "a").unwrap(), 7);
        assert!(field::<u64>(&obj, "b").is_err());
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u8::from_value(&Value::U64(255)).is_ok());
    }
}
