//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for plain
//! named-field structs without generics — the only shape the workspace
//! derives on. Written against `proc_macro` directly (no syn/quote, which
//! are unavailable offline): the struct is scanned token-by-token for its
//! name and field identifiers, and the impl is emitted as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(struct_name, field_names)` from a derive input.
fn parse_named_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return Err("expected struct name".into()),
                };
                for t in &tokens[i + 2..] {
                    match t {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            return Ok((name, parse_fields(g.stream())));
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            return Err("tuple/unit structs are not supported".into());
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            return Err("generic structs are not supported".into());
                        }
                        _ => {}
                    }
                }
                return Err("struct body not found".into());
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("enums are not supported by the serde shim derive".into());
            }
            _ => {}
        }
        i += 1;
    }
    Err("no struct found in derive input".into())
}

/// Splits a brace-group body at top-level commas and takes, per field, the
/// identifier immediately preceding the first `:` (skipping attributes,
/// visibility modifiers, and doc comments).
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false; // once we've passed `:`, ignore until `,`
    for t in body {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == ',' => {
                in_type = false;
                last_ident = None;
            }
            TokenTree::Punct(ref p) if p.as_char() == ':' && !in_type => {
                if let Some(name) = last_ident.take() {
                    fields.push(name);
                }
                in_type = true;
            }
            TokenTree::Ident(ref id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_named_struct(input) {
        Ok(x) => x,
        Err(e) => return compile_error(&e),
    };
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_named_struct(input) {
        Ok(x) => x,
        Err(e) => return compile_error(&e),
    };
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::field(__v, {f:?})?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 ::core::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
