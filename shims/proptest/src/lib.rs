//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range and
//! tuple strategies, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically-seeded cases (seeded from the test's module
//! path and case index, so failures reproduce across runs). The first
//! failing case panics with the normal assertion message.

use std::ops::Range;

/// Number of cases run when no `proptest_config` is given.
pub const DEFAULT_CASES: u32 = 32;

/// Mirror of `proptest::test_runner::Config` for the `with_cases` form.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic test RNG (SplitMix64 over a seed hashed from the test name
/// and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. `sample` draws one arbitrary value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                if lo >= hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `prop::collection::vec(element_strategy, len_range)`.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.clone().sample(rng);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Strategy producing a single fixed value (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy drawing uniformly from a fixed list (`prop::sample::select`).
pub struct SelectStrategy<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for SelectStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len().max(1);
        self.options[i].clone()
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }

    pub mod sample {
        use super::super::SelectStrategy;

        /// Uniform draw from a non-empty list of options.
        pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            SelectStrategy { options }
        }
    }
}

pub mod prelude {
    pub use crate::{prop, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($cfg).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = $crate::DEFAULT_CASES; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = $cases:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = $cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 5u32..10,
            v in prop::collection::vec((0u64..4, -2i64..3), 1..20),
            f in -1.5f64..2.5,
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((-2..3).contains(b));
            }
            prop_assert!((-1.5..2.5).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn default_case_count_runs(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn deterministic_across_constructions() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
