//! Offline stand-in for `serde_json`: writer (compact + pretty) and a
//! recursive-descent parser over the shim `serde::Value` tree. Supports the
//! JSON subset the workspace produces: objects, arrays, strings with
//! standard escapes, numbers, booleans, null.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints shortest-roundtrip; integral floats get no ".0", which
        // parses back identically.
        out.push_str(&format!("{v}"));
    } else {
        // Upstream serde_json refuses non-finite floats; emitting null keeps
        // the document well-formed (readers treat it as missing data).
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: Option<usize>, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => write_seq(items.iter(), ('[', ']'), indent, out, |item, ind, o| {
            write_value(item, ind, o)
        }),
        Value::Object(fields) => write_seq(
            fields.iter(),
            ('{', '}'),
            indent,
            out,
            |(k, val), ind, o| {
                write_escaped(k, o);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(val, ind, o);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    brackets: (char, char),
    indent: Option<usize>,
    out: &mut String,
    mut write_item: impl FnMut(T, Option<usize>, &mut String),
) {
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(item, inner, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(brackets.1);
}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, &mut out);
    Ok(out)
}

/// Pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(0), &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return Err(Error::new("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-utf8 string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parses JSON and deserializes into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".into(), Value::Str("x \"quoted\"\n".into())),
            ("f".into(), Value::F64(-1.25)),
            ("neg".into(), Value::I64(-3)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&v, None, &mut s);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&v, Some(0), &mut s);
            s
        };
        assert!(pretty.contains("\"a\": 7"));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn large_u64_survives() {
        let v = Value::U64(u64::MAX);
        let mut s = String::new();
        write_value(&v, None, &mut s);
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let flag: bool = from_str("true").unwrap();
        assert!(flag);
    }
}
