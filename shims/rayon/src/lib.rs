//! Offline stand-in for `rayon`, with real data parallelism.
//!
//! The original shim lowered `par_iter()` to a sequential iterator. This
//! version keeps the exact same call-site API (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `map`, `flat_map`, `for_each`, `collect`, `sum`, and
//! `join`) but executes on `std::thread::scope` worker threads, one ordered
//! chunk per thread.
//!
//! Determinism contract: results are **bit-identical to the sequential
//! evaluation order**. Work is split into contiguous index chunks, each
//! chunk is evaluated left-to-right on its own thread, and chunk outputs are
//! concatenated in chunk order before `collect`/`sum` see them — so
//! reductions always combine in the same order no matter how threads are
//! scheduled. On a single-CPU host (or for < 2 items) everything runs
//! inline, which by construction produces the same bytes.

use std::num::NonZeroUsize;

/// Worker threads to use (the current host's available parallelism).
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A parallel pipeline: a vector of owned source items plus an adapter
/// chain. `take_source` removes the items (so they can be moved to worker
/// threads) while `&self` keeps the adapter closures shareable across the
/// scope's threads.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Owned items fed into the bottom of the adapter chain.
    type Source: Send;
    /// Items coming out of the top of the adapter chain.
    type Item: Send;

    /// Removes the source items, leaving an empty pipeline shell.
    fn take_source(&mut self) -> Vec<Self::Source>;

    /// Runs one source item through the adapter chain, appending every
    /// produced item to `out`.
    fn eval_into(&self, src: Self::Source, out: &mut Vec<Self::Item>);

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    fn flat_map<PI, F>(self, f: F) -> FlatMap<Self, F>
    where
        PI: IntoIterator,
        PI::Item: Send,
        F: Fn(Self::Item) -> PI + Send + Sync,
    {
        FlatMap { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let _ = self.map(f).run();
    }

    /// Evaluates the pipeline. Output order matches sequential evaluation.
    fn run(mut self) -> Vec<Self::Item> {
        let src = self.take_source();
        let threads = num_threads();
        if src.len() < 2 || threads < 2 {
            let mut out = Vec::new();
            for s in src {
                self.eval_into(s, &mut out);
            }
            return out;
        }
        let chunk_len = src.len().div_ceil(threads);
        let mut chunks: Vec<Vec<Self::Source>> = Vec::new();
        let mut src = src.into_iter();
        loop {
            let chunk: Vec<Self::Source> = src.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let this = &self;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for s in chunk {
                            this.eval_into(s, &mut out);
                        }
                        out
                    })
                })
                .collect();
            // Chunk order == index order: the concatenation is the
            // sequential output regardless of thread scheduling.
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        C::from(self.run())
    }

    /// Parallel map, sequential in-order reduction: deterministic even for
    /// non-associative reductions like `f32` sums.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }
}

/// Pipeline source: a vector of owned items.
pub struct ParVec<I> {
    items: Vec<I>,
}

impl<I: Send + Sync> ParallelIterator for ParVec<I> {
    type Source = I;
    type Item = I;

    fn take_source(&mut self) -> Vec<I> {
        std::mem::take(&mut self.items)
    }

    fn eval_into(&self, src: I, out: &mut Vec<I>) {
        out.push(src);
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Send + Sync,
{
    type Source = B::Source;
    type Item = R;

    fn take_source(&mut self) -> Vec<B::Source> {
        self.base.take_source()
    }

    fn eval_into(&self, src: B::Source, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.eval_into(src, &mut tmp);
        out.extend(tmp.into_iter().map(&self.f));
    }
}

pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, PI, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    PI: IntoIterator,
    PI::Item: Send,
    F: Fn(B::Item) -> PI + Send + Sync,
{
    type Source = B::Source;
    type Item = PI::Item;

    fn take_source(&mut self) -> Vec<B::Source> {
        self.base.take_source()
    }

    fn eval_into(&self, src: B::Source, out: &mut Vec<PI::Item>) {
        let mut tmp = Vec::new();
        self.base.eval_into(src, &mut tmp);
        for item in tmp {
            out.extend((self.f)(item));
        }
    }
}

/// Runs `a` on the calling thread and `b` on a scoped worker, returning
/// both results (inline when the host has a single CPU).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() < 2 {
        (a(), b())
    } else {
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon shim join worker panicked"))
        })
    }
}

pub mod prelude {
    pub use crate::{join, ParallelIterator};

    /// Drop-in for rayon's `IntoParallelRefIterator`: anything iterable by
    /// reference gets a `par_iter` over shared references.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: crate::ParallelIterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T, C: 'data> IntoParallelRefIterator<'data> for C
    where
        T: Sync + 'data,
        &'data C: IntoIterator<Item = &'data T>,
    {
        type Iter = crate::ParVec<&'data T>;
        fn par_iter(&'data self) -> Self::Iter {
            crate::ParVec {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Drop-in for rayon's `IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: crate::ParallelIterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T, C: 'data> IntoParallelRefMutIterator<'data> for C
    where
        T: Send + Sync + 'data,
        &'data mut C: IntoIterator<Item = &'data mut T>,
    {
        type Iter = crate::ParVec<&'data mut T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            crate::ParVec {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Drop-in for rayon's `IntoParallelIterator` (owned items).
    pub trait IntoParallelIterator {
        type Iter: crate::ParallelIterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: Send + Sync> IntoParallelIterator for Vec<I> {
        type Iter = crate::ParVec<I>;
        fn into_par_iter(self) -> Self::Iter {
            crate::ParVec { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential_collect() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<u64> = v.par_iter().flat_map(|x| vec![*x, x * 10]).collect();
        assert_eq!(flat, vec![1, 10, 2, 20, 3, 30, 4, 40]);
        let arr = [5u32, 6];
        let s: u32 = arr.par_iter().map(|x| *x).sum();
        assert_eq!(s, 11);
    }

    #[test]
    fn ordering_is_sequential_even_with_many_items() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
        let seq: Vec<usize> = v.iter().map(|&x| x * 3).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn float_sum_is_deterministic_and_sequential_order() {
        // Non-associative reduction: must equal the left-to-right sum.
        let v: Vec<f32> = (0..5_000).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let seq: f32 = v.iter().copied().sum();
        for _ in 0..8 {
            let par: f32 = v.par_iter().map(|&x| x).sum();
            assert_eq!(par.to_bits(), seq.to_bits());
        }
    }

    #[test]
    fn par_iter_mut_mutates_every_item() {
        let mut v = vec![1i64, 2, 3, 4, 5];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn into_par_iter_consumes_owned_items() {
        let v = vec![String::from("a"), String::from("b")];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!"]);
    }

    #[test]
    fn nested_par_iter_flat_map_preserves_order() {
        let outer = vec![0u32, 1, 2];
        let out: Vec<u32> = outer
            .par_iter()
            .flat_map(|&o| {
                let inner = [10u32, 20];
                let rows: Vec<u32> = inner.par_iter().map(move |&i| o * 100 + i).collect();
                rows
            })
            .collect();
        assert_eq!(out, vec![10, 20, 110, 120, 210, 220]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "temporal".len());
        assert_eq!((a, b), (4, 8));
    }
}
