//! Offline stand-in for `rayon`.
//!
//! `par_iter()` here is a sequential `slice::Iter` — same results, no
//! parallelism. The workspace only uses `.par_iter().map(..)/.flat_map(..)
//! .collect()`, which is semantically identical either way (rayon's
//! `collect` preserves input order), so callers need no changes.

pub mod prelude {
    /// Drop-in for rayon's `IntoParallelRefIterator`: anything iterable by
    /// reference gets a `par_iter` that is simply its sequential iterator.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data, C: 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator<Item = &'data T>,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential_collect() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let flat: Vec<u64> = v.par_iter().flat_map(|x| vec![*x, x * 10]).collect();
        assert_eq!(flat, vec![1, 10, 2, 20, 3, 30, 4, 40]);
        let arr = [5u32, 6];
        let s: u32 = arr.par_iter().map(|x| *x).sum();
        assert_eq!(s, 11);
    }
}
