//! The `rand::distributions` subset used by the workspace: the
//! [`Distribution`] trait and [`WeightedIndex`] for weighted categorical
//! sampling (alias-free cumulative-sum implementation — O(log n) sample).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    NoItem,
    InvalidWeight,
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items to sample from"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Weighted categorical distribution over indices `0..n`.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Weight types accepted by [`WeightedIndex::new`] (by value or reference).
pub trait IntoWeight {
    fn weight(self) -> f64;
}

macro_rules! impl_into_weight {
    ($($t:ty),*) => {$(
        impl IntoWeight for $t {
            fn weight(self) -> f64 {
                self as f64
            }
        }
        impl IntoWeight for &$t {
            fn weight(self) -> f64 {
                *self as f64
            }
        }
    )*};
}
impl_into_weight!(f32, f64, u8, u16, u32, u64, usize);

impl WeightedIndex {
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: IntoWeight,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.weight();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = <f64 as crate::Standard>::sample_standard(rng) * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Seq(u64);
    impl crate::RngCore for Seq {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let d = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut rng = Seq(1);
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "{counts:?}");
    }

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0f64, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([-1.0f64]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
