//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the `rand 0.8` API the workspace actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with `gen` and
//! `gen_range`, and `distributions::{Distribution, WeightedIndex}`. The
//! numeric behaviour (uniform ranges via rejection-free scaling, f64/f32 in
//! `[0, 1)`) matches `rand` closely enough for the statistical uses in this
//! repository (model initialization, synthetic workload generation); it is
//! not a cryptographic or bit-exact replacement.

pub mod distributions;

/// Core random-number source: 32/64-bit uniform words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same expansion
    /// rand uses for `seed_from_u64`-style convenience construction).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start, self.end);
                if lo >= hi {
                    // Mirrors rand's panic on an empty range; callers in this
                    // workspace guarantee non-empty ranges.
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo >= hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Extension methods on every RNG, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform to range scaling.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&b));
            let c: usize = rng.gen_range(0..=3);
            assert!(c <= 3);
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let s: f32 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = Counter(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
