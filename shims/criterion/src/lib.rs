//! Offline stand-in for `criterion`.
//!
//! Provides the same API shape the workspace's benches use (`Criterion`,
//! `benchmark_group`, `Throughput`, `black_box`, the `criterion_group!` /
//! `criterion_main!` macros) with a much simpler measurement loop: each
//! benchmark is calibrated briefly, then timed for a fixed number of
//! iterations, and the mean time per iteration is printed. No statistics,
//! plots, or saved baselines — just enough to run `cargo bench` offline and
//! eyeball relative numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one batch takes >= ~10ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
            let target_iters = if b.elapsed.is_zero() {
                iters
            } else {
                let scale = MEASURE_TARGET.as_secs_f64() / b.elapsed.as_secs_f64();
                ((iters as f64 * scale) as u64).max(1)
            };
            let mut m = Bencher {
                iters: target_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut m);
            report(name, throughput, m.iters, m.elapsed);
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

fn report(name: &str, throughput: Option<Throughput>, iters: u64, elapsed: Duration) {
    let per_iter_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / per_iter_ns;
            format!("  ({per_sec:.3e}/s)")
        }
        _ => String::new(),
    };
    println!("bench: {name:<40} {per_iter_ns:>14.1} ns/iter{rate}");
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Accepted for API compatibility; the shim derives its own iteration
    /// counts from wall-clock calibration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.finish();
        c.bench_function("mul", |b| b.iter(|| black_box(6u64) * black_box(7u64)));
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
