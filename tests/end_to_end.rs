//! End-to-end integration: graph → framework trace → model training →
//! simulated prefetching, across crate boundaries, at a scale that keeps
//! the whole file under a minute.

use mpgraph::core::{
    train_mpgraph, AmmaConfig, CstpConfig, DeltaPredictorConfig, DetectorChoice, MpGraphConfig,
    PagePredictorConfig, Variant,
};
use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph::graph::{rmat, standin, Dataset, RmatConfig};
use mpgraph::prefetchers::{BestOffset, BoConfig, NextLine, TrainCfg};
use mpgraph::sim::{simulate, NullPrefetcher, SimConfig};

fn tiny_amma() -> AmmaConfig {
    AmmaConfig {
        history: 6,
        attn_dim: 8,
        fusion_dim: 16,
        layers: 1,
        heads: 2,
    }
}

fn tiny_mpgraph_cfg() -> MpGraphConfig {
    MpGraphConfig {
        delta: DeltaPredictorConfig {
            amma: tiny_amma(),
            segments: 6,
            delta_range: 31,
            look_forward: 16,
            threshold: 0.4,
        },
        page: PagePredictorConfig {
            amma: tiny_amma(),
            page_vocab: 512,
            embed_dim: 8,
            head: mpgraph::core::PageHead::Softmax,
        },
        cstp: CstpConfig::default(),
        detector: DetectorChoice::SoftDt,
        variant: Variant::AmmaPs,
        probe_window: 24,
        pbot_capacity: 1024,
        latency: 0,
    }
}

fn tiny_tc() -> TrainCfg {
    TrainCfg {
        history: 6,
        max_samples: 600,
        epochs: 2,
        lr: 3e-3,
        seed: 99,
    }
}

fn scaled_sim() -> SimConfig {
    mpgraph::scaled_sim_config()
}

/// Traces GPOP PR over an R-MAT graph. Returns (LLC-level training stream,
/// raw test stream) per the Figure 6 workflow.
fn gpop_pr_trace() -> (
    Vec<mpgraph::frameworks::MemRecord>,
    Vec<mpgraph::frameworks::MemRecord>,
) {
    // 8K vertices: the 32 KiB value/acc arrays overflow the scaled LLC.
    let g = rmat(RmatConfig::new(13, 24_000, 5));
    let out = generate_trace(
        Framework::Gpop,
        App::Pr,
        &g,
        &TraceConfig {
            iterations: 4,
            record_limit: 600_000,
            ..TraceConfig::default()
        },
    );
    let split = out.trace.iteration_starts[1];
    let (a, b) = out.trace.records.split_at(split);
    let train_llc = mpgraph::sim::llc_filter(a, &scaled_sim());
    (train_llc, b[..b.len().min(200_000)].to_vec())
}

#[test]
fn mpgraph_full_pipeline_beats_no_prefetching() {
    let (train, test) = gpop_pr_trace();
    let mut mp = train_mpgraph(&train, 2, tiny_mpgraph_cfg(), &tiny_tc());
    let cfg = scaled_sim();
    let base = simulate(&test, &mut NullPrefetcher, &cfg);
    let with = simulate(&test, &mut mp, &cfg);
    assert!(
        with.ipc() > base.ipc(),
        "MPGraph IPC {} <= baseline {}",
        with.ipc(),
        base.ipc()
    );
    assert!(with.prefetches_issued > 0);
    assert!(with.accuracy() > 0.2, "accuracy {}", with.accuracy());
}

#[test]
fn mpgraph_beats_next_line_on_irregular_workload() {
    let (train, test) = gpop_pr_trace();
    let cfg = scaled_sim();
    let base = simulate(&test, &mut NullPrefetcher, &cfg);
    let mut nl = NextLine::new(6);
    let nl_res = simulate(&test, &mut nl, &cfg);
    let mut mp = train_mpgraph(&train, 2, tiny_mpgraph_cfg(), &tiny_tc());
    let mp_res = simulate(&test, &mut mp, &cfg);
    // The graph workload mixes sequential bins with irregular value
    // accesses; MPGraph's accuracy must beat blind next-line.
    assert!(
        mp_res.accuracy() > nl_res.accuracy(),
        "MPGraph acc {} <= next-line acc {}",
        mp_res.accuracy(),
        nl_res.accuracy()
    );
    assert!(mp_res.ipc_improvement(&base).is_finite());
}

#[test]
fn bo_improves_streaming_xstream_workload() {
    // X-Stream's scatter streams the edge array: BO must find a positive
    // offset and deliver real IPC gains — the sanity anchor for Figure 12.
    let g = standin(Dataset::Google, 512, 2);
    let out = generate_trace(
        Framework::XStream,
        App::Pr,
        &g,
        &TraceConfig {
            iterations: 3,
            record_limit: 400_000,
            ..TraceConfig::default()
        },
    );
    let split = out.trace.iteration_starts[1];
    let test = &out.trace.records[split..];
    let test = &test[..test.len().min(60_000)];
    let cfg = scaled_sim();
    let base = simulate(test, &mut NullPrefetcher, &cfg);
    let mut bo = BestOffset::new(BoConfig::default());
    let bo_res = simulate(test, &mut bo, &cfg);
    assert!(
        bo_res.ipc_improvement(&base) > 0.0,
        "BO improvement {}",
        bo_res.ipc_improvement(&base)
    );
}

#[test]
fn all_frameworks_produce_simulatable_traces() {
    let g = rmat(RmatConfig::new(8, 4000, 6));
    let cfg = scaled_sim();
    for fw in Framework::ALL {
        for &app in fw.apps() {
            let out = generate_trace(
                fw,
                app,
                &g,
                &TraceConfig {
                    iterations: 2,
                    record_limit: 120_000,
                    ..TraceConfig::default()
                },
            );
            let r = simulate(&out.trace.records, &mut NullPrefetcher, &cfg);
            // 4 cores × 4-wide front end bounds aggregate IPC at 16.
            assert!(
                r.ipc() > 0.0 && r.ipc() <= 16.0,
                "{} {} ipc {}",
                fw.name(),
                app.name(),
                r.ipc()
            );
            assert!(r.llc.accesses() > 0, "{} {}", fw.name(), app.name());
        }
    }
}

#[test]
fn detector_finds_transitions_in_real_trace() {
    use mpgraph::phase::evaluate_transitions;
    let (train, test_raw) = gpop_pr_trace();
    let det = mpgraph::core::build_detector(&train, 2, DetectorChoice::SoftDt);
    let mut det = det;
    let test = mpgraph::sim::llc_filter(&test_raw, &scaled_sim());
    let pcs: Vec<u64> = test.iter().map(|r| r.pc).collect();
    let phases: Vec<u8> = test.iter().map(|r| r.phase).collect();
    let truths: Vec<usize> = (1..phases.len())
        .filter(|&i| phases[i] != phases[i - 1])
        .collect();
    assert!(!truths.is_empty());
    let detections: Vec<usize> = pcs
        .iter()
        .enumerate()
        .filter_map(|(i, &pc)| det.update(pc).then_some(i))
        .collect();
    let min_gap = truths.windows(2).map(|w| w[1] - w[0]).min().unwrap_or(1000);
    let prf = evaluate_transitions(&detections, &truths, 16, min_gap / 2);
    assert!(prf.recall > 0.7, "recall {}", prf.recall);
    // Precision lands exactly at 0.5 on this deterministic trace (one
    // spurious detection per true transition at worst); require no worse.
    assert!(prf.precision >= 0.5, "precision {}", prf.precision);
}
