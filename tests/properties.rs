//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, spanning graph construction, the simulator, the
//! phase detectors, and the CSTP machinery.

use mpgraph::core::{CstpConfig, DeltaRange, Pbot};
use mpgraph::frameworks::MemRecord;
use mpgraph::graph::{Csr, VertexId};
use mpgraph::ml::tensor::Matrix;
use mpgraph::phase::ks_statistic;
use mpgraph::sim::{Cache, Lookup};
use proptest::prelude::*;

proptest! {
    /// CSR round-trip: every edge inserted appears exactly once.
    #[test]
    fn csr_preserves_edge_multiset(
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..200)
    ) {
        let g = Csr::from_edges(64, &edges);
        prop_assert_eq!(g.num_edges(), edges.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut actual: Vec<(VertexId, VertexId)> = (0..64u32)
            .flat_map(|v| g.neighbors(v).iter().map(move |&d| (v, d)))
            .collect();
        actual.sort_unstable();
        prop_assert_eq!(actual, expect);
    }

    /// Degree sums always equal the edge count.
    #[test]
    fn csr_degree_sum_is_edge_count(
        edges in prop::collection::vec((0u32..32, 0u32..32), 0..100)
    ) {
        let g = Csr::from_edges(32, &edges);
        let sum: usize = (0..32u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, edges.len());
    }

    /// Cache occupancy never exceeds capacity, and a just-inserted block is
    /// always resident.
    #[test]
    fn cache_capacity_invariant(blocks in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut c = Cache::new(4096, 4); // 16 sets × 4 ways
        for &b in &blocks {
            if c.access(b, false) == Lookup::Miss {
                c.insert(b, false, false);
            }
            prop_assert!(c.contains(b));
            prop_assert!(c.occupancy() <= 64);
        }
        // Stats are consistent.
        prop_assert_eq!(c.stats.accesses(), blocks.len() as u64);
    }

    /// The K-S statistic is a pseudo-metric: bounded, symmetric, and zero
    /// on identical samples.
    #[test]
    fn ks_statistic_properties(
        a in prop::collection::vec(-1e6f64..1e6, 1..80),
        b in prop::collection::vec(-1e6f64..1e6, 1..80)
    ) {
        let d_ab = ks_statistic(&a, &b);
        let d_ba = ks_statistic(&b, &a);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(ks_statistic(&a, &a) == 0.0);
    }

    /// Delta-range label mapping is a bijection on its domain.
    #[test]
    fn delta_label_bijection(range in 1i64..100, delta in -100i64..100) {
        let dr = DeltaRange { range };
        match dr.label_of(delta) {
            Some(l) => {
                prop_assert!(l < dr.num_labels());
                prop_assert_eq!(dr.delta_of(l), delta);
            }
            None => prop_assert!(delta == 0 || delta.abs() > range),
        }
    }

    /// PBOT always returns the most recent (offset, pc) per page and never
    /// exceeds its capacity.
    #[test]
    fn pbot_latest_wins(updates in prop::collection::vec((0u64..50, 0u64..64, 0u64..1000), 1..300)) {
        let mut pbot = Pbot::new(32);
        let mut last = std::collections::HashMap::new();
        for &(page, offset, pc) in &updates {
            pbot.update(page, offset, pc);
            last.insert(page, (offset, pc));
            prop_assert!(pbot.len() <= 32);
        }
        // The most recently updated page is always retrievable and exact.
        let (page, ..) = updates[updates.len() - 1];
        prop_assert_eq!(pbot.get(page), last.get(&page).copied());
    }

    /// Eq. 11: the CSTP max degree formula.
    #[test]
    fn cstp_degree_bound(ds in 1usize..8, dt in 0usize..8) {
        let cfg = CstpConfig { spatial_degree: ds, temporal_degree: dt };
        prop_assert_eq!(cfg.max_degree(), ds * (dt + 1));
    }

    /// CSTP batch dedup: for any raw candidate batch, the dedup'd batch is
    /// duplicate-free, keeps the first emission of every block (so the
    /// spatial-before-temporal priority survives), mirrors removals into
    /// the lane attribution, counts every suppression, and truncating to
    /// Eq. 11 keeps the batch within `Ds*(Dt+1)`.
    #[test]
    fn cstp_dedup_is_duplicate_free_and_bounded(
        raw in prop::collection::vec(0u64..24, 0..40),
        ds in 1usize..6,
        dt in 0usize..6,
    ) {
        use mpgraph::core::dedup_first_order;
        use mpgraph::sim::PrefetchLane;

        let raw_lanes: Vec<PrefetchLane> = (0..raw.len())
            .map(|i| if i % 2 == 0 { PrefetchLane::Spatial } else { PrefetchLane::Temporal })
            .collect();
        let mut out = raw.clone();
        let mut lanes = raw_lanes.clone();
        let suppressed = dedup_first_order(&mut out, Some(&mut lanes));

        // First-emission order, no duplicates, honest suppression count.
        let mut seen = std::collections::HashSet::new();
        let keep: Vec<usize> = (0..raw.len()).filter(|&i| seen.insert(raw[i])).collect();
        let expect: Vec<u64> = keep.iter().map(|&i| raw[i]).collect();
        prop_assert_eq!(&out, &expect);
        prop_assert_eq!(suppressed as usize, raw.len() - out.len());
        // Lane attribution stays parallel: each survivor keeps the lane of
        // its first emission.
        let expect_lanes: Vec<PrefetchLane> = keep.iter().map(|&i| raw_lanes[i]).collect();
        prop_assert_eq!(&lanes, &expect_lanes);
        // Eq. 11 after truncation.
        let cfg = CstpConfig { spatial_degree: ds, temporal_degree: dt };
        out.truncate(cfg.max_degree());
        prop_assert!(out.len() <= ds * (dt + 1));
    }

    /// The streaming log-bucketed histogram agrees with exact sorted-Vec
    /// nearest-rank percentiles to within its bucket resolution (values
    /// below 32 are exact; above, the midpoint representative is within
    /// ~1.6% — 5% + 2 is a safe envelope), and min/max/count are exact.
    #[test]
    fn histogram_percentiles_track_exact_sorted(
        vals in prop::collection::vec(0u64..1_000_000, 1..400)
    ) {
        use mpgraph::core::LatencyHistogram;

        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for p in [0.5, 0.9, 0.99] {
            let n = sorted.len();
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let got = h.percentile(p);
            let tol = (exact as f64 * 0.05).max(2.0);
            prop_assert!(
                (got as f64 - exact as f64).abs() <= tol,
                "p{} histogram {} vs exact {} (n={})", p, got, exact, n
            );
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, vals.len() as u64);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().expect("non-empty"));
    }

    /// Matrix softmax rows always sum to 1 and are within (0, 1].
    #[test]
    fn softmax_rows_are_distributions(
        vals in prop::collection::vec(-20f32..20.0, 4..40)
    ) {
        let cols = 4;
        let rows = vals.len() / cols;
        let m = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let s = m.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    /// MemRecord address decomposition: block/page/offset are consistent.
    #[test]
    fn record_decomposition(vaddr in 0u64..u64::MAX / 2) {
        let r = MemRecord { pc: 0, vaddr, core: 0, is_write: false, phase: 0, gap: 1, dep: false };
        prop_assert_eq!(r.block() / 64, r.page());
        prop_assert_eq!(r.block() % 64, r.page_offset());
        prop_assert!(r.page_offset() < 64);
    }

    /// Quantization round-trip error stays within the analytic bound.
    #[test]
    fn quantization_error_bound(vals in prop::collection::vec(-100f32..100.0, 1..64)) {
        use mpgraph::ml::QuantizedTensor;
        let m = Matrix::from_vec(1, vals.len(), vals.clone());
        let q = QuantizedTensor::quantize(&m);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-5;
        for (a, b) in vals.iter().zip(back.data.iter()) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} bound {}", a, b, bound);
        }
    }

    /// Every fault class, at any rate and seed: the simulator completes
    /// without panicking, preserves the instruction count, and the injected
    /// class is reported through SimResult::faults into a HealthReport.
    #[test]
    fn fault_injection_never_panics_and_is_reported(
        kind_idx in 0usize..5,
        rate in 0.3f64..1.0,
        seed in 0u64..1_000,
    ) {
        use mpgraph::core::HealthReport;
        use mpgraph::prefetchers::{BestOffset, BoConfig};
        use mpgraph::sim::{simulate_with_faults, FaultConfig, FaultInjector, FaultKind, SimConfig};

        let kind = FaultKind::ALL[kind_idx];
        // Sequential stream: Best-Offset locks onto +1 quickly, so the
        // drop/duplicate classes have a steady flow of candidates to hit.
        let trace: Vec<MemRecord> = (0..3_000u64)
            .map(|i| MemRecord {
                pc: 0x400000,
                vaddr: 0x10_0000_0000 + i * 64,
                core: 0,
                is_write: false,
                phase: 0,
                gap: 2,
                dep: false,
            })
            .collect();
        let mut bo = BestOffset::new(BoConfig::default());
        let mut inj = FaultInjector::new(FaultConfig::only(kind, rate, seed));
        let r = simulate_with_faults(&trace, &mut bo, &SimConfig::default(), Some(&mut inj));

        prop_assert_eq!(
            r.instructions,
            trace.iter().map(|t| 1 + t.gap as u64).sum::<u64>()
        );
        prop_assert!(r.cycles > 0);
        prop_assert!(
            r.faults.count(kind) > 0,
            "{} never fired at rate {}", kind.name(), rate
        );
        // Only the configured class fires.
        for &other in FaultKind::ALL.iter().filter(|&&k| k != kind) {
            prop_assert_eq!(r.faults.count(other), 0);
        }
        let mut hr = HealthReport::new();
        hr.set_faults(r.faults);
        prop_assert!(hr.saw_fault(kind));
    }
}
