//! Second integration suite: component interactions that the end-to-end
//! tests don't isolate — trace persistence through the full pipeline, the
//! LLC filter's consistency with the simulator, CSTP chaining against
//! trained predictors, and the compression path on framework traces.

use mpgraph::core::{
    chain_prefetch, AmmaConfig, CstpConfig, DeltaPredictor, DeltaPredictorConfig, PageHead,
    PagePredictor, PagePredictorConfig, Pbot, Variant,
};
use mpgraph::frameworks::{generate_trace, io, App, Framework, TraceConfig};
use mpgraph::graph::{rmat, RmatConfig};
use mpgraph::prefetchers::TrainCfg;
use mpgraph::sim::{llc_filter, simulate, NullPrefetcher};

fn small_trace() -> mpgraph::frameworks::Trace {
    let g = rmat(RmatConfig::new(9, 6000, 17));
    generate_trace(
        Framework::Gpop,
        App::Pr,
        &g,
        &TraceConfig {
            iterations: 3,
            record_limit: 400_000,
            ..TraceConfig::default()
        },
    )
    .trace
}

#[test]
fn saved_trace_simulates_identically() {
    let t = small_trace();
    let dir = std::env::temp_dir().join("mpgraph_pipeline_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.mpgtrc");
    io::save(&t, &path).unwrap();
    let back = io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let cfg = mpgraph::scaled_sim_config();
    let a = simulate(&t.records, &mut NullPrefetcher, &cfg);
    let b = simulate(&back.records, &mut NullPrefetcher, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.llc.misses, b.llc.misses);
    assert_eq!(a.instructions, b.instructions);
}

#[test]
fn llc_filter_is_consistent_with_engine_counters() {
    let t = small_trace();
    let cfg = mpgraph::scaled_sim_config();
    let filtered = llc_filter(&t.records, &cfg);
    let sim = simulate(&t.records, &mut NullPrefetcher, &cfg);
    assert_eq!(filtered.len() as u64, sim.llc.accesses());
    // Filtering is idempotent in *length* terms only if caches are cold
    // again — instead check the filtered stream is strictly sparser.
    assert!(filtered.len() < t.records.len());
    // Phase labels and dep flags survive filtering.
    assert!(filtered.iter().any(|r| r.phase == 1));
    assert!(filtered.iter().any(|r| r.dep));
}

fn tiny_amma() -> AmmaConfig {
    AmmaConfig {
        history: 5,
        attn_dim: 8,
        fusion_dim: 16,
        layers: 1,
        heads: 2,
    }
}

#[test]
fn cstp_chain_respects_degree_bound_on_real_trace() {
    let t = small_trace();
    let cfg = mpgraph::scaled_sim_config();
    let train = llc_filter(&t.records[..t.iteration_starts[1]], &cfg);
    let tc = TrainCfg {
        history: 5,
        max_samples: 300,
        epochs: 1,
        lr: 3e-3,
        seed: 4,
    };
    let dcfg = DeltaPredictorConfig {
        amma: tiny_amma(),
        segments: 6,
        delta_range: 15,
        look_forward: 8,
        threshold: 0.2,
    };
    let pcfg = PagePredictorConfig {
        amma: tiny_amma(),
        page_vocab: 256,
        embed_dim: 8,
        head: PageHead::Softmax,
    };
    let delta = DeltaPredictor::train(&train, 2, Variant::AmmaPs, dcfg, &tc);
    let page = PagePredictor::train(&train, 2, Variant::AmmaPs, pcfg, &tc);
    // Warm a PBOT from the training stream, then chain at many points.
    let mut pbot = Pbot::new(1024);
    for r in &train {
        pbot.update(r.page(), r.page_offset(), r.pc);
    }
    let cstp = CstpConfig {
        spatial_degree: 2,
        temporal_degree: 3,
    };
    let mut any_chained = false;
    let mut stats = mpgraph::core::CstpStats::default();
    for window in train.windows(5).skip(50).step_by(97).take(60) {
        let bh: Vec<(u64, u64)> = window.iter().map(|r| (r.block(), r.pc)).collect();
        let ph: Vec<(usize, u64)> = window
            .iter()
            .map(|r| (page.vocab.token_of(r.page()), r.pc))
            .collect();
        let phase = window.last().unwrap().phase as usize;
        let batch = chain_prefetch(&delta, &page, &pbot, &bh, &ph, phase, &cstp, &mut stats);
        assert!(
            batch.len() <= cstp.max_degree(),
            "batch {} > Eq.11 bound {}",
            batch.len(),
            cstp.max_degree()
        );
        if batch.len() > cstp.spatial_degree {
            any_chained = true; // the temporal chain fired at least once
        }
    }
    assert!(any_chained, "temporal chain never fired");
}

#[test]
fn distillation_pipeline_runs_on_framework_trace() {
    use mpgraph::core::{compress, DistillCfg};
    let t = small_trace();
    let cfg = mpgraph::scaled_sim_config();
    let train = llc_filter(&t.records[..t.iteration_starts[1]], &cfg);
    let tc = TrainCfg {
        history: 5,
        max_samples: 250,
        epochs: 1,
        lr: 3e-3,
        seed: 5,
    };
    let dcfg = DeltaPredictorConfig {
        amma: tiny_amma(),
        segments: 6,
        delta_range: 15,
        look_forward: 8,
        threshold: 0.3,
    };
    let teacher = DeltaPredictor::train(&train, 2, Variant::AmmaPs, dcfg, &tc);
    let dc = DistillCfg {
        student_amma: AmmaConfig {
            history: 5,
            attn_dim: 4,
            fusion_dim: 8,
            layers: 1,
            heads: 2,
        },
        temperature: 3.0,
        single_student: true,
        student_head: None,
    };
    let mut student = compress::distill_delta(&teacher, &train, &dc, &tc);
    assert!(student.final_loss.is_finite());
    let (before, after) = compress::quantize_delta(&mut student);
    assert!(after < before);
    // Quantized student still produces bounded predictions.
    let hist: Vec<(u64, u64)> = train[..5].iter().map(|r| (r.block(), r.pc)).collect();
    let scores = student.predict_scores(&hist, 0);
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
}

#[test]
fn detectors_generalize_across_apps_same_framework() {
    // The paper's premise: phases are a property of the *framework*, so a
    // detector trained on one app's trace transfers to another app of the
    // same framework (same code pages).
    use mpgraph::core::{build_detector, DetectorChoice};
    use mpgraph::phase::evaluate_transitions;
    let g = rmat(RmatConfig::new(9, 6000, 21));
    let mk = |app| {
        generate_trace(
            Framework::Gpop,
            app,
            &g,
            &TraceConfig {
                iterations: 3,
                record_limit: 400_000,
                ..TraceConfig::default()
            },
        )
        .trace
    };
    let cfg = mpgraph::scaled_sim_config();
    let pr = mk(App::Pr);
    let cc = mk(App::Cc);
    let train = llc_filter(&pr.records[..pr.iteration_starts[1]], &cfg);
    let mut det = build_detector(&train, 2, DetectorChoice::SoftDt);
    let test = llc_filter(&cc.records, &cfg);
    let pcs: Vec<u64> = test.iter().map(|r| r.pc).collect();
    let phases: Vec<u8> = test.iter().map(|r| r.phase).collect();
    let truths: Vec<usize> = (1..phases.len())
        .filter(|&i| phases[i] != phases[i - 1])
        .collect();
    assert!(!truths.is_empty());
    let detections: Vec<usize> = pcs
        .iter()
        .enumerate()
        .filter_map(|(i, &pc)| det.update(pc).then_some(i))
        .collect();
    let min_gap = truths
        .windows(2)
        .map(|w| w[1] - w[0])
        .min()
        .unwrap_or(500)
        .max(64);
    let prf = evaluate_transitions(&detections, &truths, 16, min_gap / 2);
    assert!(
        prf.recall > 0.6,
        "cross-app transfer recall {} (detections {:?})",
        prf.recall,
        detections.len()
    );
}
