//! Practical-prefetcher walkthrough (§6): train the full AMMA-PS teacher
//! stack, distill it into an 8× thinner single student, binary-encode the
//! page head, int8-quantize everything, estimate the Eq. 12 inference
//! latency for both, and compare end-to-end prefetching quality.
//!
//! Run: `cargo run --release --example compress_and_deploy`

use mpgraph::core::{
    amma_latency, build_detector, compress, train_mpgraph, AmmaConfig, DetectorChoice, DistillCfg,
    MpGraphConfig, MpGraphPrefetcher, PageHead,
};
use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph::graph::{rmat, RmatConfig};
use mpgraph::prefetchers::TrainCfg;
use mpgraph::sim::{llc_filter, simulate, NullPrefetcher};

fn main() {
    let graph = rmat(RmatConfig::new(13, 50_000, 9));
    let out = generate_trace(
        Framework::Gpop,
        App::Pr,
        &graph,
        &TraceConfig {
            iterations: 6,
            record_limit: 1_200_000,
            ..TraceConfig::default()
        },
    );
    let split = out.trace.iteration_starts[1];
    let (train_raw, test_all) = out.trace.records.split_at(split);
    let test = &test_all[..test_all.len().min(330_000)];
    let sim_cfg = mpgraph::scaled_sim_config();
    let train = &llc_filter(train_raw, &sim_cfg);
    let tc = TrainCfg::default();
    let cfg = MpGraphConfig::default();

    // --- Teacher (the Figure 10-12 configuration).
    let mut teacher = train_mpgraph(train, 2, cfg, &tc);
    let teacher_params = teacher.delta.num_params() + teacher.page.num_params();
    let teacher_lat = amma_latency(&cfg.delta.amma).total;
    println!(
        "teacher: {} params, Eq.12 latency ≈ {} cycles",
        teacher_params, teacher_lat
    );

    // --- Student: KD into a 4-wide AMMA, folded across phases, with the
    // binary-encoded page head, then int8-quantized.
    let dc = DistillCfg {
        student_amma: AmmaConfig::student(8),
        temperature: 3.0,
        single_student: true,
        student_head: Some(PageHead::BinaryEncoded),
    };
    let mut sd = compress::distill_delta(&teacher.delta, train, &dc, &tc);
    let mut sp = compress::distill_page(&teacher.page, train, &dc, &tc);
    let (df_bytes, di_bytes) = compress::quantize_delta(&mut sd);
    let (pf_bytes, pi_bytes) = compress::quantize_page(&mut sp);
    let student_params = sd.num_params() + sp.num_params();
    let student_lat = amma_latency(&dc.student_amma).total;
    println!(
        "student: {} params ({:.0}x fewer, {:.0}x smaller storage with int8), latency ≈ {} cycles",
        student_params,
        teacher_params as f64 / student_params as f64,
        (df_bytes + pf_bytes) as f64 / (di_bytes + pi_bytes) as f64 * teacher_params as f64
            / student_params as f64,
        student_lat
    );

    // --- Deploy both with their own modelled latencies.
    let mut teacher_cfg = cfg;
    teacher_cfg.latency = teacher_lat;
    teacher.cfg = teacher_cfg;
    let mut student_cfg = cfg;
    student_cfg.latency = student_lat;
    let detector = build_detector(train, 2, DetectorChoice::SoftDt);
    let mut student = MpGraphPrefetcher::from_parts(sd, sp, detector, student_cfg, 2, tc.history);
    // Distance prefetching hides the remaining latency (§6.2, Figure 14).
    student.dp_distance = 1;

    let base = simulate(test, &mut NullPrefetcher, &sim_cfg);
    let t = simulate(test, &mut teacher, &sim_cfg);
    let s = simulate(test, &mut student, &sim_cfg);
    println!("\n                       IPC impv  accuracy  coverage");
    println!(
        "teacher  (lat {:3}cyc)  {:+7.2}%   {:6.1}%   {:6.1}%",
        teacher_lat,
        t.ipc_improvement(&base),
        100.0 * t.accuracy(),
        100.0 * t.coverage()
    );
    println!(
        "student  (lat {:3}cyc)  {:+7.2}%   {:6.1}%   {:6.1}%  (with distance prefetching)",
        student_lat,
        s.ipc_improvement(&base),
        100.0 * s.accuracy(),
        100.0 * s.coverage()
    );
}
