//! Prefetcher shoot-out on an X-Stream SSSP workload: every baseline of
//! §5.4.1 against MPGraph on one trace, the single-workload version of
//! Figures 10-12.
//!
//! Run: `cargo run --release --example prefetcher_shootout`

use mpgraph::core::{train_mpgraph, MpGraphConfig};
use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph::graph::{standin, Dataset};
use mpgraph::prefetchers::{
    BestOffset, BoConfig, DeltaLstm, DeltaLstmConfig, Isb, IsbConfig, NextLine, TrainCfg,
    TransFetch, TransFetchConfig, Voyager, VoyagerConfig,
};
use mpgraph::sim::{llc_filter, simulate, NullPrefetcher, Prefetcher, SimResult};

fn main() {
    // The google web-graph stand-in at 1/256 scale.
    let graph = standin(Dataset::Google, 256, 7);
    let out = generate_trace(
        Framework::XStream,
        App::Sssp,
        &graph,
        &TraceConfig {
            iterations: 8,
            record_limit: 1_200_000,
            ..TraceConfig::default()
        },
    );
    let split = out.trace.iteration_starts.get(1).copied().unwrap_or(0);
    let (train_raw, test_all) = out.trace.records.split_at(split);
    let test = &test_all[..test_all.len().min(250_000)];
    let sim_cfg = mpgraph::scaled_sim_config();
    let train = &llc_filter(train_raw, &sim_cfg);
    println!(
        "X-Stream SSSP on google/256: {} train records, {} test records",
        train.len(),
        test.len()
    );

    let base = simulate(test, &mut NullPrefetcher, &sim_cfg);
    println!("\nbaseline IPC (no prefetch): {:.3}\n", base.ipc());
    println!(
        "{:12} {:>9} {:>9} {:>9}",
        "prefetcher", "accuracy", "coverage", "IPC impv"
    );

    let tc = TrainCfg::default();
    let report = |r: &SimResult, base: &SimResult| {
        println!(
            "{:12} {:8.1}% {:8.1}% {:+8.2}%",
            r.prefetcher,
            100.0 * r.accuracy(),
            100.0 * r.coverage(),
            r.ipc_improvement(base)
        );
    };

    let mut nl = NextLine::new(6);
    report(&simulate(test, &mut nl, &sim_cfg), &base);
    let mut bo = BestOffset::new(BoConfig::default());
    report(&simulate(test, &mut bo, &sim_cfg), &base);
    let mut isb = Isb::new(IsbConfig::default());
    report(&simulate(test, &mut isb, &sim_cfg), &base);
    let mut dl = DeltaLstm::train(train, DeltaLstmConfig::default(), &tc);
    report(&simulate(test, &mut dl, &sim_cfg), &base);
    let mut voy = Voyager::train(train, VoyagerConfig::default(), &tc);
    report(&simulate(test, &mut voy, &sim_cfg), &base);
    let mut tf = TransFetch::train(train, TransFetchConfig::default(), &tc);
    report(&simulate(test, &mut tf, &sim_cfg), &base);
    let mut mp = train_mpgraph(train, 2, MpGraphConfig::default(), &tc);
    report(&simulate(test, &mut mp, &sim_cfg), &base);
    let _ = mp.name();
}
