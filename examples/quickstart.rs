//! Quickstart: the whole MPGraph pipeline in ~60 lines.
//!
//! 1. generate a synthetic R-MAT graph;
//! 2. run GPOP-style PageRank over it, recording the multi-core memory
//!    trace (the stand-in for Pin + a real framework);
//! 3. train MPGraph's phase detector and AMMA-PS predictors on the first
//!    iteration;
//! 4. replay the remaining iterations through the ChampSim-class simulator
//!    with and without MPGraph and compare IPC.
//!
//! Run: `cargo run --release --example quickstart`

use mpgraph::core::{train_mpgraph, MpGraphConfig};
use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph::graph::{rmat, RmatConfig};
use mpgraph::prefetchers::TrainCfg;
use mpgraph::sim::{llc_filter, simulate, NullPrefetcher};

fn main() {
    // 1. A small power-law graph (2^13 vertices, 50K edges). Its vertex
    //    value arrays (~32 KiB each) overflow the scaled 32 KiB LLC — the
    //    paper's "fits in DRAM but not in the LLC" setup.
    let graph = rmat(RmatConfig::new(13, 50_000, 42));
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Trace GPOP PageRank: 1 training iteration + 5 evaluation ones.
    let out = generate_trace(
        Framework::Gpop,
        App::Pr,
        &graph,
        &TraceConfig {
            iterations: 6,
            record_limit: 1_500_000,
            ..TraceConfig::default()
        },
    );
    let trace = &out.trace;
    let split = trace.iteration_starts[1];
    let (train, test) = trace.records.split_at(split);
    let test = &test[..test.len().min(330_000)];
    // Models see the LLC: extract the L2-miss stream for training, exactly
    // as the paper's workflow does (Figure 6).
    let sim_cfg = mpgraph::scaled_sim_config();
    let train_llc = llc_filter(train, &sim_cfg);
    println!(
        "trace: {} records, {} phases/iteration, {} transitions",
        trace.records.len(),
        trace.num_phases,
        trace.transitions.len()
    );

    // 3. Train MPGraph (Soft-DT detector + AMMA-PS predictors + CSTP).
    let tc = TrainCfg::default();
    let mut mpgraph = train_mpgraph(
        &train_llc,
        trace.num_phases as usize,
        MpGraphConfig::default(),
        &tc,
    );
    println!(
        "trained MPGraph (delta loss {:.3})",
        mpgraph.delta.final_loss
    );

    // 4. Simulate. The scaled cache hierarchy keeps the graph bigger than
    //    the LLC, as in the paper's setup.
    let base = simulate(test, &mut NullPrefetcher, &sim_cfg);
    let with = simulate(test, &mut mpgraph, &sim_cfg);
    println!("\n             IPC     accuracy  coverage");
    println!("no prefetch  {:.3}    -         -", base.ipc());
    println!(
        "MPGraph      {:.3}    {:.1}%     {:.1}%",
        with.ipc(),
        100.0 * with.accuracy(),
        100.0 * with.coverage()
    );
    println!(
        "\nIPC improvement: {:+.2}%  (phase transitions handled: {})",
        with.ipc_improvement(&base),
        mpgraph.transitions_handled()
    );
}
