//! Phase-transition detection walkthrough (§4.2): run KSWIN, Soft-KSWIN,
//! DT, and Soft-DT over a PowerGraph PageRank PC stream (3 phases per
//! iteration) and compare precision/recall against the ground truth the
//! framework instrumentation provides.
//!
//! Run: `cargo run --release --example phase_detection`

use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph::graph::{rmat, RmatConfig};
use mpgraph::phase::{
    build_training_set, detection_lag, evaluate_transitions, DecisionTree, DtDetector, Kswin,
    KswinConfig, SoftDtDetector, SoftKswin, TransitionDetector,
};

fn main() {
    let graph = rmat(RmatConfig::new(10, 30_000, 3));
    let out = generate_trace(
        Framework::PowerGraph,
        App::Pr,
        &graph,
        &TraceConfig {
            iterations: 6,
            record_limit: 900_000,
            ..TraceConfig::default()
        },
    );
    let trace = &out.trace;
    // Detectors run at the LLC (inside the prefetcher): filter the raw
    // trace through the private caches first, then split train/test.
    let split = trace.iteration_starts[1];
    let filtered = mpgraph::sim::llc_filter_indexed(&trace.records, &mpgraph::scaled_sim_config());
    let train_recs: Vec<_> = filtered
        .iter()
        .filter(|(i, _)| *i < split)
        .map(|(_, r)| *r)
        .collect();
    let test_recs: Vec<_> = filtered
        .iter()
        .filter(|(i, _)| *i >= split)
        .map(|(_, r)| *r)
        .collect();
    let train_pcs: Vec<u64> = train_recs.iter().map(|r| r.pc).collect();
    let train_phases: Vec<u8> = train_recs.iter().map(|r| r.phase).collect();
    let pcs: Vec<u64> = test_recs.iter().map(|r| r.pc).collect();
    let phases: Vec<u8> = test_recs.iter().map(|r| r.phase).collect();
    let truths: Vec<usize> = (1..phases.len())
        .filter(|&i| phases[i] != phases[i - 1])
        .collect();
    println!(
        "PowerGraph PR: {} accesses, {} true transitions (3 phases/iteration)",
        pcs.len(),
        truths.len()
    );
    let min_gap = truths.windows(2).map(|w| w[1] - w[0]).min().unwrap_or(1000);

    let run = |name: &str, det: &mut dyn TransitionDetector| {
        let detections: Vec<usize> = pcs
            .iter()
            .enumerate()
            .filter_map(|(i, &pc)| det.update(pc).then_some(i))
            .collect();
        let prf = evaluate_transitions(&detections, &truths, 16, min_gap / 2);
        let (lag, _) = detection_lag(&detections, &truths, min_gap / 2);
        println!(
            "{name:12} detections {:4}  P {:.3}  R {:.3}  F1 {:.3}  mean lag {lag:.0}",
            detections.len(),
            prf.precision,
            prf.recall,
            prf.f1
        );
    };

    let cfg = KswinConfig::default();
    run("KSWIN", &mut Kswin::new(cfg));
    run("Soft-KSWIN", &mut SoftKswin::new(cfg));

    let window = 8;
    let (xs, ys) = build_training_set(&train_pcs, &train_phases, window, 7);
    let tree = DecisionTree::fit(&xs, &ys, 3, 8);
    run("DT", &mut DtDetector::new(tree.clone(), window));
    run("Soft-DT", &mut SoftDtDetector::new(tree, window, 64));
}
