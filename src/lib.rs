//! # mpgraph
//!
//! Facade crate for the MPGraph reproduction — *"Phases, Modalities,
//! Spatial and Temporal Locality: Domain Specific ML Prefetcher for
//! Accelerating Graph Analytics"* (Zhang, Kannan, Prasanna — SC '23).
//!
//! Re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`graph`] | CSR graphs, R-MAT, synthetic SNAP stand-ins |
//! | [`frameworks`] | instrumented GPOP / X-Stream / PowerGraph + BFS/CC/PR/SSSP/TC |
//! | [`sim`] | ChampSim-class 4-core cache/DRAM simulator (Table 3) |
//! | [`ml`] | from-scratch NN substrate (attention, LSTM, Adam, KD, int8) |
//! | [`phase`] | KSWIN / Soft-KSWIN / DT / Soft-DT transition detectors |
//! | [`prefetchers`] | BO, ISB, Delta-LSTM, Voyager, TransFetch baselines |
//! | [`core`] | AMMA, the two predictors, CSTP, the MPGraph prefetcher |
//! | [`mod@bench`] | experiment harness + the sharded `run --all` matrix driver |
//!
//! ```
//! use mpgraph::graph::{rmat, RmatConfig};
//! use mpgraph::frameworks::{generate_trace, App, Framework, TraceConfig};
//! use mpgraph::sim::{simulate, NullPrefetcher, SimConfig};
//!
//! let g = rmat(RmatConfig::new(8, 2000, 7));
//! let out = generate_trace(
//!     Framework::Gpop,
//!     App::Pr,
//!     &g,
//!     &TraceConfig { iterations: 2, ..TraceConfig::default() },
//! );
//! let result = simulate(&out.trace.records, &mut NullPrefetcher, &SimConfig::default());
//! assert!(result.ipc() > 0.0);
//! ```

pub use mpgraph_bench as bench;
pub use mpgraph_core as core;
pub use mpgraph_frameworks as frameworks;
pub use mpgraph_graph as graph;
pub use mpgraph_ml as ml;
pub use mpgraph_phase as phase;
pub use mpgraph_prefetchers as prefetchers;
pub use mpgraph_sim as sim;

/// A [`sim::SimConfig`] whose cache hierarchy is scaled down 64× (L1 2 KiB,
/// L2 8 KiB, LLC 32 KiB) to preserve the paper's key invariant — *the
/// graphs fit in DRAM but not in the LLC, and in particular the per-vertex
/// value arrays that drive the irregular dependent accesses overflow it* —
/// for the 64× reduced synthetic datasets this reproduction evaluates on
/// (DESIGN.md §5). Latencies and core parameters stay at Table 3 values.
/// The DRAM bus occupancy is also rescaled (32 → 8 cycles per line):
/// our traces log only data-memory instructions with short gaps, ~4× denser
/// in memory operations than the instruction streams Table 3's 8 GB/s was
/// budgeted for, so preserving the paper's bandwidth-per-instruction ratio
/// requires the same 4× scaling.
pub fn scaled_sim_config() -> sim::SimConfig {
    sim::SimConfig {
        l1_size: 2 * 1024,
        l2_size: 8 * 1024,
        llc_size: 32 * 1024,
        dram: sim::DramConfig {
            bus_cycles: 8,
            ..sim::DramConfig::default()
        },
        ..sim::SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_config_keeps_table3_latencies() {
        let cfg = super::scaled_sim_config();
        assert_eq!(cfg.l1_latency, 4);
        assert_eq!(cfg.l2_latency, 10);
        assert_eq!(cfg.llc_latency, 20);
        assert_eq!(cfg.llc_size, 32 * 1024);
        assert_eq!(cfg.num_cores, 4);
    }
}
