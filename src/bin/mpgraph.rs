//! `mpgraph` — command-line driver for the reproduction pipeline.
//!
//! ```text
//! mpgraph trace    --framework gpop --app pr --dataset rmat --div 64 \
//!                  --iterations 6 --out pr.mpgtrc
//! mpgraph info     pr.mpgtrc
//! mpgraph simulate pr.mpgtrc --prefetcher bo
//! mpgraph run      --framework gpop --app pr --dataset youtube --div 64
//! mpgraph run      --all --shards 4 --quick --metrics-out merged.json
//! mpgraph serve    pr.mpgtrc --streams 8 --load 2.0
//! ```
//!
//! `run` executes the full paper workflow on one workload: trace → LLC
//! filter → train MPGraph on iteration 0 → simulate the remaining
//! iterations against the no-prefetch baseline and BO. With `--quick` the
//! combo runs through the bench harness at `ExpScale::quick()` — the same
//! per-combo path the sharded matrix uses. With `--all` the full
//! framework × app × dataset matrix runs sharded across worker threads
//! and the per-combo snapshots merge deterministically (fixed combo
//! order), so the merged `--metrics-out` artifact is byte-identical at
//! any `--shards` count.

use mpgraph::core::trace::TraceConfig as TelemetryConfig;
use mpgraph::core::{
    build_detector, train_mpgraph, LiveTelemetry, LiveTelemetryConfig, MetricsSnapshot,
    MpGraphConfig, MpGraphPrefetcher, PrefetchScoreboard, PrefetchService, ServeConfig,
};
use mpgraph::frameworks::{generate_trace, io, App, Framework, Trace, TraceConfig};
use mpgraph::graph::{standin, Dataset};
use mpgraph::prefetchers::{BestOffset, BoConfig, Isb, IsbConfig, NextLine, Stride, TrainCfg};
use mpgraph::sim::{
    llc_filter, simulate, simulate_observed, FaultConfig, FaultInjector, FaultKind, LlcAccess,
    NullPrefetcher, PrefetchObserver, Prefetcher, SimResult,
};

fn usage() -> ! {
    eprintln!(
        "usage: mpgraph <command> [args]\n\
         commands:\n  \
         trace    --framework <gpop|xstream|powergraph> --app <bfs|cc|pr|sssp|tc>\n           \
         --dataset <name> [--div N] [--iterations N] [--limit N] --out FILE\n  \
         info     FILE\n  \
         simulate FILE [--prefetcher none|next-line|stride|bo|isb] [--scaled]\n           \
         [--fault corrupt-record|drop-prefetch|duplicate-prefetch|detector-misfire|stall-inference]\n           \
         [--fault-rate R] [--fault-seed S] [--stall-cycles N] [--metrics-out FILE]\n           \
         [--trace-out FILE]\n  \
         run      --framework F --app A [--dataset D (default: rmat)] [--div N]\n           \
         [--iterations N] [--quick] [--quant] [--metrics-out FILE] [--trace-out FILE]\n           \
         (--quant evaluates the int8 snapshot of the trained predictors)\n  \
         run --all [--shards N (default: cores)] [--quick] [--metrics-out FILE]\n           \
         [--trace-out FILE]\n  \
         serve    FILE [--streams N] [--load F] [--no-fuse] [--quant] [--stdin]\n           \
         [--metrics-out FILE] [--trace-out FILE] [--live-metrics FILE|-]\n           \
         [--expose FILE] [--live-interval N]\n           \
         (--quant serves the distilled int8 student; --stdin reads\n           \
         `stream pc vaddr [w]` lines, FILE only trains; --live-metrics\n           \
         streams NDJSON interval deltas, --expose rewrites a Prometheus\n           \
         text dump every --live-interval pumps)"
    );
    std::process::exit(2);
}

/// Minimal flag parser: `--key value` pairs plus positional args.
struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    flags.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                positional.push(raw[i].clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{key} must be a number")))
            })
            .unwrap_or(default)
    }

    fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{key} must be a number")))
            })
            .unwrap_or(default)
    }

    fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{key} must be a number")))
            })
            .unwrap_or(default)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn parse_framework(s: &str) -> Framework {
    match s.to_lowercase().as_str() {
        "gpop" => Framework::Gpop,
        "xstream" | "x-stream" => Framework::XStream,
        "powergraph" => Framework::PowerGraph,
        other => die(&format!(
            "unknown framework {other:?} (valid: {})",
            Framework::ALL.map(|f| f.name().to_lowercase()).join(" ")
        )),
    }
}

fn parse_app(s: &str) -> App {
    match s.to_lowercase().as_str() {
        "bfs" => App::Bfs,
        "cc" => App::Cc,
        "pr" | "pagerank" => App::Pr,
        "sssp" => App::Sssp,
        "tc" => App::Tc,
        other => die(&format!(
            "unknown app {other:?} (valid: {})",
            App::ALL.map(|a| a.name().to_lowercase()).join(" ")
        )),
    }
}

fn parse_fault(s: &str) -> FaultKind {
    FaultKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            die(&format!(
                "unknown fault {s:?} (try: {})",
                FaultKind::ALL.map(|k| k.name()).join(" ")
            ))
        })
}

/// Builds an injector from `--fault`/`--fault-rate`/`--fault-seed`/
/// `--stall-cycles`, or `None` when no fault was requested.
fn fault_injector(args: &Args) -> Option<FaultInjector> {
    let kind = parse_fault(args.get("fault")?);
    let rate = args.get_f64("fault-rate", 0.1);
    let seed = args.get_u64("fault-seed", 0xFA17);
    let mut cfg = FaultConfig::only(kind, rate, seed);
    if let Some(cycles) = args.get("stall-cycles") {
        cfg.stall_cycles = cycles
            .parse()
            .unwrap_or_else(|_| die("--stall-cycles must be a number"));
    }
    cfg.validate().unwrap_or_else(|e| die(&e));
    Some(FaultInjector::new(cfg))
}

fn parse_dataset(s: &str) -> Dataset {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            die(&format!(
                "unknown dataset {s:?} (valid: {})",
                Dataset::ALL.map(|d| d.name()).join(" ")
            ))
        })
}

fn build_trace(args: &Args) -> Trace {
    let fw = parse_framework(args.get("framework").unwrap_or_else(|| usage()));
    let app = parse_app(args.get("app").unwrap_or_else(|| usage()));
    if !fw.apps().contains(&app) {
        die(&format!(
            "{} does not ship {} (Table 1); available: {}",
            fw.name(),
            app.name(),
            fw.apps()
                .iter()
                .map(|a| a.name().to_lowercase())
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    let ds = parse_dataset(args.get("dataset").unwrap_or("rmat"));
    let div = args.get_usize("div", 64);
    let iterations = args.get_usize("iterations", 6);
    let limit = args.get_usize("limit", 2_000_000);
    let g = standin(ds, div, 0xC11);
    eprintln!(
        "tracing {} {} on {}/{} ({} vertices, {} edges)...",
        fw.name(),
        app.name(),
        ds.name(),
        div,
        g.num_vertices(),
        g.num_edges()
    );
    generate_trace(
        fw,
        app,
        &g,
        &TraceConfig {
            iterations,
            record_limit: limit,
            ..TraceConfig::default()
        },
    )
    .trace
}

/// Builds a scoreboard when `--metrics-out` or `--trace-out` was given, so
/// the simulate/run commands pay the observer cost only when the user asked
/// for metrics or a trace. `--trace-out` additionally arms the flight
/// recorder and windowed telemetry.
fn scoreboard_for(args: &Args, num_phases: usize) -> Option<PrefetchScoreboard> {
    let phases = num_phases.max(1);
    if args.get("trace-out").is_some() {
        Some(PrefetchScoreboard::with_trace(
            phases,
            4096,
            TelemetryConfig::default(),
        ))
    } else {
        args.get("metrics-out")
            .map(|_| PrefetchScoreboard::new(phases, 4096))
    }
}

/// Builds the serve command's live-telemetry attachment from
/// `--live-metrics` / `--expose` / `--live-interval`, or `None` when no
/// live output was requested. `--quant` tags the forward-stage spans as
/// int8.
fn live_telemetry_for(args: &Args) -> Option<LiveTelemetry> {
    let sink = args.get("live-metrics");
    let expose = args.get("expose");
    if sink.is_none() && expose.is_none() {
        return None;
    }
    let cfg = LiveTelemetryConfig {
        interval_pumps: args.get_u64("live-interval", 16),
        int8: args.get("quant").is_some(),
        ..LiveTelemetryConfig::default()
    };
    let cfg = cfg
        .try_new()
        .unwrap_or_else(|e| die(&format!("invalid live-telemetry config: {e}")));
    let mut tel = LiveTelemetry::new(cfg);
    if let Some(spec) = sink {
        tel = tel
            .with_sink(spec)
            .unwrap_or_else(|e| die(&format!("cannot open --live-metrics sink {spec}: {e}")));
    }
    if let Some(path) = expose {
        tel = tel.with_expose(path);
    }
    Some(tel)
}

fn write_metrics(args: &Args, snap: &MetricsSnapshot) {
    let Some(path) = args.get("metrics-out") else {
        return;
    };
    let json = snap
        .to_json_pretty()
        .unwrap_or_else(|e| die(&format!("serializing metrics: {e}")));
    std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    eprintln!("metrics written to {path}");
}

/// Writes a Chrome-trace JSON value when `--trace-out` was given.
fn write_trace_value(args: &Args, chrome: &serde::Value) {
    let Some(path) = args.get("trace-out") else {
        return;
    };
    let json =
        serde_json::to_string(chrome).unwrap_or_else(|e| die(&format!("serializing trace: {e}")));
    std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    eprintln!("chrome trace written to {path} (load it in ui.perfetto.dev)");
}

/// Writes the scoreboard's Chrome-trace JSON when `--trace-out` was given.
fn write_trace(args: &Args, sb: &PrefetchScoreboard) {
    if args.get("trace-out").is_none() {
        return;
    }
    let Some(chrome) = sb.chrome_trace() else {
        die("trace requested but the scoreboard recorded none");
    };
    write_trace_value(args, &chrome);
}

fn report(label: &str, r: &SimResult, base: Option<&SimResult>) {
    let impv = base
        .map(|b| format!("{:+8.2}%", r.ipc_improvement(b)))
        .unwrap_or_else(|| "       -".into());
    println!(
        "{label:12} ipc {:6.3}  acc {:6.1}%  cov {:6.1}%  impv {impv}",
        r.ipc(),
        100.0 * r.accuracy(),
        100.0 * r.coverage()
    );
}

fn cmd_trace(args: &Args) {
    let out = args.get("out").unwrap_or_else(|| usage());
    let trace = build_trace(args);
    io::save(&trace, out).unwrap_or_else(|e| die(&e.to_string()));
    println!(
        "wrote {} ({} records, {} phases, {} transitions)",
        out,
        trace.records.len(),
        trace.num_phases,
        trace.transitions.len()
    );
}

fn cmd_info(args: &Args) {
    let path = args.positional.first().unwrap_or_else(|| usage());
    let t = io::load(path).unwrap_or_else(|e| die(&e.to_string()));
    println!("records:     {}", t.records.len());
    println!("phases/iter: {}", t.num_phases);
    println!("iterations:  {}", t.num_iterations());
    println!("transitions: {}", t.transitions.len());
    println!("instructions:{}", t.instruction_count());
    let pages: std::collections::HashSet<u64> = t.records.iter().map(|r| r.page()).collect();
    println!("pages:       {}", pages.len());
    let writes = t.records.iter().filter(|r| r.is_write).count();
    println!(
        "writes:      {} ({:.1}%)",
        writes,
        100.0 * writes as f64 / t.records.len().max(1) as f64
    );
    let deps = t.records.iter().filter(|r| r.dep).count();
    println!(
        "dep loads:   {} ({:.1}%)",
        deps,
        100.0 * deps as f64 / t.records.len().max(1) as f64
    );
}

fn cmd_simulate(args: &Args) {
    let path = args.positional.first().unwrap_or_else(|| usage());
    let t = io::load(path).unwrap_or_else(|e| die(&e.to_string()));
    let cfg = if args.get("scaled").is_some() {
        mpgraph::scaled_sim_config()
    } else {
        mpgraph::sim::SimConfig::default()
    };
    let base = simulate(&t.records, &mut NullPrefetcher, &cfg);
    report("none", &base, None);
    let which = args.get("prefetcher").unwrap_or("bo");
    let mut pf: Box<dyn Prefetcher> = match which {
        "none" => return,
        "next-line" => Box::new(NextLine::new(6)),
        "stride" => Box::new(Stride::new(6)),
        "bo" => Box::new(BestOffset::new(BoConfig::default())),
        "isb" => Box::new(Isb::new(IsbConfig::default())),
        other => die(&format!("unknown prefetcher {other:?}")),
    };
    let mut inj = fault_injector(args);
    let mut sb = scoreboard_for(args, t.num_phases as usize);
    let r = simulate_observed(
        &t.records,
        pf.as_mut(),
        &cfg,
        inj.as_mut(),
        sb.as_mut().map(|s| s as &mut dyn PrefetchObserver),
    );
    report(&r.prefetcher.clone(), &r, Some(&base));
    if let Some(sb) = sb.as_ref() {
        write_metrics(args, &sb.snapshot());
        write_trace(args, sb);
    }
    if inj.is_some() {
        println!("faults injected: {} total", r.faults.total());
        for kind in FaultKind::ALL {
            let n = r.faults.count(kind);
            if n > 0 {
                println!("  {:18} {n}", kind.name());
            }
        }
    }
}

fn cmd_run(args: &Args) {
    if args.get("all").is_some() {
        return cmd_run_all(args);
    }
    if args.get("quick").is_some() {
        return cmd_run_quick(args);
    }
    let trace = build_trace(args);
    let cfg = mpgraph::scaled_sim_config();
    let split = trace
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(trace.records.len() / 2);
    let (train_raw, test) = trace.records.split_at(split);
    let test = &test[..test.len().min(450_000)];
    let train_llc = llc_filter(train_raw, &cfg);
    eprintln!(
        "training MPGraph on {} LLC records; evaluating on {} raw records",
        train_llc.len(),
        test.len()
    );
    let base = simulate(test, &mut NullPrefetcher, &cfg);
    report("none", &base, None);
    let mut bo = BestOffset::new(BoConfig::default());
    let r = simulate(test, &mut bo, &cfg);
    report("BO", &r, Some(&base));
    let mut mp = train_mpgraph(
        &train_llc,
        trace.num_phases as usize,
        MpGraphConfig::default(),
        &TrainCfg::default(),
    );
    if args.get("quant").is_some() {
        mp.quantize();
        eprintln!("serving the int8 snapshot of the trained predictors");
    }
    let mut sb = scoreboard_for(args, trace.num_phases as usize);
    let r = simulate_observed(
        test,
        &mut mp,
        &cfg,
        None,
        sb.as_mut().map(|s| s as &mut dyn PrefetchObserver),
    );
    report("MPGraph", &r, Some(&base));
    if let Some(sb) = sb.as_ref() {
        let mut snap = sb.snapshot();
        mp.enrich_snapshot(&mut snap);
        write_metrics(args, &snap);
        write_trace(args, sb);
    }
}

/// `run --quick`: one combo through the bench harness at
/// `ExpScale::quick()` — the exact per-combo path `run --all` shards, so
/// a CI matrix leg and the merged run measure the same thing.
fn cmd_run_quick(args: &Args) {
    use mpgraph::bench::shard::{run_combo_opts, Combo, SEGMENT_LEN};
    use mpgraph::bench::ExpScale;

    let framework = parse_framework(args.get("framework").unwrap_or_else(|| usage()));
    let app = parse_app(args.get("app").unwrap_or_else(|| usage()));
    if !framework.apps().contains(&app) {
        die(&format!(
            "{} does not ship {} (Table 1); available: {}",
            framework.name(),
            app.name(),
            framework
                .apps()
                .iter()
                .map(|a| a.name().to_lowercase())
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    let dataset = parse_dataset(args.get("dataset").unwrap_or("rmat"));
    let combo = Combo {
        framework,
        app,
        dataset,
    };
    let quant = args.get("quant").is_some();
    eprintln!(
        "quick run: {} at ExpScale::quick(){}",
        combo.label(),
        if quant { " (int8 serve path)" } else { "" }
    );
    let r = run_combo_opts(combo, &ExpScale::quick(), SEGMENT_LEN, quant);
    report("none", &r.base, None);
    report("BO", &r.bo, Some(&r.base));
    report("MPGraph", &r.mpgraph, Some(&r.base));
    write_metrics(args, &r.snapshot);
    write_trace_value(
        args,
        &mpgraph::core::chrome_trace_json_sharded(std::slice::from_ref(&r.trace)),
    );
}

/// `run --all`: the sharded full-matrix evaluation. Partitions the
/// framework × app × dataset matrix across `--shards` worker threads,
/// merges the per-combo snapshots in fixed matrix order, and writes the
/// merged snapshot (`--metrics-out`), the multi-process Perfetto trace
/// (`--trace-out`, one pid per combo), and `results/matrix_all.json`.
fn cmd_run_all(args: &Args) {
    use mpgraph::bench::runners::matrix;
    use mpgraph::bench::shard::run_matrix;
    use mpgraph::bench::ExpScale;

    let quick = args.get("quick").is_some();
    let scale = if quick {
        ExpScale::quick()
    } else {
        ExpScale::standard()
    };
    let default_shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = args.get_usize("shards", default_shards).max(1);
    eprintln!(
        "running the full matrix at {} scale across {shards} shard worker(s)",
        if quick { "quick" } else { "standard" }
    );
    let m = run_matrix(&scale, shards);
    matrix::print_summary(&m);
    match matrix::dump_rows(&m) {
        Ok(p) => eprintln!("matrix rows written to {}", p.display()),
        Err(e) => eprintln!("warning: could not write matrix rows: {e}"),
    }
    write_metrics(args, &m.merged);
    write_trace_value(args, &m.chrome_trace());
}

/// Parses a decimal or `0x`-prefixed hex integer from a stdin field.
fn parse_num(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Feeds stdin-driven accesses through the service: one access per line,
/// `stream pc vaddr [w]` (decimal or 0x-hex; trailing `w` marks a write;
/// blank lines and `#` comments skipped). Returns the access count.
///
/// Never exits the process: malformed lines are skipped with a warning
/// and a read error ends the loop early — either way the caller still
/// flushes the service and writes the `--metrics-out`/`--trace-out`
/// artifacts, so a generator hiccup (or plain EOF) cannot lose a run's
/// telemetry.
fn serve_from_stdin(
    svc: &mut PrefetchService,
    streams: usize,
    rate: usize,
    out: &mut Vec<mpgraph::core::Prediction>,
) -> usize {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    let mut n = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("warning: reading stdin: {e}; finishing with {n} accesses served");
                break;
            }
        };
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let mut f = s.split_whitespace();
        let parsed = match (f.next(), f.next(), f.next()) {
            (Some(stream), Some(pc), Some(vaddr)) => {
                match (parse_num(stream), parse_num(pc), parse_num(vaddr)) {
                    (Some(stream), Some(pc), Some(vaddr)) => Some((stream, pc, vaddr)),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some((stream, pc, vaddr)) = parsed else {
            eprintln!("warning: skipping stdin line {s:?}: want `stream pc vaddr [w]`");
            continue;
        };
        let stream = stream as u32 % streams.max(1) as u32;
        let access = LlcAccess {
            pc,
            block: vaddr >> 6,
            core: (stream % 8) as u8,
            is_write: f.next() == Some("w"),
            hit: false,
            cycle: 0,
        };
        svc.ingest(stream, &access, 0);
        n += 1;
        if n.is_multiple_of(rate) {
            svc.pump(out);
        }
    }
    n
}

/// Multiplexes a saved trace through the multi-stream prefetch service:
/// trains MPGraph on iteration 0 (like `run`), registers `--streams`
/// independent streams sharing the trained weights, and replays the
/// remaining LLC accesses open-loop at `--load` times the service's
/// saturation rate. Reports throughput, shed fraction, and the
/// prediction-latency percentiles; `--metrics-out` includes the `serve`
/// section of the snapshot. With `--quant` the serve-path model is the
/// §6.1 stack — a distilled student with int8 serving snapshots, so the
/// fused pump runs the i8×i8→i32 kernels. With `--stdin` the trace file
/// only trains the model and accesses arrive on stdin (`stream pc vaddr
/// [w]` per line), so external generators can drive the service.
fn cmd_serve(args: &Args) {
    let path = args.positional.first().unwrap_or_else(|| usage());
    let t = io::load(path).unwrap_or_else(|e| die(&e.to_string()));
    let cfg = mpgraph::scaled_sim_config();
    let split = t
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(t.records.len() / 2);
    let (train_raw, test) = t.records.split_at(split);
    let test = &test[..test.len().min(450_000)];
    let train_llc = llc_filter(train_raw, &cfg);
    let test_llc = llc_filter(test, &cfg);
    let num_phases = t.num_phases as usize;
    let tc = TrainCfg::default();
    let mp_cfg = MpGraphConfig::default();
    if args.get("stdin").is_some() {
        eprintln!(
            "training MPGraph on {} LLC records; serving accesses from stdin",
            train_llc.len()
        );
    } else {
        eprintln!(
            "training MPGraph on {} LLC records; serving {} LLC accesses",
            train_llc.len(),
            test_llc.len()
        );
    }
    let mut mp = train_mpgraph(&train_llc, num_phases, mp_cfg, &tc);
    if args.get("quant").is_some() {
        use mpgraph::core::compress::{quantize_delta, quantize_page};
        use mpgraph::core::{distill_delta, distill_page, DistillCfg};
        let teacher_params = mp.delta.num_params() + mp.page.num_params();
        let dc = DistillCfg::default();
        let mut sd = distill_delta(&mp.delta, &train_llc, &dc, &tc);
        let mut sp = distill_page(&mp.page, &train_llc, &dc, &tc);
        let (_, delta_bytes) = quantize_delta(&mut sd);
        let (_, page_bytes) = quantize_page(&mut sp);
        eprintln!(
            "quantized serve path: {} -> {} params, int8 weights {} bytes",
            teacher_params,
            sd.num_params() + sp.num_params(),
            delta_bytes + page_bytes
        );
        mp.delta = sd;
        mp.page = sp;
    }

    let streams = args.get_usize("streams", 4).max(1);
    let load = args.get_f64("load", 2.0);
    let serve_cfg = ServeConfig {
        // `--no-fuse` forces per-item forwards — the reference path the
        // fused (B×T×d) pump is equivalence-tested against.
        fuse: args.get("no-fuse").is_none(),
        ..ServeConfig::default()
    };
    let saturation = (serve_cfg.batch_size as u64)
        .min((serve_cfg.batch_deadline / serve_cfg.ml_item_cost.max(1)).max(1))
        .max(1) as usize;
    let rate = ((load * saturation as f64).round() as usize).max(1);

    let mut svc = match scoreboard_for(args, num_phases) {
        Some(sb) => PrefetchService::with_scoreboard(serve_cfg, sb),
        None => PrefetchService::new(serve_cfg),
    };
    let live_attached = match live_telemetry_for(args) {
        Some(tel) => {
            svc.enable_live_telemetry(tel);
            true
        }
        None => false,
    };
    for s in 0..streams {
        svc.register_stream(
            s as u32,
            Box::new(MpGraphPrefetcher::from_parts(
                mp.delta.clone(),
                mp.page.clone(),
                build_detector(&train_llc, num_phases, mp_cfg.detector),
                mp_cfg,
                num_phases,
                tc.history,
            )),
        );
    }

    let started = std::time::Instant::now();
    let mut out = Vec::new();
    if args.get("stdin").is_some() {
        let n = serve_from_stdin(&mut svc, streams, rate, &mut out);
        eprintln!("stdin drained after {n} accesses");
    } else {
        for (i, r) in test_llc.iter().enumerate() {
            let access = LlcAccess {
                pc: r.pc,
                block: r.block(),
                core: r.core,
                is_write: r.is_write,
                hit: false,
                cycle: 0,
            };
            svc.ingest((i % streams) as u32, &access, 0);
            if (i + 1) % rate == 0 {
                svc.pump(&mut out);
            }
        }
    }
    svc.flush(&mut out);
    // Closes the trailing partial telemetry interval and flushes the
    // NDJSON sink — runs on every exit path, including a stdin generator
    // hanging up mid-stream.
    svc.finish_live_telemetry();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    let m = svc.metrics();
    println!(
        "streams {streams}  load {load:.1}x ({rate}/tick)  accesses {}  predictions {}",
        m.ingested,
        out.len()
    );
    println!(
        "throughput {:.0} acc/s  ml {}  fallback {}  shed {:.2}%",
        m.ingested as f64 / elapsed,
        m.ml_processed,
        m.fallback_processed,
        100.0 * m.shed_fraction
    );
    println!(
        "latency p50 {} p99 {} cycles  level {}  quarantines {}  escalations {}",
        m.prediction_latency.p50,
        m.prediction_latency.p99,
        m.overload_level,
        m.quarantines,
        m.escalations
    );
    println!(
        "fused batches {}  items {}  forwards {}  deferred-fallback {} (p99 {} cycles)",
        m.fused_batches,
        m.fused_items,
        m.fused_forwards,
        m.deferred_fallback_processed,
        m.deferred_latency.p99
    );
    if live_attached {
        println!(
            "live telemetry: {} intervals, slo verdict {} (worst burn {:.2}, {} escalations), \
             overhead {:.4} of pump wall",
            m.live.len(),
            m.slo.verdict_level,
            m.slo.worst_burn_rate,
            m.slo.escalations,
            m.pump_stages.self_overhead_fraction,
        );
    }
    let mut snap = svc.snapshot();
    mp.enrich_snapshot(&mut snap);
    write_metrics(args, &snap);
    if args.get("trace-out").is_some() {
        // The service-level export, so the live-telemetry counter tracks
        // ride along with the scoreboard's when telemetry is attached.
        match svc.chrome_trace() {
            Some(chrome) => write_trace_value(args, &chrome),
            None => die("trace requested but the scoreboard recorded none"),
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let args = Args::parse(&raw[1..]);
    match raw[0].as_str() {
        "trace" => cmd_trace(&args),
        "info" => cmd_info(&args),
        "simulate" => cmd_simulate(&args),
        "run" => cmd_run(&args),
        "serve" => cmd_serve(&args),
        _ => usage(),
    }
}
