//! # mpgraph-graph
//!
//! Graph substrate for the MPGraph reproduction: compressed sparse row (CSR)
//! graphs, the R-MAT recursive generator used by the paper for its synthetic
//! input, parameterized synthetic stand-ins for the six SNAP datasets of
//! Table 2, and a plain-text edge-list format.
//!
//! The graph analytics frameworks in `mpgraph-frameworks` run real algorithms
//! (BFS, CC, PR, SSSP, TC) over these graphs while recording every memory
//! touch; the *structure* of the graph (degree distribution, locality of the
//! vertex id space) is what shapes the memory access streams the prefetchers
//! are trained and evaluated on.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod csr;
pub mod edgelist;
pub mod rmat;
pub mod synthetic;

pub use csr::{Csr, CsrBuilder, DegreeStats};
pub use rmat::{rmat, RmatConfig};
pub use synthetic::{chung_lu, road_network, standin, Dataset};

/// Vertex identifier. 32 bits is ample for the scaled datasets (≤ 5M
/// vertices) and halves the memory traffic of the edge arrays, matching how
/// graph frameworks store ids in practice.
pub type VertexId = u32;
