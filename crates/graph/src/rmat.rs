//! R-MAT recursive matrix graph generator (Chakrabarti, Zhan, Faloutsos,
//! SDM 2004) — the generator the paper uses for its `rmat` dataset
//! (1M vertices, 16M edges).
//!
//! Each edge picks a quadrant of the adjacency matrix recursively with
//! probabilities `(a, b, c, d)`; the classic Graph500-style skew
//! `a=0.57, b=0.19, c=0.19, d=0.05` produces a power-law degree
//! distribution similar to web/social graphs.

use crate::{Csr, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices (the matrix is 2^scale × 2^scale).
    pub scale: u32,
    /// Number of edges to sample.
    pub num_edges: usize,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level probability noise, as in the reference implementation, to
    /// avoid exact self-similarity artifacts. 0.0 disables it.
    pub noise: f64,
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500-style default skew used throughout the evaluation.
    pub fn new(scale: u32, num_edges: usize, seed: u64) -> Self {
        RmatConfig {
            scale,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            seed,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph in CSR form.
pub fn rmat(cfg: RmatConfig) -> Csr {
    assert!(cfg.scale <= 31, "scale {} too large", cfg.scale);
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.d() >= 0.0,
        "invalid quadrant probabilities"
    );
    let n = 1usize << cfg.scale;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(cfg.num_edges);
    for _ in 0..cfg.num_edges {
        edges.push(sample_edge(&cfg, &mut rng));
    }
    Csr::from_edges(n, &edges)
}

fn sample_edge(cfg: &RmatConfig, rng: &mut ChaCha8Rng) -> (VertexId, VertexId) {
    let (mut row, mut col) = (0u64, 0u64);
    for level in 0..cfg.scale {
        // Jitter the probabilities per level so degree sequences aren't
        // perfectly self-similar.
        let mut jitter = |p: f64| {
            if cfg.noise > 0.0 {
                p * (1.0 - cfg.noise / 2.0 + cfg.noise * rng.gen::<f64>())
            } else {
                p
            }
        };
        let (a, b, c, d) = (jitter(cfg.a), jitter(cfg.b), jitter(cfg.c), jitter(cfg.d()));
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        let half = 1u64 << (cfg.scale - 1 - level);
        if r < a {
            // top-left: nothing to add
        } else if r < a + b {
            col += half;
        } else if r < a + b + c {
            row += half;
        } else {
            row += half;
            col += half;
        }
    }
    (row as VertexId, col as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_edge_count() {
        let g = rmat(RmatConfig::new(10, 5000, 42));
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 5000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = rmat(RmatConfig::new(8, 1000, 7));
        let b = rmat(RmatConfig::new(8, 1000, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(RmatConfig::new(8, 1000, 7));
        let b = rmat(RmatConfig::new(8, 1000, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn skew_produces_heavy_tail() {
        // With the Graph500 skew, max degree should dwarf the mean: that is
        // the power-law character the paper's rmat input has.
        let g = rmat(RmatConfig::new(12, 40_000, 3));
        let s = g.degree_stats();
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn uniform_probabilities_are_not_skewed() {
        let cfg = RmatConfig {
            scale: 12,
            num_edges: 40_000,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
            seed: 3,
        };
        let g = rmat(cfg);
        let s = g.degree_stats();
        // Erdos-Renyi-like: max degree stays within a small factor of mean.
        assert!(
            (s.max as f64) < 5.0 * s.mean.max(1.0),
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn all_edges_in_range() {
        let g = rmat(RmatConfig::new(9, 3000, 11));
        for v in 0..g.num_vertices() as VertexId {
            for &d in g.neighbors(v) {
                assert!((d as usize) < g.num_vertices());
            }
        }
    }
}
