//! Synthetic stand-ins for the six SNAP datasets of Table 2.
//!
//! The paper evaluates on `amazon`, `google`, `roadCA`, `soclj`, `wiki`,
//! `youtube` (SNAP exports) plus an R-MAT graph. The SNAP files are not
//! available offline, so — per the substitution rule in DESIGN.md — each
//! dataset is replaced by a generator that matches its *memory-behaviour-
//! relevant* character at a reduced scale (default 1/16 of the original
//! vertex count, so full experiment sweeps finish in minutes):
//!
//! | dataset | original (V, E)  | character reproduced                      |
//! |---------|------------------|-------------------------------------------|
//! | amazon  | 0.26M, 1.23M     | moderate-degree power law (purchase net)  |
//! | google  | 0.88M, 5.11M     | power-law web graph, denser               |
//! | roadCA  | 1.96M, 2.76M     | near-constant degree ~2.8, high diameter, |
//! |         |                  | strong id-space locality (planar road)    |
//! | soclj   | 4.84M, 68.99M    | heavy-tailed social graph, very dense     |
//! | wiki    | 1.79M, 28.51M    | hyperlink power law, dense                |
//! | youtube | 1.13M, 2.99M     | sparse social power law                   |
//!
//! Power-law graphs use a Chung–Lu style degree-weighted sampler; roadCA
//! uses a perturbed 2-D lattice. Degree-distribution shape (not exact edge
//! identity) is what drives page-jump irregularity and reuse distance, and
//! the scale factor is identical for every prefetcher under comparison, so
//! orderings are preserved.

use crate::{Csr, VertexId};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The seven evaluation datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Amazon,
    Google,
    RoadCa,
    SocLj,
    Wiki,
    Youtube,
    Rmat,
}

impl Dataset {
    /// All datasets, in the order Table 2 lists them.
    pub const ALL: [Dataset; 7] = [
        Dataset::Amazon,
        Dataset::Google,
        Dataset::RoadCa,
        Dataset::SocLj,
        Dataset::Wiki,
        Dataset::Youtube,
        Dataset::Rmat,
    ];

    /// Lowercase name as it appears in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Amazon => "amazon",
            Dataset::Google => "google",
            Dataset::RoadCa => "roadCA",
            Dataset::SocLj => "soclj",
            Dataset::Wiki => "wiki",
            Dataset::Youtube => "youtube",
            Dataset::Rmat => "rmat",
        }
    }

    /// Original (vertices, edges) from Table 2.
    pub fn original_size(&self) -> (usize, usize) {
        match self {
            Dataset::Amazon => (262_111, 1_234_877),
            Dataset::Google => (875_713, 5_105_039),
            Dataset::RoadCa => (1_965_206, 2_766_607),
            Dataset::SocLj => (4_847_571, 68_993_773),
            Dataset::Wiki => (1_791_489, 28_511_807),
            Dataset::Youtube => (1_134_890, 2_987_624),
            Dataset::Rmat => (1_000_000, 16_000_000),
        }
    }
}

/// Generates the stand-in for `dataset` at `1/scale_div` of its original
/// vertex count (edges scale proportionally).
pub fn standin(dataset: Dataset, scale_div: usize, seed: u64) -> Csr {
    assert!(scale_div >= 1);
    let (orig_v, orig_e) = dataset.original_size();
    let n = (orig_v / scale_div).max(64);
    let m = (orig_e / scale_div).max(256);
    match dataset {
        Dataset::RoadCa => road_network(n, m, seed),
        Dataset::Rmat => {
            // Round n up to a power of two as R-MAT requires.
            let scale = usize::BITS - (n - 1).leading_zeros();
            crate::rmat(crate::RmatConfig::new(scale, m, seed))
        }
        Dataset::Amazon => chung_lu(n, m, 2.8, seed),
        Dataset::Google => chung_lu(n, m, 2.4, seed),
        Dataset::SocLj => chung_lu(n, m, 2.2, seed),
        Dataset::Wiki => chung_lu(n, m, 2.1, seed),
        Dataset::Youtube => chung_lu(n, m, 2.3, seed),
    }
}

/// Chung–Lu style generator: vertices get weights ~ i^(-1/(gamma-1)); each
/// edge samples both endpoints from the weight distribution, producing an
/// expected power-law degree sequence with exponent `gamma`.
pub fn chung_lu(num_vertices: usize, num_edges: usize, gamma: f64, seed: u64) -> Csr {
    assert!(gamma > 1.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let alpha = 1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..num_vertices)
        .map(|i| ((i + 1) as f64).powf(-alpha))
        .collect();
    let dist = WeightedIndex::new(&weights).expect("non-empty positive weights");
    // Scatter hub ids across the vertex id space: real SNAP graphs do not
    // place all heavy vertices at id 0, and id placement affects spatial
    // locality of the vertex-value array.
    let mut perm: Vec<VertexId> = (0..num_vertices as VertexId).collect();
    for i in (1..num_vertices).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let s = perm[dist.sample(&mut rng)];
        let d = perm[dist.sample(&mut rng)];
        edges.push((s, d));
    }
    Csr::from_edges(num_vertices, &edges)
}

/// Road-network generator: a near-square 2-D lattice with 4-neighbor links
/// plus a small fraction of shortcut edges. Degree is nearly constant (as in
/// roadCA, mean 2.8), diameter is large, and neighbor ids are close in id
/// space — the low-irregularity end of the evaluation spectrum.
pub fn road_network(num_vertices: usize, num_edges: usize, seed: u64) -> Csr {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let side = (num_vertices as f64).sqrt().ceil() as usize;
    let n = num_vertices;
    let id = |r: usize, c: usize| -> Option<VertexId> {
        let v = r * side + c;
        (r < side && c < side && v < n).then_some(v as VertexId)
    };
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(num_edges);
    'outer: for r in 0..side {
        for c in 0..side {
            let Some(v) = id(r, c) else { continue };
            for (dr, dc) in [(0usize, 1usize), (1, 0)] {
                if let Some(u) = id(r + dr, c + dc) {
                    // Roads are bidirectional.
                    edges.push((v, u));
                    edges.push((u, v));
                    if edges.len() + 2 > num_edges {
                        break 'outer;
                    }
                }
            }
        }
    }
    // Shortcuts (highways / grid irregularities): ~2% of edges.
    while edges.len() < num_edges {
        let a = rng.gen_range(0..n) as VertexId;
        let b = rng.gen_range(0..n) as VertexId;
        if a != b {
            edges.push((a, b));
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standins_generate() {
        for ds in Dataset::ALL {
            let g = standin(ds, 256, 1);
            assert!(g.num_vertices() >= 64, "{}", ds.name());
            assert!(g.num_edges() >= 256, "{}", ds.name());
        }
    }

    #[test]
    fn standins_are_deterministic() {
        let a = standin(Dataset::Google, 256, 5);
        let b = standin(Dataset::Google, 256, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let g = chung_lu(4096, 40_000, 2.2, 9);
        let s = g.degree_stats();
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn road_network_is_near_constant_degree() {
        let g = road_network(4096, 11_000, 9);
        let s = g.degree_stats();
        // Lattice + shortcuts: max degree stays small (no hubs).
        assert!(s.max <= 10, "max degree {}", s.max);
        assert!(s.std_dev < 2.0, "std {}", s.std_dev);
    }

    #[test]
    fn road_network_neighbors_are_local_in_id_space() {
        let g = road_network(4096, 11_000, 9);
        let side = (4096f64).sqrt() as i64;
        let mut local = 0usize;
        let mut total = 0usize;
        for v in 0..g.num_vertices() as VertexId {
            for &u in g.neighbors(v) {
                total += 1;
                if ((u as i64) - (v as i64)).abs() <= side {
                    local += 1;
                }
            }
        }
        assert!(local as f64 > 0.9 * total as f64);
    }

    #[test]
    fn edge_budget_respected() {
        let g = road_network(1000, 3000, 2);
        assert_eq!(g.num_edges(), 3000);
        let g = chung_lu(1000, 3000, 2.5, 2);
        assert_eq!(g.num_edges(), 3000);
    }

    #[test]
    fn dataset_names_match_table2() {
        let names: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["amazon", "google", "roadCA", "soclj", "wiki", "youtube", "rmat"]
        );
    }
}
