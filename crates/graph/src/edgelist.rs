//! Plain-text edge-list I/O in the SNAP export format: one `src dst` (or
//! `src dst weight`) pair per line, `#`-prefixed comment lines ignored.
//! Lets users run the full pipeline on real SNAP downloads when available.

use crate::{Csr, VertexId};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parse errors for the edge-list format.
#[derive(Debug)]
pub enum ParseError {
    Io(std::io::Error),
    /// (line number, contents) of the malformed line.
    Malformed(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed(n, l) => write!(f, "malformed edge at line {n}: {l:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses an edge list from any reader. Vertex count is `max id + 1`.
pub fn parse<R: BufRead>(reader: R) -> Result<Csr, ParseError> {
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: VertexId = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(s), Some(d)) = (it.next(), it.next()) else {
            return Err(ParseError::Malformed(idx + 1, line.clone()));
        };
        let w = it.next();
        let src: VertexId = s
            .parse()
            .map_err(|_| ParseError::Malformed(idx + 1, line.clone()))?;
        let dst: VertexId = d
            .parse()
            .map_err(|_| ParseError::Malformed(idx + 1, line.clone()))?;
        let weight: f32 = match w {
            Some(w) => w
                .parse()
                .map_err(|_| ParseError::Malformed(idx + 1, line.clone()))?,
            None => 1.0,
        };
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst, weight));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(Csr::from_weighted_edges(n, &edges))
}

/// Reads an edge-list file from disk.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Csr, ParseError> {
    let f = std::fs::File::open(path)?;
    parse(std::io::BufReader::new(f))
}

/// Writes a CSR back out as an edge list (weights included when ≠ 1).
pub fn write_file<P: AsRef<Path>>(g: &Csr, path: P) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "# mpgraph edge list: {} vertices", g.num_vertices())?;
    for v in 0..g.num_vertices() as VertexId {
        for (u, wt) in g.neighbors_weighted(v) {
            if wt == 1.0 {
                writeln!(w, "{v} {u}")?;
            } else {
                writeln!(w, "{v} {u} {wt}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_style_input() {
        let text = "# Directed graph\n# Nodes: 3 Edges: 3\n0 1\n1 2\n2 0\n";
        let g = parse(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn parses_weights() {
        let g = parse(Cursor::new("0 1 2.5\n1 0 0.5\n")).unwrap();
        let w: Vec<f32> = g.neighbors_weighted(0).map(|(_, w)| w).collect();
        assert_eq!(w, vec![2.5]);
    }

    #[test]
    fn rejects_malformed_line() {
        let err = parse(Cursor::new("0 1\nnot-an-edge\n")).unwrap_err();
        match err {
            ParseError::Malformed(2, _) => {}
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn rejects_lonely_vertex() {
        assert!(parse(Cursor::new("42\n")).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse(Cursor::new("# only comments\n\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn roundtrip_through_file() {
        let g = crate::rmat(crate::RmatConfig::new(6, 200, 77));
        let dir = std::env::temp_dir().join("mpgraph_edgelist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        write_file(&g, &path).unwrap();
        let back = read_file(&path).unwrap();
        // Vertex count may shrink if trailing ids are isolated; compare edges
        // via sorted tuples.
        let collect = |g: &Csr| {
            let mut v: Vec<(VertexId, VertexId)> = (0..g.num_vertices() as VertexId)
                .flat_map(|s| g.neighbors(s).iter().map(move |&d| (s, d)))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(collect(&g), collect(&back));
    }
}
