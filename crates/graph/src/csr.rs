//! Compressed Sparse Row graph representation.
//!
//! CSR is the storage layout used by GPOP, X-Stream and PowerGraph alike: an
//! `offsets` array of length `n + 1` and a flat `edges` array holding the
//! neighbor lists back to back. Accessing `neighbors(v)` therefore touches
//! `offsets[v]`, `offsets[v+1]`, and a contiguous slice of `edges` — exactly
//! the two-level indirection pattern whose page-jump behaviour Figure 3 of
//! the paper illustrates.

use crate::VertexId;

/// An immutable directed graph in CSR form, with optional edge weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` is the slice of `edges` holding `v`'s
    /// out-neighbors. Length `num_vertices + 1`.
    offsets: Vec<u64>,
    /// Flat destination array.
    edges: Vec<VertexId>,
    /// Per-edge weights, parallel to `edges` (used by SSSP). `1.0` when the
    /// source data is unweighted.
    weights: Vec<f32>,
}

impl Csr {
    /// Builds a CSR from an unsorted edge list. Self-loops are kept;
    /// duplicate edges are kept (they exist in the SNAP exports too).
    pub fn from_edges(num_vertices: usize, edge_list: &[(VertexId, VertexId)]) -> Self {
        let weighted: Vec<(VertexId, VertexId, f32)> =
            edge_list.iter().map(|&(s, d)| (s, d, 1.0)).collect();
        Self::from_weighted_edges(num_vertices, &weighted)
    }

    /// Builds a CSR from an unsorted weighted edge list using a two-pass
    /// counting sort, which is O(V + E) and allocation-exact.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edge_list: &[(VertexId, VertexId, f32)],
    ) -> Self {
        let mut offsets = vec![0u64; num_vertices + 1];
        for &(src, dst, _) in edge_list {
            assert!(
                (src as usize) < num_vertices && (dst as usize) < num_vertices,
                "edge ({src}, {dst}) out of range for {num_vertices} vertices"
            );
            offsets[src as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let mut edges = vec![0 as VertexId; edge_list.len()];
        let mut weights = vec![0.0f32; edge_list.len()];
        let mut cursor = offsets.clone();
        for &(src, dst, w) in edge_list {
            let slot = cursor[src as usize] as usize;
            edges[slot] = dst;
            weights[slot] = w;
            cursor[src as usize] += 1;
        }
        Csr {
            offsets,
            edges,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Out-neighbors of `v` together with edge weights.
    #[inline]
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.edges[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Raw offsets array (the frameworks need the base pointers to model the
    /// virtual addresses of `offsets[v]` touches).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw edge array.
    #[inline]
    pub fn edges(&self) -> &[VertexId] {
        &self.edges
    }

    /// Edge index range of `v` within the flat edge array.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Weight of the edge at flat index `e`.
    #[inline]
    pub fn weight_at(&self, e: usize) -> f32 {
        self.weights[e]
    }

    /// Returns the transpose graph (in-edges become out-edges). PowerGraph's
    /// Gather phase and PageRank pull-style iterations need it.
    pub fn transpose(&self) -> Csr {
        let mut rev: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(self.num_edges());
        for v in 0..self.num_vertices() as VertexId {
            for (i, &dst) in self.neighbors(v).iter().enumerate() {
                let w = self.weights[self.offsets[v as usize] as usize + i];
                rev.push((dst, v, w));
            }
        }
        Csr::from_weighted_edges(self.num_vertices(), &rev)
    }

    /// Returns an undirected (symmetrized, deduplicated) version. Triangle
    /// counting operates on the undirected graph.
    pub fn symmetrize(&self) -> Csr {
        let mut both: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for v in 0..self.num_vertices() as VertexId {
            for &dst in self.neighbors(v) {
                if v != dst {
                    both.push((v, dst));
                    both.push((dst, v));
                }
            }
        }
        both.sort_unstable();
        both.dedup();
        Csr::from_edges(self.num_vertices(), &both)
    }

    /// Degree distribution summary, used to validate the synthetic stand-ins
    /// against the character of their SNAP originals.
    pub fn degree_stats(&self) -> DegreeStats {
        let n = self.num_vertices();
        if n == 0 {
            return DegreeStats::default();
        }
        let mut degrees: Vec<usize> = (0..n as VertexId).map(|v| self.degree(v)).collect();
        degrees.sort_unstable();
        let sum: usize = degrees.iter().sum();
        let mean = sum as f64 / n as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        DegreeStats {
            min: degrees[0],
            max: degrees[n - 1],
            mean,
            median: degrees[n / 2],
            std_dev: var.sqrt(),
            zero_degree: degrees.iter().take_while(|&&d| d == 0).count(),
        }
    }
}

/// Summary statistics of an out-degree distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    pub median: usize,
    pub std_dev: f64,
    /// Count of isolated (zero out-degree) vertices.
    pub zero_degree: usize,
}

/// Incremental CSR builder for generators that stream edges.
#[derive(Debug, Default)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, f32)>,
}

impl CsrBuilder {
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Pre-reserves capacity for `n` edges.
    pub fn with_edge_capacity(num_vertices: usize, n: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::with_capacity(n),
        }
    }

    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push((src, dst, 1.0));
    }

    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) {
        self.edges.push((src, dst, w));
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn build(self) -> Csr {
        Csr::from_weighted_edges(self.num_vertices, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_builds_correct_adjacency() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn degrees_match_neighbor_lengths() {
        let g = diamond();
        for v in 0..4 {
            assert_eq!(g.degree(v), g.neighbors(v).len());
        }
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        // Transposing twice returns the original adjacency (possibly
        // reordered within a neighbor list, so compare sorted).
        let tt = t.transpose();
        for v in 0..4 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn symmetrize_makes_undirected_and_dedups() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        let u = g.symmetrize();
        assert_eq!(u.neighbors(0), &[1]);
        assert_eq!(u.neighbors(1), &[0, 2]);
        assert_eq!(u.neighbors(2), &[1]); // self-loop dropped
        assert_eq!(u.num_edges(), 4);
    }

    #[test]
    fn weighted_edges_preserved() {
        let g = Csr::from_weighted_edges(2, &[(0, 1, 2.5), (0, 1, 0.5)]);
        let ws: Vec<f32> = g.neighbors_weighted(0).map(|(_, w)| w).collect();
        assert_eq!(ws, vec![2.5, 0.5]);
    }

    #[test]
    fn degree_stats_on_star() {
        // Star: center 0 points at 1..=4.
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = g.degree_stats();
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 0);
        assert!((s.mean - 0.8).abs() < 1e-12);
        assert_eq!(s.zero_degree, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn builder_matches_direct_construction() {
        let mut b = CsrBuilder::with_edge_capacity(4, 4);
        for &(s, d) in &[(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(s, d);
        }
        assert_eq!(b.num_edges(), 4);
        assert_eq!(b.build(), diamond());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree_stats(), DegreeStats::default());
    }
}
