//! Property tests over graph construction and transforms.

use mpgraph_graph::{chung_lu, rmat, Csr, RmatConfig, VertexId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn transpose_is_an_involution(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..150)
    ) {
        let g = Csr::from_edges(40, &edges);
        let tt = g.transpose().transpose();
        for v in 0..40u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = tt.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn transpose_preserves_edge_count(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..120)
    ) {
        let g = Csr::from_edges(30, &edges);
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    #[test]
    fn symmetrize_is_idempotent(
        edges in prop::collection::vec((0u32..25, 0u32..25), 0..100)
    ) {
        let g = Csr::from_edges(25, &edges);
        let s1 = g.symmetrize();
        let s2 = s1.symmetrize();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn symmetrize_makes_degree_symmetric(
        edges in prop::collection::vec((0u32..20, 0u32..20), 0..80)
    ) {
        let g = Csr::from_edges(20, &edges).symmetrize();
        let t = g.transpose();
        for v in 0..20u32 {
            prop_assert_eq!(g.degree(v), t.degree(v));
        }
    }

    #[test]
    fn generators_respect_counts(scale in 4u32..9, edges in 10usize..500, seed in 0u64..50) {
        let g = rmat(RmatConfig::new(scale, edges, seed));
        prop_assert_eq!(g.num_vertices(), 1 << scale);
        prop_assert_eq!(g.num_edges(), edges);
        let c = chung_lu(1 << scale, edges, 2.3, seed);
        prop_assert_eq!(c.num_edges(), edges);
        for v in 0..g.num_vertices() as VertexId {
            for &d in g.neighbors(v) {
                prop_assert!((d as usize) < g.num_vertices());
            }
        }
    }
}
