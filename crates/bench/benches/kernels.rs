//! Criterion micro-benchmarks of the hot kernels underneath every
//! experiment: cache lookups, DRAM requests, trace generation, K-S /
//! KSWIN updates, BO training, attention and AMMA forward passes, and the
//! end-to-end simulator replay rate.
//!
//! Run: `cargo bench -p mpgraph-bench`

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mpgraph_core::{Amma, AmmaConfig, ModalInput};
use mpgraph_frameworks::{generate_trace, App, Framework, TraceConfig};
use mpgraph_graph::{rmat, RmatConfig};
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_ml::{ScratchArena, SelfAttention};
use mpgraph_phase::{Kswin, KswinConfig, SoftKswin, TransitionDetector};
use mpgraph_prefetchers::{BestOffset, BoConfig};
use mpgraph_sim::{
    simulate, Cache, Dram, DramConfig, LlcAccess, NullPrefetcher, Prefetcher, SimConfig,
};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let mut cache = Cache::new(2 * 1024 * 1024, 16);
    let mut i = 0u64;
    group.bench_function("llc_access_insert", |b| {
        b.iter(|| {
            i = i.wrapping_add(97);
            if cache.access(black_box(i % 100_000), false) == mpgraph_sim::Lookup::Miss {
                cache.insert(i % 100_000, false, false);
            }
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut dram = Dram::new(DramConfig::default());
    let mut now = 0u64;
    let mut i = 0u64;
    c.bench_function("dram_request", |b| {
        b.iter(|| {
            i = i.wrapping_add(31);
            now += 10;
            black_box(dram.request(i % 1_000_000, now))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let g = rmat(RmatConfig::new(9, 8000, 1));
    c.bench_function("trace_gpop_pr_1iter", |b| {
        b.iter(|| {
            let out = generate_trace(
                Framework::Gpop,
                App::Pr,
                &g,
                &TraceConfig {
                    iterations: 1,
                    record_limit: 100_000,
                    ..TraceConfig::default()
                },
            );
            black_box(out.trace.records.len())
        })
    });
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_update");
    group.throughput(Throughput::Elements(1));
    let mut kswin = Kswin::new(KswinConfig::default());
    let mut i = 0u64;
    group.bench_function("kswin", |b| {
        b.iter(|| {
            i += 1;
            black_box(kswin.update(0x400000 + i % 13))
        })
    });
    let mut soft = SoftKswin::new(KswinConfig::default());
    group.bench_function("soft_kswin", |b| {
        b.iter(|| {
            i += 1;
            black_box(soft.update(0x400000 + i % 13))
        })
    });
    group.finish();
}

fn bench_bo(c: &mut Criterion) {
    let mut bo = BestOffset::new(BoConfig::default());
    let mut out = Vec::new();
    let mut i = 0u64;
    c.bench_function("best_offset_access", |b| {
        b.iter(|| {
            i += 4;
            out.clear();
            bo.on_access(
                &LlcAccess {
                    pc: 1,
                    block: i,
                    core: 0,
                    is_write: false,
                    hit: false,
                    cycle: i,
                },
                &mut out,
            );
            black_box(out.len())
        })
    });
}

/// Tiled kernels against the `_ref` seed loops at the shapes AMMA
/// inference hits (the same shapes the perf runner gates on).
fn bench_matmul_kernels(c: &mut Criterion) {
    let mut r = rng(7);
    for (m, k, n) in [(9usize, 64usize, 64usize), (9, 128, 256), (64, 64, 64)] {
        let a = Matrix::xavier(m, k, &mut r);
        let b_mat = Matrix::xavier(k, n, &mut r);
        let bt_mat = Matrix::xavier(n, k, &mut r);
        let mut out = Matrix::zeros(m, n);
        let mut group = c.benchmark_group(&format!("matmul_{m}x{k}x{n}"));
        group.bench_function("tiled_into", |b| {
            b.iter(|| {
                black_box(&a).matmul_into(black_box(&b_mat), &mut out);
                black_box(out.data[0])
            })
        });
        group.bench_function("reference", |b| {
            b.iter(|| black_box(black_box(&a).matmul_ref(black_box(&b_mat))))
        });
        group.bench_function("bt_tiled_into", |b| {
            b.iter(|| {
                black_box(&a).matmul_bt_into(black_box(&bt_mat), &mut out);
                black_box(out.data[0])
            })
        });
        group.bench_function("bt_reference", |b| {
            b.iter(|| black_box(black_box(&a).matmul_bt_ref(black_box(&bt_mat))))
        });
        group.finish();
    }
}

fn bench_attention(c: &mut Criterion) {
    let mut r = rng(1);
    let attn = SelfAttention::new(64, 64, &mut r);
    let x = Matrix::xavier(9, 64, &mut r);
    c.bench_function("self_attention_forward_9x64", |b| {
        b.iter(|| black_box(attn.infer(&x)))
    });
    let amma = Amma::new(9, 1, AmmaConfig::default(), &mut r);
    let input = ModalInput {
        addr: Matrix::xavier(9, 9, &mut r),
        pc: Matrix::xavier(9, 1, &mut r),
    };
    c.bench_function("amma_infer_default", |b| {
        b.iter(|| black_box(amma.infer(&input, 0)))
    });
    let paper = Amma::new(9, 1, AmmaConfig::paper(), &mut r);
    c.bench_function("amma_infer_paper_dims", |b| {
        b.iter(|| black_box(paper.infer(&input, 0)))
    });
    // Warm-arena path: after warmup the arena free-lists satisfy every
    // request, so this measures the allocation-free steady state.
    let mut arena = ScratchArena::new();
    for _ in 0..4 {
        let y = amma.infer_in(&input, 0, &mut arena);
        arena.give(y);
    }
    c.bench_function("amma_infer_in_warm_arena", |b| {
        b.iter(|| {
            let y = amma.infer_in(black_box(&input), 0, &mut arena);
            let v = y.data[0];
            arena.give(y);
            black_box(v)
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let g = rmat(RmatConfig::new(9, 8000, 2));
    let out = generate_trace(
        Framework::Gpop,
        App::Pr,
        &g,
        &TraceConfig {
            iterations: 1,
            record_limit: 50_000,
            ..TraceConfig::default()
        },
    );
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(out.trace.records.len() as u64));
    group.sample_size(10);
    group.bench_function("replay_50k_records_null", |b| {
        b.iter(|| {
            black_box(simulate(
                &out.trace.records,
                &mut NullPrefetcher,
                &SimConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_dram,
    bench_trace_generation,
    bench_detectors,
    bench_bo,
    bench_matmul_kernels,
    bench_attention,
    bench_simulator
);
criterion_main!(benches);
