//! Sharded-vs-serial equivalence for `mpgraph run --all` (DESIGN.md §15):
//! the merged `MetricsSnapshot` and the multi-process Chrome trace must be
//! byte-identical regardless of how many worker threads ran the matrix and
//! how the evaluation streams were cut into `SimSession` segments.

use mpgraph_bench::scale::ExpScale;
use mpgraph_bench::shard::{full_matrix, run_matrix_segmented};

/// A reduced scale: enough records for one training iteration plus a
/// short evaluation stream per combo, so three full-matrix runs stay
/// CI-cheap.
fn tiny() -> ExpScale {
    ExpScale {
        record_limit: 24_000,
        eval_records: 8_000,
        ..ExpScale::quick()
    }
}

#[test]
fn sharded_run_is_byte_identical_to_serial() {
    let scale = tiny();
    let serial = run_matrix_segmented(&scale, 1, 3_000);
    let sharded = run_matrix_segmented(&scale, 4, 3_000);
    // Same combos, same canonical order, independent of worker count.
    assert_eq!(serial.combos.len(), full_matrix(&scale).len());
    for (a, b) in serial.combos.iter().zip(&sharded.combos) {
        assert_eq!(a.combo, b.combo);
        assert_eq!(a.records, b.records, "{}", a.combo.label());
    }
    // The merged snapshot is the gated artifact: byte-identical.
    let a = serial.merged.to_json_pretty().expect("serialize");
    let b = sharded.merged.to_json_pretty().expect("serialize");
    assert_eq!(a, b, "merged snapshot differs between 1 and 4 shards");
    // So is the merged Perfetto export (one pid per combo).
    let ta = serde_json::to_string(&serial.chrome_trace()).expect("serialize");
    let tb = serde_json::to_string(&sharded.chrome_trace()).expect("serialize");
    assert_eq!(ta, tb, "merged trace differs between 1 and 4 shards");
    // And the merge actually carried state: counters, windows, phases.
    assert!(serial.merged.issued > 0);
    assert!(!serial.merged.windows.is_empty());
    assert_eq!(serial.merged.untracked_completions, 0);
    // Host wall-clock time is canonicalized out of the merged artifact.
    assert_eq!(serial.merged.inference_wall_ns.count, 0);
}

#[test]
fn segment_length_does_not_perturb_the_merge() {
    let scale = tiny();
    // Different shard counts AND different segment cuts: the resumable
    // SimSession hand-off makes segmentation invisible, so the merged
    // bytes still match.
    let fine = run_matrix_segmented(&scale, 2, 1_500);
    let coarse = run_matrix_segmented(&scale, 3, 6_000);
    assert_eq!(
        fine.merged.to_json_pretty().expect("serialize"),
        coarse.merged.to_json_pretty().expect("serialize"),
        "merged snapshot depends on segment length"
    );
    // Per-combo snapshots are themselves segment-invariant (one traced
    // scoreboard spans every segment of a combo).
    for (a, b) in fine.combos.iter().zip(&coarse.combos) {
        assert_eq!(a.snapshot.issued, b.snapshot.issued, "{}", a.combo.label());
        assert_eq!(a.snapshot.windows.len(), b.snapshot.windows.len());
    }
}
