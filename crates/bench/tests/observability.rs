//! End-to-end acceptance tests for the flight recorder + windowed
//! telemetry pipeline on the `pagerank_like` carrier workload: tracing
//! must not perturb the simulation, the windowed time series must be live,
//! the Chrome-trace export must be Perfetto-loadable with phase slices
//! matching confirmed transitions, and snapdiff must catch regressions.

use mpgraph_bench::runners::prefetching::sim_config;
use mpgraph_bench::snapdiff::{diff_snapshots, Tolerances};
use mpgraph_bench::workload::SynthConfig;
use mpgraph_bench::ExpScale;
use mpgraph_core::{
    train_mpgraph, MetricsSnapshot, MpGraphConfig, MpGraphPrefetcher, PrefetchScoreboard,
    TraceConfig,
};
use mpgraph_frameworks::MemRecord;
use mpgraph_sim::{simulate, simulate_observed, PrefetchObserver, SimResult, TraceEvent};

fn carrier() -> (Vec<MemRecord>, Vec<MemRecord>, usize) {
    let w = SynthConfig::pagerank_like().generate();
    (w.train, w.test, w.num_phases)
}

fn trained(train: &[MemRecord], num_phases: usize) -> MpGraphPrefetcher {
    train_mpgraph(
        train,
        num_phases,
        MpGraphConfig::default(),
        &ExpScale::quick().train,
    )
}

fn fingerprint(r: &SimResult) -> String {
    format!("{r:?}")
}

/// One traced carrier run shared by the assertions below (training is the
/// expensive part, so the traced artifacts are produced once).
fn traced_run() -> (SimResult, PrefetchScoreboard, MetricsSnapshot) {
    let (train, test, num_phases) = carrier();
    let mut mp = trained(&train, num_phases);
    let mut sb = PrefetchScoreboard::with_trace(
        num_phases,
        4096,
        TraceConfig {
            ring_capacity: 4096,
            window: 512,
            max_windows: 4096,
            ..TraceConfig::default()
        },
    );
    let cfg = sim_config();
    let r = simulate_observed(
        &test,
        &mut mp,
        &cfg,
        None,
        Some(&mut sb as &mut dyn PrefetchObserver),
    );
    let mut snap = sb.snapshot();
    mp.enrich_snapshot(&mut snap);
    (r, sb, snap)
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let (train, test, num_phases) = carrier();
    let cfg = sim_config();

    let mut mp = trained(&train, num_phases);
    let plain = simulate(&test, &mut mp, &cfg);

    let mut mp = trained(&train, num_phases);
    let mut sb = PrefetchScoreboard::new(num_phases, 4096);
    let observed = simulate_observed(
        &test,
        &mut mp,
        &cfg,
        None,
        Some(&mut sb as &mut dyn PrefetchObserver),
    );

    let mut mp = trained(&train, num_phases);
    let mut traced = PrefetchScoreboard::with_trace(num_phases, 4096, TraceConfig::default());
    let with_trace = simulate_observed(
        &test,
        &mut mp,
        &cfg,
        None,
        Some(&mut traced as &mut dyn PrefetchObserver),
    );

    assert_eq!(
        fingerprint(&plain),
        fingerprint(&observed),
        "observer perturbed the run"
    );
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&with_trace),
        "flight recorder perturbed the run"
    );
    assert!(
        !traced.trace_events().is_empty(),
        "recorder captured nothing"
    );
}

#[test]
fn traced_carrier_produces_live_telemetry_and_perfetto_trace() {
    let (_, sb, snap) = traced_run();

    // Steady-state allocation probe: the ring never outgrew its configured
    // capacity even though the run far exceeded it.
    let (ring_len, ring_cap, overwritten, _, _) =
        sb.trace_alloc_stats().expect("tracing was attached");
    assert_eq!(ring_cap, 4096, "ring reallocated beyond its capacity");
    assert!(ring_len <= ring_cap);
    let _ = overwritten; // carrier may or may not wrap; capacity is the contract

    // Windowed telemetry: at least two windows whose per-phase accuracy
    // actually moves over time.
    assert_eq!(snap.window_size, 512);
    assert!(
        snap.windows.len() >= 2,
        "expected >= 2 telemetry windows, got {}",
        snap.windows.len()
    );
    let mut per_phase: Vec<Vec<f64>> = Vec::new();
    for w in &snap.windows {
        for p in &w.phases {
            if per_phase.len() <= p.phase {
                per_phase.resize(p.phase + 1, Vec::new());
            }
            per_phase[p.phase].push(p.accuracy);
        }
    }
    let moving = per_phase
        .iter()
        .any(|series| series.iter().any(|a| (a - series[0]).abs() > 1e-12));
    assert!(moving, "per-phase accuracy is flat across every window");

    // Phase slices in the export match confirmed transitions: one slice
    // per confirmation boundary plus the final open slice.
    let confirmed = sb
        .trace_events()
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::PhaseConfirmed { .. }))
        .count();
    assert!(confirmed >= 1, "carrier never confirmed a phase transition");

    let chrome = sb.chrome_trace().expect("tracing was attached");
    let text = serde_json::to_string(&chrome).expect("serializable");
    let parsed = serde_json::parse_value(&text).expect("export must be valid JSON");
    let events = match parsed.get("traceEvents") {
        Some(serde::Value::Array(evs)) => evs,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!events.is_empty());

    let field_str = |v: &serde::Value, k: &str| -> Option<String> {
        match v.get(k) {
            Some(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };
    let field_u64 = |v: &serde::Value, k: &str| -> Option<u64> {
        match v.get(k) {
            Some(serde::Value::U64(n)) => Some(*n),
            _ => None,
        }
    };
    let phase_slices = events
        .iter()
        .filter(|e| {
            field_str(e, "ph").as_deref() == Some("X")
                && field_u64(e, "tid") == Some(1)
                && field_str(e, "name").is_some_and(|n| n.starts_with("phase "))
        })
        .count();
    assert_eq!(
        phase_slices,
        confirmed + 1,
        "phase slices must be confirmed transitions + the final open slice"
    );

    // Per-track timestamps are monotone (metadata events carry no ts).
    let mut last_ts: std::collections::HashMap<(u64, u64), u64> = std::collections::HashMap::new();
    for e in events {
        if field_str(e, "ph").as_deref() == Some("M") {
            continue;
        }
        let key = (
            field_u64(e, "pid").expect("pid"),
            field_u64(e, "tid").expect("tid"),
        );
        let ts = field_u64(e, "ts").expect("ts");
        if let Some(prev) = last_ts.get(&key) {
            assert!(ts >= *prev, "track {key:?} went backwards: {prev} -> {ts}");
        }
        last_ts.insert(key, ts);
    }

    // Snapshot JSON round-trips through the shim serde, windows included.
    let json = snap.to_json_pretty().expect("serializable");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserializable");
    assert_eq!(back.windows.len(), snap.windows.len());
    assert_eq!(back.issued_untimely, snap.issued_untimely);

    // snapdiff: self-diff passes; degraded accuracy beyond tolerance fails.
    assert!(!diff_snapshots(&snap, &snap.clone(), &Tolerances::default()).has_regressions());
    let mut degraded = snap.clone();
    degraded.accuracy = (snap.accuracy - 0.2).max(0.0);
    assert!(
        diff_snapshots(&snap, &degraded, &Tolerances::default()).has_regressions(),
        "snapdiff missed a 0.2 accuracy drop"
    );
}
