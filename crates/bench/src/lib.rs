//! # mpgraph-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5-6). Each artifact has a binary (`cargo run --release -p
//! mpgraph-bench --bin <name>`), all driven by the shared runners in this
//! library so the integration tests can exercise the same code paths at
//! `ExpScale::quick()`.
//!
//! | binary | artifact |
//! |---|---|
//! | `table4` | phase-detection precision/recall/F1 |
//! | `table6` | delta-prediction F1 per variant |
//! | `table7` | page-prediction accuracy@10 per variant |
//! | `table8` | complexity + IPC improvement |
//! | `figure2` | PCA motivation study |
//! | `figure3` | page-jump scatter |
//! | `figure9` | KSWIN vs Soft-KSWIN case study |
//! | `figure10_12` | prefetch accuracy / coverage / IPC sweep |
//! | `figure13` | knowledge-distillation compression sweep |
//! | `figure14` | distance prefetching under latency |
//! | `ablations` | soft-threshold, CSTP degree, modality ablations |
//! | `loadgen` | multi-stream service load sweep + chaos isolation |

pub mod metrics;
pub mod report;
pub mod runners;
pub mod scale;
pub mod serve_load;
pub mod shard;
pub mod snapdiff;
pub mod workload;

pub use scale::ExpScale;
