//! Open-loop load generation for the multi-stream prefetch service
//! (`mpgraph_core::serve`): drive N concurrent streams at a fixed offered
//! rate — independent of the service's completion rate, as real demand is
//! — and measure throughput, prediction-latency percentiles, and shed
//! fraction across a load sweep. A chaos mode drives the existing
//! fault-injection machinery through individual streams to prove that
//! quarantine isolates a faulty stream from its siblings.
//!
//! The service itself stays deterministic (its clock is simulated
//! cycles); only the reported `accesses_per_sec` uses host wall time,
//! the same compromise as the scoreboard's `inference_wall_ns`.

use crate::scale::ExpScale;
use crate::workload::SynthConfig;
use mpgraph_core::{
    build_detector, train_mpgraph, MetricsSnapshot, MpGraphConfig, MpGraphPrefetcher,
    PrefetchScoreboard, PrefetchService, ServeConfig, TraceConfig,
};
use mpgraph_frameworks::MemRecord;
use mpgraph_sim::{FaultConfig, FaultInjector, FaultKind, LlcAccess, Prefetcher};
use serde::Serialize;

/// Trained predictor stack shared by every generated stream. Each stream
/// gets its *own* prefetcher (cloned predictors + a fresh detector), so a
/// stream's phase state and quarantine cannot leak into a sibling.
pub struct LoadgenSetup {
    pub num_phases: usize,
    train: Vec<MemRecord>,
    test: Vec<MemRecord>,
    trained: MpGraphPrefetcher,
    history: usize,
}

impl LoadgenSetup {
    /// Trains the shared stack once on the synthetic PageRank carrier
    /// (the same carrier `--metrics-out` uses everywhere else).
    pub fn prepare(scale: &ExpScale) -> Self {
        let w = SynthConfig::pagerank_like().generate();
        let trained = train_mpgraph(
            &w.train,
            w.num_phases,
            MpGraphConfig::default(),
            &scale.train,
        );
        LoadgenSetup {
            num_phases: w.num_phases,
            train: w.train,
            test: w.test,
            trained,
            history: scale.train.history,
        }
    }

    /// A fresh per-stream prefetcher: shared trained weights, private
    /// detector/controller/history state.
    pub fn stream_prefetcher(&self) -> Box<dyn Prefetcher + Send> {
        let cfg = MpGraphConfig::default();
        Box::new(MpGraphPrefetcher::from_parts(
            self.trained.delta.clone(),
            self.trained.page.clone(),
            build_detector(&self.train, self.num_phases, cfg.detector),
            cfg,
            self.num_phases,
            self.history,
        ))
    }

    /// The replayed access stream (test split of the carrier).
    pub fn accesses(&self) -> &[MemRecord] {
        &self.test
    }
}

fn access_of(r: &MemRecord) -> LlcAccess {
    LlcAccess {
        pc: r.pc,
        block: r.block(),
        core: r.core,
        is_write: r.is_write,
        hit: false,
        cycle: 0,
    }
}

/// Items per pump the service can push through ML inference: the batch
/// size capped by how many `ml_item_cost` items fit the batch deadline.
pub fn saturation_rate(cfg: &ServeConfig) -> usize {
    let by_deadline = (cfg.batch_deadline / cfg.ml_item_cost.max(1)).max(1) as usize;
    cfg.batch_size.min(by_deadline).max(1)
}

/// One measured point of the load sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Offered load as a multiple of the service's saturation rate.
    pub load_factor: f64,
    /// Accesses ingested per pump tick.
    pub offered_per_tick: usize,
    pub ticks: u64,
    pub accesses: u64,
    /// Predictions returned (must equal `accesses` — the service answers
    /// everything, by ML or by fallback).
    pub predictions: u64,
    /// Host-wall-clock throughput of the generator loop.
    pub accesses_per_sec: f64,
    /// Service-cycle prediction-latency percentiles (admission -> result).
    pub p50_latency_cycles: u64,
    pub p99_latency_cycles: u64,
    pub shed_fraction: f64,
    pub ml_processed: u64,
    pub fallback_processed: u64,
    pub escalations: u64,
    pub final_overload_level: u64,
    pub quarantines: u64,
    pub max_queue_depth: u64,
}

/// The sweep result: one point per load factor, plus the full metrics
/// snapshot (serve section included) and optional Chrome trace of the
/// *highest*-load point — the one whose shed/ladder events matter.
pub struct SweepOutcome {
    pub points: Vec<LoadPoint>,
    pub snapshot: MetricsSnapshot,
    pub chrome_trace: Option<serde::Value>,
}

/// Builds a service with `streams` registered streams.
fn build_service(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    trace: Option<TraceConfig>,
) -> PrefetchService {
    let mut svc = match trace {
        Some(tc) => PrefetchService::with_scoreboard(
            cfg,
            PrefetchScoreboard::with_trace(setup.num_phases, 4096, tc),
        ),
        None => PrefetchService::new(cfg),
    };
    for s in 0..streams {
        svc.register_stream(s as u32, setup.stream_prefetcher());
    }
    svc
}

/// Drives `svc` open-loop for `ticks` pump rounds at `rate` accesses per
/// round, spread round-robin over `streams`. `stall_for` supplies the
/// injected inference stall per (stream, access) — the chaos hook.
fn drive(
    svc: &mut PrefetchService,
    setup: &LoadgenSetup,
    streams: usize,
    ticks: u64,
    rate: usize,
    mut stall_for: impl FnMut(u32) -> u64,
) -> (u64, u64, f64) {
    let records = setup.accesses();
    let mut cursors = vec![0usize; streams];
    // Offset each stream's replay so concurrent streams are not in
    // lockstep on identical addresses.
    for (s, c) in cursors.iter_mut().enumerate() {
        *c = (s * records.len() / streams.max(1)) % records.len().max(1);
    }
    let mut out = Vec::new();
    let mut offered = 0u64;
    let mut next_stream = 0usize;
    let started = std::time::Instant::now();
    for _ in 0..ticks {
        for _ in 0..rate {
            let s = next_stream % streams;
            next_stream += 1;
            let r = &records[cursors[s]];
            cursors[s] = (cursors[s] + 1) % records.len();
            let stall = stall_for(s as u32);
            svc.ingest(s as u32, &access_of(r), stall);
            offered += 1;
        }
        svc.pump(&mut out);
    }
    svc.flush(&mut out);
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    (offered, out.len() as u64, offered as f64 / elapsed)
}

/// Runs the sweep: one fresh service per load factor (points are
/// independent measurements, not a continuation).
pub fn run_load_sweep(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    ticks: u64,
    factors: &[f64],
    trace: Option<TraceConfig>,
) -> SweepOutcome {
    let saturation = saturation_rate(&cfg);
    let mut points = Vec::new();
    let mut snapshot = MetricsSnapshot::default();
    let mut chrome = None;
    let max_factor = factors.iter().cloned().fold(f64::MIN, f64::max);
    for &factor in factors {
        let rate = ((factor * saturation as f64).round() as usize).max(1);
        // Only the highest-load point carries the trace/metrics backend:
        // that run is the one with shed and ladder events worth keeping.
        let traced = (factor - max_factor).abs() < f64::EPSILON;
        let mut svc = build_service(setup, cfg, streams, if traced { trace } else { None });
        let (offered, predictions, per_sec) = drive(&mut svc, setup, streams, ticks, rate, |_| 0);
        let m = svc.metrics();
        points.push(LoadPoint {
            load_factor: factor,
            offered_per_tick: rate,
            ticks,
            accesses: offered,
            predictions,
            accesses_per_sec: per_sec,
            p50_latency_cycles: m.prediction_latency.p50,
            p99_latency_cycles: m.prediction_latency.p99,
            shed_fraction: m.shed_fraction,
            ml_processed: m.ml_processed,
            fallback_processed: m.fallback_processed,
            escalations: m.escalations,
            final_overload_level: m.overload_level,
            quarantines: m.quarantines,
            max_queue_depth: m.max_queue_depth,
        });
        if traced {
            chrome = svc.scoreboard().and_then(PrefetchScoreboard::chrome_trace);
            snapshot = svc.snapshot();
        }
    }
    SweepOutcome {
        points,
        snapshot,
        chrome_trace: chrome,
    }
}

/// Chaos-mode result: fault-injected victim streams vs their siblings.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosOutcome {
    pub victims: Vec<u32>,
    pub quarantined: Vec<u32>,
    pub stalls_injected: u64,
    /// Every victim quarantined, no healthy stream quarantined.
    pub isolation_held: bool,
    /// Of the healthy streams' predictions, the fraction served by the
    /// fallback (transient batch-timeout deferrals only; should be small).
    pub healthy_fallback_fraction: f64,
}

/// Runs the chaos experiment: the first quarter of the streams (at least
/// one) ingest through a [`FaultInjector`] wedged on `StallInference`,
/// the rest run clean, all at half the saturation rate so the overload
/// ladder stays out of the picture and any degradation is attributable
/// to per-stream isolation alone.
pub fn run_chaos(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    ticks: u64,
    seed: u64,
) -> ChaosOutcome {
    let streams = streams.max(2);
    let victims: Vec<u32> = (0..(streams as u32 / 4).max(1)).collect();
    let mut svc = build_service(setup, cfg, streams, None);
    let mut inj = FaultInjector::new(FaultConfig::only(FaultKind::StallInference, 0.8, seed));
    let rate = (saturation_rate(&cfg) / 2).max(1);

    let records = setup.accesses();
    let mut cursors = vec![0usize; streams];
    for (s, c) in cursors.iter_mut().enumerate() {
        *c = (s * records.len() / streams) % records.len().max(1);
    }
    let mut out = Vec::new();
    let mut next_stream = 0usize;
    for _ in 0..ticks {
        for _ in 0..rate {
            let s = next_stream % streams;
            next_stream += 1;
            let r = &records[cursors[s]];
            cursors[s] = (cursors[s] + 1) % records.len();
            let stall = if victims.contains(&(s as u32)) {
                inj.inference_stall()
            } else {
                0
            };
            svc.ingest(s as u32, &access_of(r), stall);
        }
        svc.pump(&mut out);
    }
    svc.flush(&mut out);

    let quarantined: Vec<u32> = (0..streams as u32)
        .filter(|&s| svc.is_quarantined(s))
        .collect();
    let victims_contained = victims.iter().all(|v| quarantined.contains(v));
    let healthy_clean = quarantined.iter().all(|q| victims.contains(q));
    let healthy_preds: Vec<&mpgraph_core::Prediction> = out
        .iter()
        .filter(|p| !victims.contains(&p.stream))
        .collect();
    let healthy_fallback = healthy_preds.iter().filter(|p| p.via_fallback).count();
    ChaosOutcome {
        victims,
        quarantined,
        stalls_injected: inj.stats.inference_stalls,
        isolation_held: victims_contained && healthy_clean,
        healthy_fallback_fraction: if healthy_preds.is_empty() {
            0.0
        } else {
            healthy_fallback as f64 / healthy_preds.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn sweep_reports_every_point_and_sheds_at_overload() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let outcome = run_load_sweep(
            &setup,
            quick_cfg(),
            4,
            120,
            &[0.5, 1.0, 2.0],
            Some(TraceConfig::with_adaptive()),
        );
        assert_eq!(outcome.points.len(), 3);
        for p in &outcome.points {
            // The access path never blocks and nothing is lost: every
            // offered access yields exactly one prediction.
            assert_eq!(p.accesses, p.predictions, "at {}x", p.load_factor);
            assert!(p.accesses_per_sec > 0.0);
            assert!(p.p99_latency_cycles >= p.p50_latency_cycles);
        }
        let under = &outcome.points[0];
        let over = &outcome.points[2];
        assert!(
            over.shed_fraction > under.shed_fraction,
            "2x load must shed more than 0.5x ({} vs {})",
            over.shed_fraction,
            under.shed_fraction
        );
        assert!(over.shed_fraction > 0.0, "2x saturation never shed");
        // p99 stays bounded by the service's own cost model: far below
        // what an unbounded queue would accumulate over the run.
        assert!(over.p99_latency_cycles > 0);
        assert!(over.p99_latency_cycles < svc_cycle_bound(over));
        // The overloaded point's snapshot carries the serve section.
        assert_eq!(outcome.snapshot.serve.ingested, over.accesses);
        assert!(outcome.snapshot.serve.shed_fraction > 0.0);
        assert!(outcome.chrome_trace.is_some(), "trace missing");
    }

    /// Loose structural bound on end-to-end latency: total service cycles
    /// the whole run can possibly accumulate, divided by nothing — any
    /// latency below this proves the histogram is not integrating
    /// unbounded queue growth.
    fn svc_cycle_bound(p: &LoadPoint) -> u64 {
        p.accesses * 2 + p.ml_processed * 1000 + p.fallback_processed * 16
    }

    #[test]
    fn chaos_quarantines_victims_and_spares_siblings() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let outcome = run_chaos(&setup, quick_cfg(), 8, 300, 7);
        assert!(outcome.stalls_injected > 0, "no faults injected");
        assert!(
            outcome.isolation_held,
            "victims {:?} quarantined {:?}",
            outcome.victims, outcome.quarantined
        );
        assert!(
            outcome.healthy_fallback_fraction < 0.5,
            "healthy streams mostly degraded: {}",
            outcome.healthy_fallback_fraction
        );
    }

    #[test]
    fn single_stream_service_replay_matches_direct_path_bit_exactly() {
        // Acceptance criterion: with one stream and no overload, the
        // service is a transparent wrapper — candidates and phase ids are
        // bit-identical to calling the prefetcher directly.
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let n = 400.min(setup.accesses().len());

        let mut direct = setup.stream_prefetcher();
        let mut direct_out: Vec<(Vec<u64>, u8)> = Vec::new();
        let mut buf = Vec::new();
        for r in &setup.accesses()[..n] {
            buf.clear();
            direct.on_access(&access_of(r), &mut buf);
            let _ = direct.effective_latency(0);
            direct_out.push((buf.clone(), direct.current_phase_id()));
        }

        let mut svc = PrefetchService::new(ServeConfig::default());
        svc.register_stream(0, setup.stream_prefetcher());
        let mut preds = Vec::new();
        for r in &setup.accesses()[..n] {
            svc.ingest(0, &access_of(r), 0);
            svc.pump(&mut preds);
        }
        assert_eq!(preds.len(), n);
        let served: Vec<(Vec<u64>, u8)> = preds
            .iter()
            .map(|p| (p.candidates.clone(), p.phase))
            .collect();
        assert_eq!(served, direct_out, "service replay diverged");
        assert!(preds.iter().all(|p| !p.via_fallback));
        assert_eq!(svc.metrics().shed_fraction, 0.0);
    }
}
