//! Open-loop load generation for the multi-stream prefetch service
//! (`mpgraph_core::serve`): drive N concurrent streams at a fixed offered
//! rate — independent of the service's completion rate, as real demand is
//! — and measure throughput, prediction-latency percentiles, and shed
//! fraction across a load sweep. A chaos mode drives the existing
//! fault-injection machinery through individual streams to prove that
//! quarantine isolates a faulty stream from its siblings.
//!
//! The service itself stays deterministic (its clock is simulated
//! cycles); only the reported `accesses_per_sec` uses host wall time,
//! the same compromise as the scoreboard's `inference_wall_ns`.

use crate::runners::perf::percentile;
use crate::scale::ExpScale;
use crate::workload::SynthConfig;
use mpgraph_core::{
    build_detector, train_mpgraph, LiveTelemetry, LiveTelemetryConfig, MetricsSnapshot,
    MpGraphConfig, MpGraphPrefetcher, Prediction, PrefetchScoreboard, PrefetchService, ServeConfig,
    SloConfig, TraceConfig,
};
use mpgraph_frameworks::MemRecord;
use mpgraph_sim::{FaultConfig, FaultInjector, FaultKind, LlcAccess, Prefetcher, TraceEvent};
use serde::Serialize;

/// Trained predictor stack shared by every generated stream. Each stream
/// gets its *own* prefetcher (cloned predictors + a fresh detector), so a
/// stream's phase state and quarantine cannot leak into a sibling.
pub struct LoadgenSetup {
    pub num_phases: usize,
    train: Vec<MemRecord>,
    test: Vec<MemRecord>,
    trained: MpGraphPrefetcher,
    history: usize,
}

impl LoadgenSetup {
    /// Trains the shared stack once on the synthetic PageRank carrier
    /// (the same carrier `--metrics-out` uses everywhere else).
    pub fn prepare(scale: &ExpScale) -> Self {
        let w = SynthConfig::pagerank_like().generate();
        let trained = train_mpgraph(
            &w.train,
            w.num_phases,
            MpGraphConfig::default(),
            &scale.train,
        );
        LoadgenSetup {
            num_phases: w.num_phases,
            train: w.train,
            test: w.test,
            trained,
            history: scale.train.history,
        }
    }

    /// Swaps the serve-path model for the distilled int8 student, the
    /// same pipeline as `mpgraph serve --quant`: distill both predictors
    /// from the trained teachers, then round the student weights onto
    /// their int8 grid and install the real int8 serving snapshots. Every
    /// stream cloned afterwards serves through the i8×i8→i32 kernels.
    /// Returns `(student_params, int8_weight_bytes)`.
    pub fn quantize(&mut self, scale: &ExpScale) -> (usize, usize) {
        use mpgraph_core::compress::{quantize_delta, quantize_page};
        use mpgraph_core::{distill_delta, distill_page, DistillCfg};
        let dc = DistillCfg::default();
        let mut sd = distill_delta(&self.trained.delta, &self.train, &dc, &scale.train);
        let mut sp = distill_page(&self.trained.page, &self.train, &dc, &scale.train);
        let (_, delta_bytes) = quantize_delta(&mut sd);
        let (_, page_bytes) = quantize_page(&mut sp);
        let params = sd.num_params() + sp.num_params();
        self.trained.delta = sd;
        self.trained.page = sp;
        (params, delta_bytes + page_bytes)
    }

    /// A fresh per-stream prefetcher: shared trained weights, private
    /// detector/controller/history state.
    pub fn stream_prefetcher(&self) -> Box<dyn Prefetcher + Send> {
        let cfg = MpGraphConfig::default();
        Box::new(MpGraphPrefetcher::from_parts(
            self.trained.delta.clone(),
            self.trained.page.clone(),
            build_detector(&self.train, self.num_phases, cfg.detector),
            cfg,
            self.num_phases,
            self.history,
        ))
    }

    /// The replayed access stream (test split of the carrier).
    pub fn accesses(&self) -> &[MemRecord] {
        &self.test
    }
}

fn access_of(r: &MemRecord) -> LlcAccess {
    LlcAccess {
        pc: r.pc,
        block: r.block(),
        core: r.core,
        is_write: r.is_write,
        hit: false,
        cycle: 0,
    }
}

/// Items per pump the service can push through ML inference: the batch
/// size capped by how many `ml_item_cost` items fit the batch deadline.
pub fn saturation_rate(cfg: &ServeConfig) -> usize {
    let by_deadline = (cfg.batch_deadline / cfg.ml_item_cost.max(1)).max(1) as usize;
    cfg.batch_size.min(by_deadline).max(1)
}

/// Zipf(s = 1) arrival weights across `streams`, normalized to sum to 1:
/// stream `s` receives a `1/(s+1)` share. Graph-analytics front-ends are
/// not uniform — a hot traversal stream dominates while cold streams
/// trickle — and the serve path must hold its latency under that skew.
pub fn zipf_weights(streams: usize) -> Vec<f64> {
    let mut w: Vec<f64> = (0..streams).map(|s| 1.0 / (s as f64 + 1.0)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum.max(f64::MIN_POSITIVE);
    }
    w
}

/// Per-stream latency spread of one sweep point: with heterogeneous
/// arrivals the aggregate p99 can hide a starving cold stream, so each
/// stream's percentiles are reported alongside it.
#[derive(Debug, Clone, Serialize)]
pub struct StreamLatency {
    pub stream: u32,
    pub predictions: u64,
    pub p50_latency_cycles: u64,
    pub p99_latency_cycles: u64,
}

/// Groups served predictions by stream and summarizes each stream's
/// admission→completion latency distribution.
pub fn per_stream_latencies(out: &[Prediction]) -> Vec<StreamLatency> {
    let mut by: std::collections::BTreeMap<u32, Vec<u64>> = std::collections::BTreeMap::new();
    for p in out {
        by.entry(p.stream).or_default().push(p.latency);
    }
    by.into_iter()
        .map(|(stream, mut lat)| {
            lat.sort_unstable();
            StreamLatency {
                stream,
                predictions: lat.len() as u64,
                p50_latency_cycles: percentile(&lat, 0.50),
                p99_latency_cycles: percentile(&lat, 0.99),
            }
        })
        .collect()
}

/// One measured point of the load sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Offered load as a multiple of the service's saturation rate.
    pub load_factor: f64,
    /// Accesses ingested per pump tick.
    pub offered_per_tick: usize,
    pub ticks: u64,
    pub accesses: u64,
    /// Predictions returned (must equal `accesses` — the service answers
    /// everything, by ML or by fallback).
    pub predictions: u64,
    /// Host-wall-clock throughput of the generator loop.
    pub accesses_per_sec: f64,
    /// Service-cycle prediction-latency percentiles (admission -> result).
    pub p50_latency_cycles: u64,
    pub p99_latency_cycles: u64,
    pub shed_fraction: f64,
    pub ml_processed: u64,
    pub fallback_processed: u64,
    pub escalations: u64,
    pub final_overload_level: u64,
    pub quarantines: u64,
    pub max_queue_depth: u64,
    /// Fused-forward accounting for this point (zero when `fuse` is off
    /// or no stream pair ever shared a batch-compatible wave).
    pub fused_batches: u64,
    pub fused_items: u64,
    pub fused_forwards: u64,
    /// Per-stream latency spread; one entry per stream that completed at
    /// least one prediction, ordered by stream id.
    pub per_stream: Vec<StreamLatency>,
}

/// The sweep result: one point per load factor, plus the full metrics
/// snapshot (serve section included) and optional Chrome trace of the
/// *highest*-load point — the one whose shed/ladder events matter.
pub struct SweepOutcome {
    pub points: Vec<LoadPoint>,
    pub snapshot: MetricsSnapshot,
    pub chrome_trace: Option<serde::Value>,
}

/// Builds a service with `streams` registered streams.
fn build_service(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    trace: Option<TraceConfig>,
) -> PrefetchService {
    let mut svc = match trace {
        Some(tc) => PrefetchService::with_scoreboard(
            cfg,
            PrefetchScoreboard::with_trace(setup.num_phases, 4096, tc),
        ),
        None => PrefetchService::new(cfg),
    };
    for s in 0..streams {
        svc.register_stream(s as u32, setup.stream_prefetcher());
    }
    svc
}

/// Drives `svc` open-loop for `ticks` pump rounds at `rate` accesses per
/// round. With `weights: None` the offered load spreads round-robin over
/// `streams`; with weights (see [`zipf_weights`]) each stream accrues
/// fractional credit `rate·wₛ` per tick and ingests one access per whole
/// credit, so skewed arrival rates stay exact over the run without any
/// randomness. `stall_for` supplies the injected inference stall per
/// (stream, access) — the chaos hook. Predictions accumulate into `out`.
#[allow(clippy::too_many_arguments)]
fn drive(
    svc: &mut PrefetchService,
    setup: &LoadgenSetup,
    streams: usize,
    ticks: u64,
    rate: usize,
    weights: Option<&[f64]>,
    mut stall_for: impl FnMut(u32) -> u64,
    out: &mut Vec<Prediction>,
) -> (u64, u64, f64) {
    let records = setup.accesses();
    let mut cursors = vec![0usize; streams];
    // Offset each stream's replay so concurrent streams are not in
    // lockstep on identical addresses.
    for (s, c) in cursors.iter_mut().enumerate() {
        *c = (s * records.len() / streams.max(1)) % records.len().max(1);
    }
    let mut credit = vec![0.0f64; streams];
    let mut offered = 0u64;
    let mut next_stream = 0usize;
    let before = out.len();
    let started = std::time::Instant::now();
    for _ in 0..ticks {
        match weights {
            None => {
                for _ in 0..rate {
                    let s = next_stream % streams;
                    next_stream += 1;
                    let r = &records[cursors[s]];
                    cursors[s] = (cursors[s] + 1) % records.len();
                    let stall = stall_for(s as u32);
                    svc.ingest(s as u32, &access_of(r), stall);
                    offered += 1;
                }
            }
            Some(w) => {
                for s in 0..streams {
                    credit[s] += rate as f64 * w.get(s).copied().unwrap_or(0.0);
                    while credit[s] >= 1.0 {
                        credit[s] -= 1.0;
                        let r = &records[cursors[s]];
                        cursors[s] = (cursors[s] + 1) % records.len();
                        let stall = stall_for(s as u32);
                        svc.ingest(s as u32, &access_of(r), stall);
                        offered += 1;
                    }
                }
            }
        }
        svc.pump(out);
    }
    svc.flush(out);
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    (
        offered,
        (out.len() - before) as u64,
        offered as f64 / elapsed,
    )
}

/// Runs the sweep: one fresh service per load factor (points are
/// independent measurements, not a continuation). `weights` selects
/// heterogeneous per-stream arrivals (see [`zipf_weights`]); `None` keeps
/// the uniform round-robin drive. `live` attaches a
/// [`LiveTelemetry`] pump to the *traced* (highest-load) point only —
/// the same point whose snapshot and Chrome trace the sweep keeps — so
/// its NDJSON/exposition sinks, pump-stage histograms, and SLO verdict
/// describe the run that actually sheds.
#[allow(clippy::too_many_arguments)]
pub fn run_load_sweep(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    ticks: u64,
    factors: &[f64],
    weights: Option<&[f64]>,
    trace: Option<TraceConfig>,
    live: Option<LiveTelemetry>,
) -> SweepOutcome {
    let saturation = saturation_rate(&cfg);
    let mut points = Vec::new();
    let mut snapshot = MetricsSnapshot::default();
    let mut chrome = None;
    let mut live = live;
    let max_factor = factors.iter().cloned().fold(f64::MIN, f64::max);
    for &factor in factors {
        let rate = ((factor * saturation as f64).round() as usize).max(1);
        // Only the highest-load point carries the trace/metrics backend:
        // that run is the one with shed and ladder events worth keeping.
        let traced = (factor - max_factor).abs() < f64::EPSILON;
        let mut svc = build_service(setup, cfg, streams, if traced { trace } else { None });
        if traced {
            if let Some(tel) = live.take() {
                svc.enable_live_telemetry(tel);
            }
        }
        let mut out = Vec::new();
        let (offered, predictions, per_sec) = drive(
            &mut svc,
            setup,
            streams,
            ticks,
            rate,
            weights,
            |_| 0,
            &mut out,
        );
        if traced {
            // Close the trailing partial interval and flush the NDJSON
            // sink before the snapshot is taken, so the live rollups in
            // `snapshot.serve` cover the whole run.
            svc.finish_live_telemetry();
        }
        let m = svc.metrics();
        points.push(LoadPoint {
            load_factor: factor,
            offered_per_tick: rate,
            ticks,
            accesses: offered,
            predictions,
            accesses_per_sec: per_sec,
            p50_latency_cycles: m.prediction_latency.p50,
            p99_latency_cycles: m.prediction_latency.p99,
            shed_fraction: m.shed_fraction,
            ml_processed: m.ml_processed,
            fallback_processed: m.fallback_processed,
            escalations: m.escalations,
            final_overload_level: m.overload_level,
            quarantines: m.quarantines,
            max_queue_depth: m.max_queue_depth,
            fused_batches: m.fused_batches,
            fused_items: m.fused_items,
            fused_forwards: m.fused_forwards,
            per_stream: per_stream_latencies(&out),
        });
        if traced {
            // The service-level export (not the scoreboard's) so the
            // live-telemetry counter tracks ride along when attached.
            chrome = svc.chrome_trace();
            snapshot = svc.snapshot();
        }
    }
    SweepOutcome {
        points,
        snapshot,
        chrome_trace: chrome,
    }
}

/// Fused-vs-per-item pump comparison at a fixed load.
#[derive(Debug, Clone, Serialize)]
pub struct FusedComparison {
    pub streams: usize,
    pub ticks: u64,
    pub offered_per_tick: usize,
    pub accesses: u64,
    pub fused_accesses_per_sec: f64,
    pub per_item_accesses_per_sec: f64,
    /// Wall-clock throughput ratio, fused over per-item.
    pub speedup: f64,
    /// Every prediction (stream, candidates, phase, latency, fallback
    /// flag) identical between the two services.
    pub bit_identical: bool,
    pub fused_batches: u64,
    pub fused_items: u64,
    pub fused_forwards: u64,
}

/// Drives two otherwise-identical services — one with the fused (B×T×d)
/// pump, one issuing per-item forwards — over the same lockstep workload
/// at 1× saturation, and checks the fused path is a pure optimization:
/// bit-identical output, fewer forwards, higher wall-clock throughput.
///
/// The streams replay the *same* record sequence (no per-stream offset):
/// graph-analytics front-ends fan one traversal out to parallel workers,
/// so concurrent streams sit in the same phase — exactly the condition
/// under which batch-compatible waves form.
pub fn run_fused_comparison(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    ticks: u64,
) -> FusedComparison {
    let rate = saturation_rate(&cfg);
    let records = setup.accesses();

    let run = |fuse: bool, ticks: u64| -> (Vec<Prediction>, f64, u64, (u64, u64, u64)) {
        let mut c = cfg;
        c.fuse = fuse;
        let mut svc = build_service(setup, c, streams, None);
        let mut out = Vec::new();
        let mut cursor = 0usize;
        let mut next_stream = 0usize;
        let mut offered = 0u64;
        let started = std::time::Instant::now();
        for _ in 0..ticks {
            for _ in 0..rate {
                let s = next_stream % streams;
                next_stream += 1;
                let r = &records[cursor];
                // All streams share one cursor: lockstep replay, advanced
                // once per full round so every stream sees every record.
                if s == streams - 1 {
                    cursor = (cursor + 1) % records.len();
                }
                svc.ingest(s as u32, &access_of(r), 0);
                offered += 1;
            }
            svc.pump(&mut out);
        }
        svc.flush(&mut out);
        let per_sec = offered as f64 / started.elapsed().as_secs_f64().max(1e-9);
        let m = svc.metrics();
        (
            out,
            per_sec,
            offered,
            (m.fused_batches, m.fused_items, m.fused_forwards),
        )
    };

    // A short throwaway drive first: the whole process is cold on the
    // first service (allocator, page tables, branch predictors), and the
    // comparison must not charge that warmup to whichever side runs
    // first.
    let _ = run(true, (ticks / 4).max(10));
    let (solo_out, solo_per_sec, _, _) = run(false, ticks);
    let (fused_out, fused_per_sec, accesses, (fb, fi, ff)) = run(true, ticks);

    let key = |p: &Prediction| {
        (
            p.stream,
            p.candidates.clone(),
            p.latency,
            p.via_fallback,
            p.phase,
        )
    };
    let bit_identical = fused_out.len() == solo_out.len()
        && fused_out
            .iter()
            .zip(solo_out.iter())
            .all(|(a, b)| key(a) == key(b));

    FusedComparison {
        streams,
        ticks,
        offered_per_tick: rate,
        accesses,
        fused_accesses_per_sec: fused_per_sec,
        per_item_accesses_per_sec: solo_per_sec,
        speedup: fused_per_sec / solo_per_sec.max(1e-9),
        bit_identical,
        fused_batches: fb,
        fused_items: fi,
        fused_forwards: ff,
    }
}

/// Chaos-mode result: fault-injected victim streams vs their siblings.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosOutcome {
    pub victims: Vec<u32>,
    pub quarantined: Vec<u32>,
    pub stalls_injected: u64,
    /// Every victim quarantined, no healthy stream quarantined.
    pub isolation_held: bool,
    /// Of the healthy streams' predictions, the fraction served by the
    /// fallback (transient batch-timeout deferrals only; should be small).
    pub healthy_fallback_fraction: f64,
    /// Record index at which the live SLO monitor first escalated its
    /// verdict (`SloEscalate` in the trace), if it ever did.
    pub slo_escalated_at: Option<u64>,
    /// Record index of the first per-stream quarantine trip, if any.
    pub first_quarantine_at: Option<u64>,
    /// The burn-rate monitor saw the fault before the first deadline-miss
    /// window filled and tripped quarantine — the early-warning property
    /// the live telemetry exists to provide.
    pub slo_fired_first: bool,
}

/// Runs the chaos experiment: the first quarter of the streams (at least
/// one) ingest through a [`FaultInjector`] wedged on `StallInference`,
/// the rest run clean, all at half the saturation rate so the overload
/// ladder stays out of the picture and any degradation is attributable
/// to per-stream isolation alone.
///
/// The service runs with a tracing scoreboard plus a passive
/// [`LiveTelemetry`] attachment (`wire_ladder: false` — wiring the SLO
/// verdict into the ladder here would shed ML work and starve the
/// deadline-observation stream the quarantine path needs, turning the
/// detection-latency comparison into a measurement artifact). The trace
/// then yields the timestamps of the first `SloEscalate` vs the first
/// `StreamQuarantine`, i.e. how much earlier the interval burn-rate
/// monitor fires than the per-stream miss window.
pub fn run_chaos(
    setup: &LoadgenSetup,
    cfg: ServeConfig,
    streams: usize,
    ticks: u64,
    seed: u64,
) -> ChaosOutcome {
    let streams = streams.max(2);
    let victims: Vec<u32> = (0..(streams as u32 / 4).max(1)).collect();
    let mut svc = build_service(setup, cfg, streams, Some(TraceConfig::with_adaptive()));
    let lcfg = LiveTelemetryConfig {
        interval_pumps: 4,
        slo: SloConfig {
            fast_burn: 2.0,
            window_intervals: 2,
            wire_ladder: false,
            ..SloConfig::default()
        },
        ..LiveTelemetryConfig::default()
    };
    if let Ok(c) = lcfg.try_new() {
        svc.enable_live_telemetry(LiveTelemetry::new(c));
    }
    let mut inj = FaultInjector::new(FaultConfig::only(FaultKind::StallInference, 0.8, seed));
    let rate = (saturation_rate(&cfg) / 2).max(1);

    let records = setup.accesses();
    let mut cursors = vec![0usize; streams];
    for (s, c) in cursors.iter_mut().enumerate() {
        *c = (s * records.len() / streams) % records.len().max(1);
    }
    let mut out = Vec::new();
    let mut next_stream = 0usize;
    for _ in 0..ticks {
        for _ in 0..rate {
            let s = next_stream % streams;
            next_stream += 1;
            let r = &records[cursors[s]];
            cursors[s] = (cursors[s] + 1) % records.len();
            let stall = if victims.contains(&(s as u32)) {
                inj.inference_stall()
            } else {
                0
            };
            svc.ingest(s as u32, &access_of(r), stall);
        }
        svc.pump(&mut out);
    }
    svc.flush(&mut out);
    svc.finish_live_telemetry();

    let quarantined: Vec<u32> = (0..streams as u32)
        .filter(|&s| svc.is_quarantined(s))
        .collect();
    let victims_contained = victims.iter().all(|v| quarantined.contains(v));
    let healthy_clean = quarantined.iter().all(|q| victims.contains(q));
    let healthy_preds: Vec<&mpgraph_core::Prediction> = out
        .iter()
        .filter(|p| !victims.contains(&p.stream))
        .collect();
    let healthy_fallback = healthy_preds.iter().filter(|p| p.via_fallback).count();
    // Both detection events are alarms, so the adaptive flight recorder
    // keeps their windows even when the ring wraps.
    let events = svc
        .scoreboard()
        .map(PrefetchScoreboard::trace_events)
        .unwrap_or_default();
    let slo_escalated_at = events
        .iter()
        .find(|(_, e)| matches!(e, TraceEvent::SloEscalate { .. }))
        .map(|(ts, _)| *ts);
    let first_quarantine_at = events
        .iter()
        .find(|(_, e)| matches!(e, TraceEvent::StreamQuarantine { .. }))
        .map(|(ts, _)| *ts);
    let slo_fired_first = match (slo_escalated_at, first_quarantine_at) {
        (Some(slo), Some(quar)) => slo <= quar,
        _ => false,
    };
    ChaosOutcome {
        victims,
        quarantined,
        stalls_injected: inj.stats.inference_stalls,
        isolation_held: victims_contained && healthy_clean,
        healthy_fallback_fraction: if healthy_preds.is_empty() {
            0.0
        } else {
            healthy_fallback as f64 / healthy_preds.len() as f64
        },
        slo_escalated_at,
        first_quarantine_at,
        slo_fired_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn sweep_reports_every_point_and_sheds_at_overload() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let outcome = run_load_sweep(
            &setup,
            quick_cfg(),
            4,
            120,
            &[0.5, 1.0, 2.0],
            None,
            Some(TraceConfig::with_adaptive()),
            None,
        );
        assert_eq!(outcome.points.len(), 3);
        for p in &outcome.points {
            // The access path never blocks and nothing is lost: every
            // offered access yields exactly one prediction.
            assert_eq!(p.accesses, p.predictions, "at {}x", p.load_factor);
            assert!(p.accesses_per_sec > 0.0);
            assert!(p.p99_latency_cycles >= p.p50_latency_cycles);
            // The spread accounts for every prediction, stream by stream.
            let spread: u64 = p.per_stream.iter().map(|s| s.predictions).sum();
            assert_eq!(spread, p.predictions, "at {}x", p.load_factor);
        }
        let under = &outcome.points[0];
        let over = &outcome.points[2];
        assert!(
            over.shed_fraction > under.shed_fraction,
            "2x load must shed more than 0.5x ({} vs {})",
            over.shed_fraction,
            under.shed_fraction
        );
        assert!(over.shed_fraction > 0.0, "2x saturation never shed");
        // p99 stays bounded by the service's own cost model: far below
        // what an unbounded queue would accumulate over the run.
        assert!(over.p99_latency_cycles > 0);
        assert!(over.p99_latency_cycles < svc_cycle_bound(over));
        // The overloaded point's snapshot carries the serve section.
        assert_eq!(outcome.snapshot.serve.ingested, over.accesses);
        assert!(outcome.snapshot.serve.shed_fraction > 0.0);
        assert!(outcome.chrome_trace.is_some(), "trace missing");
    }

    /// Loose structural bound on end-to-end latency: total service cycles
    /// the whole run can possibly accumulate, divided by nothing — any
    /// latency below this proves the histogram is not integrating
    /// unbounded queue growth.
    fn svc_cycle_bound(p: &LoadPoint) -> u64 {
        p.accesses * 2 + p.ml_processed * 1000 + p.fallback_processed * 16
    }

    #[test]
    fn zipf_drive_skews_arrivals_and_reports_per_stream_spread() {
        let w = zipf_weights(4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);

        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let outcome = run_load_sweep(&setup, quick_cfg(), 4, 120, &[1.0], Some(&w), None, None);
        let p = &outcome.points[0];
        assert_eq!(p.accesses, p.predictions);
        // The hot stream sees Zipf-many more completions than the cold
        // one, and every stream still completes something.
        assert_eq!(p.per_stream.len(), 4);
        let hot = &p.per_stream[0];
        let cold = &p.per_stream[3];
        assert_eq!(hot.stream, 0);
        assert_eq!(cold.stream, 3);
        assert!(
            hot.predictions > 2 * cold.predictions,
            "hot {} vs cold {}",
            hot.predictions,
            cold.predictions
        );
        assert!(cold.predictions > 0);
        for s in &p.per_stream {
            assert!(s.p99_latency_cycles >= s.p50_latency_cycles);
        }
    }

    #[test]
    fn fused_pump_is_bit_identical_and_batches_lockstep_streams() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let cmp = run_fused_comparison(&setup, quick_cfg(), 4, 150);
        assert!(cmp.accesses > 0);
        assert!(
            cmp.bit_identical,
            "fused pump diverged from per-item pump ({} accesses)",
            cmp.accesses
        );
        // Lockstep same-phase streams form real multi-lane groups, and
        // fusing them saves forwards: strictly fewer forwards than items.
        assert!(cmp.fused_batches > 0, "no fused batches formed");
        assert!(
            cmp.fused_items > cmp.fused_batches,
            "no wave ever held more than one lane ({} items / {} batches)",
            cmp.fused_items,
            cmp.fused_batches
        );
        assert!(cmp.fused_forwards > 0);
        // Wall-clock gate stays loose (CI machines vary); the release
        // loadgen binary reports ~6x at 8 streams via lane dedup.
        assert!(
            cmp.speedup > 1.0,
            "fused pump not faster: {:.2}x",
            cmp.speedup
        );
    }

    #[test]
    fn fused_pump_issues_one_spatial_forward_per_group() {
        // With the temporal walk disabled, a fused group costs exactly
        // one forward regardless of how many lanes ride it — the whole
        // point of stacking the pump batch into one (B×T×d) input.
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let streams = 4usize;
        let cfg = ServeConfig::default();
        let mut svc = PrefetchService::new(cfg);
        for s in 0..streams {
            let mut mcfg = MpGraphConfig::default();
            mcfg.cstp.temporal_degree = 0;
            svc.register_stream(
                s as u32,
                Box::new(MpGraphPrefetcher::from_parts(
                    setup.trained.delta.clone(),
                    setup.trained.page.clone(),
                    build_detector(&setup.train, setup.num_phases, mcfg.detector),
                    mcfg,
                    setup.num_phases,
                    setup.history,
                )),
            );
        }
        let mut out = Vec::new();
        let n = 200.min(setup.accesses().len());
        for r in &setup.accesses()[..n] {
            // Identical records to every stream: identical histories,
            // phases, and signatures, so each pump wave is one group.
            for s in 0..streams {
                svc.ingest(s as u32, &access_of(r), 0);
            }
            svc.pump(&mut out);
        }
        let m = svc.metrics();
        assert!(m.fused_batches > 0, "no fused batches formed");
        assert_eq!(
            m.fused_items,
            streams as u64 * m.fused_batches,
            "a wave split into multiple groups despite identical streams"
        );
        assert_eq!(
            m.fused_forwards, m.fused_batches,
            "spatial-only group took more than one forward"
        );
    }

    #[test]
    fn chaos_quarantines_victims_and_spares_siblings() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let outcome = run_chaos(&setup, quick_cfg(), 8, 300, 7);
        assert!(outcome.stalls_injected > 0, "no faults injected");
        assert!(
            outcome.isolation_held,
            "victims {:?} quarantined {:?}",
            outcome.victims, outcome.quarantined
        );
        assert!(
            outcome.healthy_fallback_fraction < 0.5,
            "healthy streams mostly degraded: {}",
            outcome.healthy_fallback_fraction
        );
        // Acceptance criterion: the interval burn-rate monitor fires
        // before the per-stream deadline-miss window can possibly fill —
        // the SLO escalation is the early warning, quarantine the cure.
        assert!(
            outcome.slo_escalated_at.is_some(),
            "SLO monitor never escalated under injected stalls"
        );
        assert!(
            outcome.first_quarantine_at.is_some(),
            "no quarantine event in the trace"
        );
        assert!(
            outcome.slo_fired_first,
            "SLO escalation at {:?} did not precede first quarantine at {:?}",
            outcome.slo_escalated_at, outcome.first_quarantine_at
        );
    }

    #[test]
    fn sweep_live_telemetry_covers_the_traced_point() {
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let dir = std::env::temp_dir();
        let ndjson = dir.join("mpgraph_loadgen_live_test.ndjson");
        let expose = dir.join("mpgraph_loadgen_live_test.prom");
        let lcfg = LiveTelemetryConfig {
            interval_pumps: 8,
            ..LiveTelemetryConfig::default()
        }
        .try_new()
        .expect("valid live config");
        let tel = LiveTelemetry::new(lcfg)
            .with_sink(&ndjson.display().to_string())
            .expect("ndjson sink")
            .with_expose(&expose);
        let outcome = run_load_sweep(
            &setup,
            quick_cfg(),
            4,
            120,
            &[0.5, 2.0],
            None,
            Some(TraceConfig::with_adaptive()),
            Some(tel),
        );
        // Telemetry rode the traced (highest-load) point: the snapshot's
        // serve section carries closed intervals with monotonic sequence
        // numbers and populated pump-stage spans.
        let serve = &outcome.snapshot.serve;
        assert!(
            serve.live.len() >= 2,
            "expected several intervals, got {}",
            serve.live.len()
        );
        for (i, iv) in serve.live.iter().enumerate() {
            assert_eq!(iv.seq, i as u64, "interval seq not monotonic");
        }
        let sum_ingested: u64 = serve.live.iter().map(|iv| iv.delta_ingested).sum();
        assert_eq!(
            sum_ingested, serve.ingested,
            "interval deltas do not telescope to the cumulative counter"
        );
        assert!(
            serve.pump_stages.forward_f32_ns.count > 0,
            "no forward spans recorded"
        );
        assert!(
            serve.pump_stages.self_overhead_fraction < 0.25,
            "telemetry overhead implausibly high: {}",
            serve.pump_stages.self_overhead_fraction
        );
        // The sinks were written: at least one NDJSON line, and an
        // exposition dump in Prometheus text format.
        let lines = std::fs::read_to_string(&ndjson).expect("ndjson written");
        assert!(
            lines
                .lines()
                .filter(|l| l.contains("\"delta_ingested\""))
                .count()
                >= 2,
            "NDJSON sink missing interval records"
        );
        let prom = std::fs::read_to_string(&expose).expect("exposition written");
        assert!(prom.contains("# TYPE"), "not Prometheus text format");
        assert!(prom.contains("mpgraph_serve_ingested_total"));
        // The Chrome export is the service-level one: livetel counter
        // tracks are present alongside the scoreboard's.
        let trace = outcome.chrome_trace.expect("trace missing");
        let text = serde_json::to_string(&trace).expect("trace serializes");
        assert!(text.contains("slo_burn_rate"), "livetel counters absent");
        let _ = std::fs::remove_file(&ndjson);
        let _ = std::fs::remove_file(&expose);
    }

    #[test]
    fn single_stream_service_replay_matches_direct_path_bit_exactly() {
        // Acceptance criterion: with one stream and no overload, the
        // service is a transparent wrapper — candidates and phase ids are
        // bit-identical to calling the prefetcher directly.
        let scale = ExpScale::quick();
        let setup = LoadgenSetup::prepare(&scale);
        let n = 400.min(setup.accesses().len());

        let mut direct = setup.stream_prefetcher();
        let mut direct_out: Vec<(Vec<u64>, u8)> = Vec::new();
        let mut buf = Vec::new();
        for r in &setup.accesses()[..n] {
            buf.clear();
            direct.on_access(&access_of(r), &mut buf);
            let _ = direct.effective_latency(0);
            direct_out.push((buf.clone(), direct.current_phase_id()));
        }

        let mut svc = PrefetchService::new(ServeConfig::default());
        svc.register_stream(0, setup.stream_prefetcher());
        let mut preds = Vec::new();
        for r in &setup.accesses()[..n] {
            svc.ingest(0, &access_of(r), 0);
            svc.pump(&mut preds);
        }
        assert_eq!(preds.len(), n);
        let served: Vec<(Vec<u64>, u8)> = preds
            .iter()
            .map(|p| (p.candidates.clone(), p.phase))
            .collect();
        assert_eq!(served, direct_out, "service replay diverged");
        assert!(preds.iter().all(|p| !p.via_fallback));
        assert_eq!(svc.metrics().shed_fraction, 0.0);
    }
}
