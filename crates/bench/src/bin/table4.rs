//! Regenerates Table 4: phase-transition detection precision/recall/F1 for
//! KSWIN, Soft-KSWIN, DT, and Soft-DT on all three frameworks.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin table4 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json, f, print_table};
use mpgraph_bench::runners::detection::run_table4;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rows = run_table4(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.framework.clone(),
                r.train_mode.to_string(),
                r.detector.clone(),
                f(r.precision, 4),
                f(r.recall, 4),
                f(r.f1, 4),
            ]
        })
        .collect();
    print_table(
        "Table 4: Phase Detection Evaluation",
        &["Framework", "Train", "Detector", "P", "R", "F1"],
        &table,
    );
    if let Ok(p) = dump_json("table4", &rows) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
