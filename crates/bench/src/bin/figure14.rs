//! Regenerates Figure 14: effectiveness of distance prefetching (DP) for
//! MPGraph under injected inference latency, for the uncompressed and the
//! compressed models, against the BO reference.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure14 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, print_table};
use mpgraph_bench::runners::prefetching::run_figure14;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rows = run_figure14(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.latency_cycles.to_string(),
                if r.distance_prefetching { "DP" } else { "-" }.into(),
                format!("{:+.2}%", r.ipc_improvement_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 14: distance prefetching under inference latency (GPOP PR)",
        &["Config", "Latency (cyc)", "DP", "IPC Impv"],
        &table,
    );
    if let Ok(p) = dump_json_compact("figure14", &rows) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
