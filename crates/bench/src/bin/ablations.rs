//! Design-choice ablations called out in DESIGN.md: the Soft-KSWIN soft
//! threshold `th_r`, the CSTP (Ds, Dt) degree split, and the modality
//! ablation (address+PC vs single-modality inputs).
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin ablations [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, f, pct, print_table};
use mpgraph_bench::runners::prediction::run_modality_ablation;
use mpgraph_bench::runners::prefetching::run_degree_ablation;
use mpgraph_bench::workload::{build_workload, carrier};
use mpgraph_bench::ExpScale;
use mpgraph_frameworks::{App, Framework};
use mpgraph_phase::{evaluate_transitions, KswinConfig, SoftKswin, TransitionDetector};
use serde::Serialize;

#[derive(Serialize)]
struct ThrRow {
    th_r: f64,
    precision: f64,
    recall: f64,
    f1: f64,
}

fn soft_threshold_sweep(scale: &ExpScale) -> Vec<ThrRow> {
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let pcs: Vec<u64> = w.test_llc.iter().map(|r| r.pc).collect();
    let phases: Vec<u8> = w.test_llc.iter().map(|r| r.phase).collect();
    let truths: Vec<usize> = (1..phases.len())
        .filter(|&i| phases[i] != phases[i - 1])
        .collect();
    let min_gap = truths
        .windows(2)
        .map(|w| w[1] - w[0])
        .min()
        .unwrap_or(1000)
        .max(64);
    [0.1, 0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&th| {
            let mut det = SoftKswin::new(KswinConfig::default());
            det.th_r = th;
            let detections: Vec<usize> = pcs
                .iter()
                .enumerate()
                .filter_map(|(i, &pc)| det.update(pc).then_some(i))
                .collect();
            let prf = evaluate_transitions(&detections, &truths, 16, min_gap / 2);
            ThrRow {
                th_r: th,
                precision: prf.precision,
                recall: prf.recall,
                f1: prf.f1,
            }
        })
        .collect()
}

fn main() {
    let scale = ExpScale::from_args();

    let thr = soft_threshold_sweep(&scale);
    print_table(
        "Ablation A: Soft-KSWIN soft threshold th_r (GPOP PR)",
        &["th_r", "P", "R", "F1"],
        &thr.iter()
            .map(|r| vec![f(r.th_r, 1), f(r.precision, 4), f(r.recall, 4), f(r.f1, 4)])
            .collect::<Vec<_>>(),
    );

    let degrees = run_degree_ablation(&scale);
    print_table(
        "Ablation B: CSTP degree split (Ds, Dt) (GPOP PR)",
        &["Ds", "Dt", "MaxDeg", "Accuracy", "Coverage", "IPC Impv"],
        &degrees
            .iter()
            .map(|r| {
                vec![
                    r.spatial_degree.to_string(),
                    r.temporal_degree.to_string(),
                    r.max_degree.to_string(),
                    pct(r.accuracy),
                    pct(r.coverage),
                    format!("{:+.2}%", r.ipc_improvement_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let modality = run_modality_ablation(&scale);
    print_table(
        "Ablation C: input modalities (delta-prediction F1, GPOP PR)",
        &["Setting", "F1"],
        &modality
            .iter()
            .map(|r| vec![r.setting.clone(), f(r.f1, 4)])
            .collect::<Vec<_>>(),
    );

    dump_json_compact("ablation_thr", &thr).ok();
    dump_json_compact("ablation_degrees", &degrees).ok();
    dump_json_compact("ablation_modality", &modality).ok();
    println!("\nwrote results/ablation_*.json");
    emit_if_requested(&scale);
}
