//! Perf runner: kernel speedups, warm-arena inference latency, and
//! training throughput, with a baseline-comparison mode for CI.
//!
//! Usage:
//!   `cargo run --release -p mpgraph-bench --bin perf [--quick] [--metrics-out <path>]`
//!       runs the suite and (re)writes the repo-root `BENCH_kernels.json`
//!       baseline;
//!   `cargo run --release -p mpgraph-bench --bin perf -- --quick --check`
//!       runs the suite, writes the current numbers to
//!       `results/BENCH_kernels_current.json`, compares calibration-
//!       normalized p50s against the committed baseline, and exits
//!       non-zero on a >15% regression unless `MPGRAPH_PERF_OVERRIDE` is
//!       set in the environment.

use std::process::ExitCode;

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json, print_table};
use mpgraph_bench::runners::perf::{compare, run_perf, run_perf_envelope, PerfReport, TOLERANCE};
use mpgraph_bench::ExpScale;

const BASELINE: &str = "BENCH_kernels.json";
/// Baseline mode: passes merged into the envelope.
const BASELINE_PASSES: usize = 3;
/// Check mode: measurement attempts before the gate fails. A code-caused
/// regression reproduces on every attempt; a machine-load wave does not.
const CHECK_ATTEMPTS: usize = 3;

fn print_report(rep: &PerfReport) {
    let kernels: Vec<Vec<String>> = rep
        .kernels
        .iter()
        .map(|k| {
            vec![
                k.name.clone(),
                format!("{}", k.tiled_p50_ns),
                format!("{}", k.ref_p50_ns),
                format!("{:.2}x", k.speedup),
            ]
        })
        .collect();
    print_table(
        "Kernel speedups (tiled vs seed reference loops)",
        &["Kernel", "Tiled p50 ns", "Ref p50 ns", "Speedup"],
        &kernels,
    );
    let gated: Vec<Vec<String>> = rep
        .gated
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                format!("{}", e.p50_ns),
                format!("{}", e.p99_ns),
                format!("{:.3}", e.normalized_p50),
            ]
        })
        .collect();
    print_table(
        "Gated latencies (median per-pair ratio vs interleaved reference)",
        &["Entry", "p50 ns", "p99 ns", "Normalized p50"],
        &gated,
    );
    println!(
        "\ncalibration p50: {} ns | AMMA-PS train: {:.0} tokens/s | \
         Eq. 12 paper config: {} cycles ({:.0} ns @ 1 GHz)",
        rep.calibration_p50_ns, rep.train_tokens_per_sec, rep.eq12_paper_cycles, rep.eq12_paper_ns
    );
}

fn check(first: PerfReport, quick: bool) -> ExitCode {
    let text = match std::fs::read_to_string(BASELINE) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "perf gate: cannot read {BASELINE}: {e}\n\
                 Generate it with `cargo run --release -p mpgraph-bench --bin perf` \
                 and commit the result."
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline: PerfReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf gate: {BASELINE} does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rep = first;
    let mut problems = Vec::new();
    for attempt in 1..=CHECK_ATTEMPTS {
        if attempt > 1 {
            eprintln!("perf gate: attempt {attempt}/{CHECK_ATTEMPTS} (re-measuring)");
            rep = run_perf(quick);
        }
        problems = compare(&baseline, &rep, TOLERANCE);
        if problems.is_empty() {
            break;
        }
    }
    if let Ok(p) = dump_json("BENCH_kernels_current", &rep) {
        println!("wrote {}", p.display());
    }
    if problems.is_empty() {
        println!(
            "perf gate: OK — {} gated entries within {:.0}% of the baseline",
            rep.gated.len(),
            TOLERANCE * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "perf gate: {} problem(s) vs {BASELINE} (reproduced over {CHECK_ATTEMPTS} attempts):",
        problems.len()
    );
    for p in &problems {
        eprintln!("  - {p}");
    }
    // Empty counts as unset: CI pipes the `perf-override` label through
    // this variable and sets it to "" when the label is absent.
    let override_set = std::env::var("MPGRAPH_PERF_OVERRIDE").is_ok_and(|v| !v.is_empty());
    if override_set {
        eprintln!(
            "perf gate: MPGRAPH_PERF_OVERRIDE set — accepting the regression. \
             Refresh {BASELINE} in this PR to make the new numbers the baseline."
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "perf gate: failing. If the slowdown is an accepted trade-off, rerun the \
         default mode to refresh {BASELINE}, or apply the `perf-override` PR label \
         (sets MPGRAPH_PERF_OVERRIDE) to waive this run."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        ExpScale::quick()
    } else {
        ExpScale::standard()
    };
    if args.iter().any(|a| a == "--check") {
        let rep = run_perf(quick);
        print_report(&rep);
        emit_if_requested(&scale);
        return check(rep, quick);
    }
    // Baseline mode: envelope over several passes, so a transiently quiet
    // machine cannot set an unachievably tight bar.
    let rep = run_perf_envelope(quick, BASELINE_PASSES);
    print_report(&rep);
    emit_if_requested(&scale);
    match serde_json::to_string_pretty(&rep) {
        Ok(json) => match std::fs::write(BASELINE, json + "\n") {
            Ok(()) => {
                println!("wrote {BASELINE} (new baseline — commit it)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {BASELINE}: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
