//! Regenerates Figure 2: PCA of memory-access windows (a) and PC windows
//! (b) from GPOP CC+PR, labelled by Scatter/Gather phase. Prints the top-3
//! component coordinates per phase centroid and the separation scores.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure2 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, f, print_table};
use mpgraph_bench::runners::motivation::run_figure2;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let data = run_figure2(&scale);
    let summarize = |points: &[mpgraph_bench::runners::motivation::PcaPoint]| -> Vec<Vec<String>> {
        let phases: std::collections::BTreeSet<u8> = points.iter().map(|p| p.phase).collect();
        phases
            .into_iter()
            .map(|ph| {
                let sel: Vec<_> = points.iter().filter(|p| p.phase == ph).collect();
                let mut row = vec![format!("phase {ph}"), sel.len().to_string()];
                for c in 0..3 {
                    let mean: f64 = sel.iter().map(|p| p.components[c] as f64).sum::<f64>()
                        / sel.len().max(1) as f64;
                    row.push(f(mean, 3));
                }
                row
            })
            .collect()
    };
    print_table(
        "Figure 2a: PCA of memory accesses (phase centroids)",
        &["Phase", "N", "Comp1", "Comp2", "Comp3"],
        &summarize(&data.access_points),
    );
    print_table(
        "Figure 2b: PCA of program counters (phase centroids)",
        &["Phase", "N", "Comp1", "Comp2", "Comp3"],
        &summarize(&data.pc_points),
    );
    println!("\nSeparation (between-centroid distance / within-phase spread):");
    println!("  accesses: {:.2}", data.access_separation);
    println!(
        "  PCs:      {:.2}  (>1 ⇒ phases separable, the paper's claim)",
        data.pc_separation
    );
    if let Ok(p) = dump_json_compact("figure2", &data) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
