//! Regenerates Figures 10-12: prefetch accuracy (Fig 10), prefetch
//! coverage (Fig 11), and IPC improvement (Fig 12) for BO, ISB,
//! Delta-LSTM, Voyager, TransFetch, and MPGraph over the (framework, app)
//! × dataset sweep.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure10_12
//!         [--quick] [--datasets=all] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, f, pct, print_table};
use mpgraph_bench::runners::prefetching::{prefetcher_means, run_figures_10_to_12};
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rows = run_figures_10_to_12(&scale);

    // Figure 12: per-cell IPC improvement.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.framework.clone(),
                r.app.clone(),
                r.dataset.clone(),
                r.prefetcher.clone(),
                pct(r.accuracy),
                pct(r.coverage),
                f(r.ipc, 3),
                format!("{:+.2}%", r.ipc_improvement_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 12 detail: per-workload prefetching results",
        &[
            "Framework",
            "App",
            "Dataset",
            "Prefetcher",
            "Acc",
            "Cov",
            "IPC",
            "IPC Impv",
        ],
        &table,
    );

    // Figures 10/11 and the Fig 12 summary: per-prefetcher means.
    let means = prefetcher_means(&rows);
    let summary: Vec<Vec<String>> = means
        .iter()
        .map(|(n, acc, cov, ipc)| vec![n.clone(), pct(*acc), pct(*cov), format!("{ipc:+.2}%")])
        .collect();
    print_table(
        "Figures 10/11/12 summary: means over all workloads",
        &["Prefetcher", "Accuracy", "Coverage", "IPC Impv"],
        &summary,
    );
    if let Ok(p) = dump_json_compact("figure10_12", &rows) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
