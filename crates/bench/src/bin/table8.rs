//! Regenerates Table 8: computational complexity (parameters, OPs,
//! critical path) and IPC improvement of MPGraph and the ML baselines.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin table8 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json, f, print_table};
use mpgraph_bench::runners::prefetching::run_table8;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rows = run_table8(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                f(r.params_k, 1),
                f(r.ops_m, 2),
                r.critical_path.clone(),
                f(r.ipc_improvement_pct, 2),
            ]
        })
        .collect();
    print_table(
        "Table 8: Computational Complexity",
        &[
            "Model",
            "Param (K)",
            "OPs (M)",
            "Critical Path",
            "IPC Impv (%)",
        ],
        &table,
    );
    if let Ok(p) = dump_json("table8", &rows) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
