//! Metrics-snapshot regression gate.
//!
//! Usage: `snapdiff <baseline.json> <current.json> [--tol X]
//! [--tol-accuracy X] [--tol-coverage X] [--tol-timeliness X]
//! [--tol-pbot X] [--tol-p50 X] [--tol-p99 X] [--tol-burn X]`
//!
//! Exit codes: 0 — no regression; 1 — at least one gated metric degraded
//! beyond tolerance; 2 — usage or parse error. `--tol` sets every
//! tolerance at once; the per-metric flags override it. Rate tolerances
//! are absolute (lower regresses); `--tol-p50`/`--tol-p99` are relative
//! headroom on the latency-histogram percentiles (higher regresses);
//! `--tol-burn` is relative headroom on the serve-path SLO burn metrics
//! (`serve.slo.worst_burn_rate` / `serve.slo.breach_intervals`, higher
//! regresses, zero baseline never gates).

use mpgraph_bench::snapdiff::{diff_snapshots, Tolerances};
use mpgraph_core::MetricsSnapshot;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: snapdiff <baseline.json> <current.json> [--tol X] \
         [--tol-accuracy X] [--tol-coverage X] [--tol-timeliness X] [--tol-pbot X] \
         [--tol-p50 X] [--tol-p99 X] [--tol-burn X]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut tol = Tolerances::default();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let flag_value = |i: &mut usize| -> Option<f64> {
            *i += 1;
            args.get(*i).and_then(|v| v.parse().ok())
        };
        match a.as_str() {
            "--tol" => match flag_value(&mut i) {
                Some(v) => tol = Tolerances::uniform(v),
                None => return usage(),
            },
            "--tol-accuracy" => match flag_value(&mut i) {
                Some(v) => tol.accuracy = v,
                None => return usage(),
            },
            "--tol-coverage" => match flag_value(&mut i) {
                Some(v) => tol.coverage = v,
                None => return usage(),
            },
            "--tol-timeliness" => match flag_value(&mut i) {
                Some(v) => tol.timeliness = v,
                None => return usage(),
            },
            "--tol-pbot" => match flag_value(&mut i) {
                Some(v) => tol.pbot_hit_rate = v,
                None => return usage(),
            },
            "--tol-p50" => match flag_value(&mut i) {
                Some(v) => tol.latency_p50 = v,
                None => return usage(),
            },
            "--tol-p99" => match flag_value(&mut i) {
                Some(v) => tol.latency_p99 = v,
                None => return usage(),
            },
            "--tol-burn" => match flag_value(&mut i) {
                Some(v) => tol.burn = v,
                None => return usage(),
            },
            _ if a.starts_with("--") => return usage(),
            _ => files.push(a.clone()),
        }
        i += 1;
    }
    if files.len() != 2 {
        return usage();
    }
    let (baseline, current) = match (load(&files[0]), load(&files[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("snapdiff: {e}");
            return ExitCode::from(2);
        }
    };
    let rep = diff_snapshots(&baseline, &current, &tol);
    println!(
        "{:<24} {:>10} {:>10} {:>7}  verdict",
        "metric", "baseline", "current", "tol"
    );
    for d in &rep.deltas {
        println!(
            "{:<24} {:>10.4} {:>10.4} {:>7.3}  {}",
            d.metric,
            d.baseline,
            d.current,
            d.tolerance,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    if rep.has_regressions() {
        let n = rep.regressions().count();
        eprintln!("snapdiff: {n} metric(s) regressed beyond tolerance");
        ExitCode::from(1)
    } else {
        println!("snapdiff: no regressions");
        ExitCode::SUCCESS
    }
}
