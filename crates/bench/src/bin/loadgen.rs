//! Open-loop load generator for the multi-stream prefetch service.
//!
//! Sweeps offered load at 0.5x / 1x / 2x of the service's saturation
//! rate and reports throughput, prediction-latency percentiles, and shed
//! fraction per point; `--chaos` additionally drives `StallInference`
//! faults through a quarter of the streams and verifies that quarantine
//! contains the blast radius. A fused-vs-per-item comparison at 1x
//! saturation (lockstep streams) always runs and prints the pump-fusion
//! speedup plus a bit-identity verdict.
//!
//! Usage: `loadgen [--quick] [--streams N] [--ticks N] [--chaos]
//! [--zipf] [--quant] [--metrics-out FILE] [--trace-out FILE]
//! [--live-metrics FILE|-] [--expose FILE] [--live-interval N]`
//!
//! `--zipf` replaces the uniform round-robin arrivals with Zipf(1)
//! weights across streams (hot stream 0 down to the coldest); the
//! per-stream p50/p99 spread is reported either way.
//!
//! `--quant` distills the trained stack into the compressed student and
//! serves its int8 snapshot — the whole sweep then exercises the
//! quantized inference path, so diffing a `--quant` metrics snapshot
//! against an f32 one gates the quantization accuracy cost.
//!
//! `--metrics-out` writes the full `MetricsSnapshot` (with the `serve`
//! section populated) of the highest-load sweep point; `--trace-out`
//! writes that point's Chrome trace.
//!
//! `--live-metrics` attaches the live-telemetry pump to the traced
//! (highest-load) sweep point and streams one NDJSON interval record per
//! `--live-interval` pumps to the given file (or stdout with `-`);
//! `--expose` additionally rewrites a Prometheus-style text exposition
//! atomically every interval. See DESIGN.md §18.

use mpgraph_bench::report::{
    dump_json, f, metrics_out_arg, pct, print_table, trace_out_arg, write_json_compact_to,
    write_json_to,
};
use mpgraph_bench::serve_load::{
    run_chaos, run_fused_comparison, run_load_sweep, zipf_weights, LoadgenSetup,
};
use mpgraph_bench::ExpScale;
use mpgraph_core::{LiveTelemetry, LiveTelemetryConfig, ServeConfig, TraceConfig};
use serde::Serialize;

fn usize_arg(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn str_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Builds the optional live-telemetry attachment from the CLI flags;
/// exits with an error when a requested sink cannot be created.
fn live_from_args(quant: bool) -> Option<LiveTelemetry> {
    let sink = str_arg("--live-metrics");
    let expose = str_arg("--expose");
    if sink.is_none() && expose.is_none() {
        return None;
    }
    let cfg = LiveTelemetryConfig {
        interval_pumps: usize_arg("--live-interval", 16) as u64,
        int8: quant,
        ..LiveTelemetryConfig::default()
    };
    let cfg = match cfg.try_new() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid live-telemetry config: {e}");
            std::process::exit(2);
        }
    };
    let mut tel = LiveTelemetry::new(cfg);
    if let Some(spec) = sink {
        tel = match tel.with_sink(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open --live-metrics sink {spec}: {e}");
                std::process::exit(2);
            }
        };
    }
    if let Some(path) = expose {
        tel = tel.with_expose(path);
    }
    Some(tel)
}

#[derive(Serialize)]
struct LoadgenArtifact {
    /// True when the sweep served the distilled int8 student (`--quant`).
    quantized: bool,
    points: Vec<mpgraph_bench::serve_load::LoadPoint>,
    chaos: Option<mpgraph_bench::serve_load::ChaosOutcome>,
    fused: mpgraph_bench::serve_load::FusedComparison,
}

fn main() {
    let scale = ExpScale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let quick = args.iter().any(|a| a == "--quick");
    let zipf = args.iter().any(|a| a == "--zipf");
    let streams = usize_arg("--streams", 8);
    let ticks = usize_arg("--ticks", if quick { 200 } else { 2000 }) as u64;

    let quant = args.iter().any(|a| a == "--quant");

    let cfg = ServeConfig::default();
    let mut setup = LoadgenSetup::prepare(&scale);
    if quant {
        let (params, bytes) = setup.quantize(&scale);
        println!("serving distilled int8 student: {params} params, {bytes} int8 weight bytes");
    }
    let setup = setup;
    let weights = zipf.then(|| zipf_weights(streams));
    let live = live_from_args(quant);
    let live_attached = live.is_some();
    let outcome = run_load_sweep(
        &setup,
        cfg,
        streams,
        ticks,
        &[0.5, 1.0, 2.0],
        weights.as_deref(),
        Some(TraceConfig::with_adaptive()),
        live,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in &outcome.points {
        rows.push(vec![
            format!("{:.1}x", p.load_factor),
            p.offered_per_tick.to_string(),
            p.accesses.to_string(),
            format!("{:.0}", p.accesses_per_sec),
            p.p50_latency_cycles.to_string(),
            p.p99_latency_cycles.to_string(),
            pct(p.shed_fraction),
            f(p.ml_processed as f64 / p.accesses.max(1) as f64, 3),
            p.final_overload_level.to_string(),
            p.quarantines.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Service load sweep (open-loop, {} arrivals)",
            if zipf { "Zipf" } else { "uniform" }
        ),
        &[
            "load",
            "rate/tick",
            "accesses",
            "acc/s",
            "p50 cyc",
            "p99 cyc",
            "shed",
            "ml frac",
            "level",
            "quar",
        ],
        &rows,
    );

    // Per-stream latency spread of the saturation (1x) point: skewed
    // arrivals must not starve cold streams.
    if let Some(p) = outcome
        .points
        .iter()
        .find(|p| (p.load_factor - 1.0).abs() < f64::EPSILON)
    {
        let rows: Vec<Vec<String>> = p
            .per_stream
            .iter()
            .map(|s| {
                vec![
                    s.stream.to_string(),
                    s.predictions.to_string(),
                    s.p50_latency_cycles.to_string(),
                    s.p99_latency_cycles.to_string(),
                ]
            })
            .collect();
        print_table(
            "Per-stream latency spread at 1x saturation",
            &["stream", "served", "p50 cyc", "p99 cyc"],
            &rows,
        );
    }

    if live_attached {
        let serve = &outcome.snapshot.serve;
        println!(
            "live telemetry: {} intervals closed, slo verdict {} (worst burn {:.2}, \
             {} escalations), telemetry overhead {:.4} of pump wall",
            serve.live.len(),
            serve.slo.verdict_level,
            serve.slo.worst_burn_rate,
            serve.slo.escalations,
            serve.pump_stages.self_overhead_fraction,
        );
    }

    let fused = run_fused_comparison(&setup, cfg, streams, ticks);
    print_table(
        "Fused (BxTxd) pump vs per-item forwards at 1x saturation",
        &[
            "fused acc/s",
            "per-item acc/s",
            "speedup",
            "bit-identical",
            "batches",
            "items",
            "forwards",
        ],
        &[vec![
            format!("{:.0}", fused.fused_accesses_per_sec),
            format!("{:.0}", fused.per_item_accesses_per_sec),
            f(fused.speedup, 2),
            if fused.bit_identical { "YES" } else { "NO" }.to_string(),
            fused.fused_batches.to_string(),
            fused.fused_items.to_string(),
            fused.fused_forwards.to_string(),
        ]],
    );

    let chaos_outcome = if chaos {
        let out = run_chaos(&setup, cfg, streams, ticks, 7);
        let at = |t: Option<u64>| t.map_or("-".to_string(), |v| v.to_string());
        print_table(
            "Chaos: StallInference on victim streams",
            &[
                "victims",
                "quarantined",
                "stalls",
                "isolation",
                "healthy fallback",
                "slo@",
                "quar@",
                "slo first",
            ],
            &[vec![
                format!("{:?}", out.victims),
                format!("{:?}", out.quarantined),
                out.stalls_injected.to_string(),
                if out.isolation_held { "HELD" } else { "BROKEN" }.to_string(),
                pct(out.healthy_fallback_fraction),
                at(out.slo_escalated_at),
                at(out.first_quarantine_at),
                if out.slo_fired_first { "YES" } else { "NO" }.to_string(),
            ]],
        );
        Some(out)
    } else {
        None
    };

    if let Ok(p) = dump_json(
        "loadgen",
        &LoadgenArtifact {
            quantized: quant,
            points: outcome.points.clone(),
            chaos: chaos_outcome,
            fused,
        },
    ) {
        println!("wrote {}", p.display());
    }
    if let Some(path) = metrics_out_arg() {
        match write_json_to(&path, &outcome.snapshot) {
            Ok(()) => println!("metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("failed to write metrics to {}: {e}", path.display()),
        }
    }
    if let Some(path) = trace_out_arg() {
        match &outcome.chrome_trace {
            Some(tr) => match write_json_compact_to(&path, tr) {
                Ok(()) => println!("chrome trace written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
            },
            None => eprintln!("trace requested but the service produced none"),
        }
    }
}
