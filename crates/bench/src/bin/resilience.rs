//! Degradation demo: MPGraph with and without the DegradationGuard under
//! injected inference stalls, against the pure Best-Offset ceiling, plus
//! the aggregated pipeline HealthReport.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin resilience
//! [--quick] [--metrics-out <path>] [--trace-out <path>]`

use mpgraph_bench::metrics::emit_trace_if_requested;
use mpgraph_bench::report::{dump_json, metrics_out_arg, print_table, write_json_to};
use mpgraph_bench::runners::resilience::run_resilience;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rep = run_resilience(&scale);
    let table: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                if r.stalled { "80% stalls" } else { "clean" }.into(),
                format!("{:.3}", r.accuracy),
                format!("{:.3}", r.coverage),
                format!("{:.3}", r.ipc),
                format!("{:+.2}%", r.ipc_improvement_pct),
            ]
        })
        .collect();
    print_table(
        "Resilience: graceful degradation under inference stalls (GPOP PR)",
        &[
            "Config", "Faults", "Accuracy", "Coverage", "IPC", "IPC Impv",
        ],
        &table,
    );
    println!(
        "\n{} inference stalls injected; guard tripped: {}",
        rep.inference_stalls_injected, rep.guard_tripped
    );
    let health: Vec<Vec<String>> = rep
        .health
        .iter()
        .map(|h| vec![h.component.clone(), h.status.clone(), h.detail.clone()])
        .collect();
    print_table("Health report", &["Component", "Status", "Detail"], &health);
    let m = &rep.metrics;
    println!(
        "\nguarded-run metrics: {} issued, accuracy {:.3}, coverage {:.3}, timeliness {:.3}",
        m.issued, m.accuracy, m.coverage, m.timeliness
    );
    println!(
        "  cstp: pbot hit rate {:.3}, avg chain {:.2}, {} duplicates suppressed",
        m.cstp.pbot_hit_rate, m.cstp.avg_chain_len, m.cstp.duplicates_suppressed
    );
    println!(
        "  latency: inference p50/p99 {}/{} cyc, memory p50/p99 {}/{} cyc",
        m.inference_latency.p50,
        m.inference_latency.p99,
        m.memory_latency.p50,
        m.memory_latency.p99
    );
    if let Some(path) = metrics_out_arg() {
        match write_json_to(&path, &rep.metrics) {
            Ok(()) => println!("wrote metrics to {}", path.display()),
            Err(e) => eprintln!("failed to write metrics to {}: {e}", path.display()),
        }
    }
    if let Ok(p) = dump_json("resilience", &rep) {
        println!("\nwrote {}", p.display());
    }
    emit_trace_if_requested(&scale);
}
