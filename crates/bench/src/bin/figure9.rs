//! Regenerates Figure 9: case study of KSWIN vs Soft-KSWIN on the GPOP
//! PageRank PC stream — K-S statistic timeline, detections, false
//! positives, and Soft-KSWIN's detection lag.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure9 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::dump_json_compact;
use mpgraph_bench::runners::detection::run_figure9;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let data = run_figure9(&scale);
    println!("== Figure 9: KSWIN vs Soft-KSWIN case study (GPOP PR) ==");
    println!("K-S threshold (Eq. 5): {:.4}", data.threshold);
    println!("true transitions:      {:?}", data.true_transitions);
    println!(
        "KSWIN detections:      {} ({} false positives)",
        data.kswin_detections.len(),
        data.kswin_false_positives
    );
    println!(
        "Soft-KSWIN detections: {} ({} false positives, mean lag {:.0} accesses)",
        data.soft_detections.len(),
        data.soft_false_positives,
        data.soft_mean_lag
    );
    // ASCII sketch of the K-S statistic around the first true transition.
    if let Some(&t0) = data.true_transitions.first() {
        println!("\nK-S statistic near the first transition (index {t0}):");
        for &(i, d) in data.ks_series.iter().filter(|(i, _)| i.abs_diff(t0) < 600) {
            let bars = (d * 40.0) as usize;
            let marker = if d > data.threshold { '*' } else { ' ' };
            println!("  {i:7} |{}{marker}", "#".repeat(bars));
        }
    }
    if let Ok(p) = dump_json_compact("figure9", &data) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
