//! Regenerates Table 6: F1-score of spatial delta prediction for LSTM,
//! Attention, AMMA, AMMA-PI, AMMA-PS over all 12 (framework, app) cells.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin table6 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json, f, print_table};
use mpgraph_bench::runners::prediction::{run_table6, variant_means};
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let cells = run_table6(&scale);
    let variants = ["LSTM", "Attention", "AMMA", "AMMA-PI", "AMMA-PS"];
    let mut keys: Vec<(String, String)> = cells
        .iter()
        .map(|c| (c.framework.clone(), c.app.clone()))
        .collect();
    keys.dedup();
    let mut table = Vec::new();
    for v in variants {
        let mut row = vec![v.to_string()];
        for (fw, app) in &keys {
            let m = cells
                .iter()
                .find(|c| &c.framework == fw && &c.app == app && c.variant == v)
                .map(|c| c.metric)
                .unwrap_or(f64::NAN);
            row.push(f(m, 4));
        }
        table.push(row);
    }
    let mut headers: Vec<String> = vec!["Model".into()];
    headers.extend(keys.iter().map(|(fw, app)| format!("{fw}/{app}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Table 6: F1-Score of Spatial Delta Prediction",
        &header_refs,
        &table,
    );
    println!("\nPer-variant means:");
    for (name, mean) in variant_means(&cells) {
        println!("  {name:10} {mean:.4}");
    }
    if let Ok(p) = dump_json("table6", &cells) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
