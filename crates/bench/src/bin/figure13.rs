//! Regenerates Figure 13: MPGraph under knowledge distillation — accuracy,
//! coverage, and IPC improvement versus compression factor, with BO as the
//! uncompressed non-ML reference.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure13 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, pct, print_table};
use mpgraph_bench::runners::prefetching::run_figure13;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let rows = run_figure13(&scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                format!("{:.1}x", r.compression_factor),
                pct(r.accuracy),
                pct(r.coverage),
                format!("{:+.2}%", r.ipc_improvement_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 13: knowledge-distillation compression sweep (GPOP PR)",
        &["Config", "Compression", "Accuracy", "Coverage", "IPC Impv"],
        &table,
    );
    if let Ok(p) = dump_json_compact("figure13", &rows) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
