//! Regenerates Figure 3: wide-range memory-access page jumps in GPOP's
//! Scatter and Gather phases. Prints jump statistics and dumps the raw
//! page series for plotting.
//!
//! Usage: `cargo run --release -p mpgraph-bench --bin figure3 [--quick] [--metrics-out <path>]`

use mpgraph_bench::metrics::emit_if_requested;
use mpgraph_bench::report::{dump_json_compact, pct, print_table};
use mpgraph_bench::runners::motivation::run_figure3;
use mpgraph_bench::ExpScale;

fn main() {
    let scale = ExpScale::from_args();
    let data = run_figure3(&scale);
    print_table(
        "Figure 3: page-jump statistics (GPOP PR)",
        &[
            "Phase",
            "Accesses",
            "Distinct pages",
            "Wide jumps (>4 pages)",
        ],
        &[
            vec![
                "Scatter".into(),
                data.scatter_pages.len().to_string(),
                data.scatter_distinct_pages.to_string(),
                pct(data.scatter_wide_jump_ratio),
            ],
            vec![
                "Gather".into(),
                data.gather_pages.len().to_string(),
                data.gather_distinct_pages.to_string(),
                pct(data.gather_wide_jump_ratio),
            ],
        ],
    );
    if let Ok(p) = dump_json_compact("figure3", &data) {
        println!("\nwrote {}", p.display());
    }
    emit_if_requested(&scale);
}
