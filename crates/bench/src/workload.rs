//! Workload construction shared by every experiment: build the synthetic
//! dataset, trace the (framework, application) pair over it, and split the
//! trace into the training iteration and the evaluation stream exactly as
//! the paper's workflow prescribes (Figure 6: train on the first iteration,
//! test on the following ten).

use crate::scale::ExpScale;
use mpgraph_frameworks::{generate_trace, App, Framework, MemRecord, Trace, TraceConfig};
use mpgraph_graph::{standin, Csr, Dataset};
use mpgraph_sim::llc_filter_indexed;

/// A traced workload with its train/test split.
#[derive(Debug)]
pub struct Workload {
    pub framework: Framework,
    pub app: App,
    pub dataset: Dataset,
    pub num_phases: usize,
    /// Raw records of the first iteration.
    pub train: Vec<MemRecord>,
    /// Raw records of the remaining iterations (simulator input).
    pub test: Vec<MemRecord>,
    /// LLC-level view of `train` — what the prefetcher's models see, and
    /// therefore what they train on (Figure 6's extracted LLC trace).
    pub train_llc: Vec<MemRecord>,
    /// LLC-level view of `test` (prediction-metric input, Tables 6/7).
    pub test_llc: Vec<MemRecord>,
}

impl Workload {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.framework.name(),
            self.app.name(),
            self.dataset.name()
        )
    }
}

/// Splits a trace at the end of its first iteration.
pub fn split_trace(trace: &Trace, eval_cap: usize) -> (Vec<MemRecord>, Vec<MemRecord>) {
    let split = trace
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(trace.records.len() / 2);
    let train = trace.records[..split].to_vec();
    let test_all = &trace.records[split..];
    let test = test_all[..test_all.len().min(eval_cap)].to_vec();
    (train, test)
}

/// Builds the graph for `dataset` at the experiment scale.
pub fn build_graph(dataset: Dataset, scale: &ExpScale) -> Csr {
    standin(
        dataset,
        scale.graph_div,
        0xC0DE ^ dataset.name().len() as u64,
    )
}

/// Traces one (framework, app, dataset) cell and splits it.
pub fn build_workload(
    framework: Framework,
    app: App,
    dataset: Dataset,
    scale: &ExpScale,
) -> Workload {
    let g = build_graph(dataset, scale);
    let cfg = TraceConfig {
        iterations: scale.iterations,
        record_limit: scale.record_limit,
        ..TraceConfig::default()
    };
    let out = generate_trace(framework, app, &g, &cfg);
    let (train, test) = split_trace(&out.trace, scale.eval_records);
    // LLC-filter the whole trace in one pass (cache state is continuous
    // across the split), then cut at the same boundary.
    let sim_cfg = crate::runners::prefetching::sim_config();
    let split = out
        .trace
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(out.trace.records.len() / 2);
    let test_end = split + test.len();
    let filtered = llc_filter_indexed(&out.trace.records[..test_end], &sim_cfg);
    let mut train_llc = Vec::new();
    let mut test_llc = Vec::new();
    for (idx, r) in filtered {
        if idx < split {
            train_llc.push(r);
        } else {
            test_llc.push(r);
        }
    }
    Workload {
        framework,
        app,
        dataset,
        num_phases: framework.num_phases() as usize,
        train,
        test,
        train_llc,
        test_llc,
    }
}

/// The carrier dataset for single-workload experiments: the first dataset
/// the scale configures (sparse by default, so a full iteration — with its
/// phase transitions and dependent gather loads — fits the eval window).
pub fn carrier(scale: &ExpScale) -> Dataset {
    scale.datasets.first().copied().unwrap_or(Dataset::Rmat)
}

/// All 12 (framework, app) cells of Tables 6/7 and Figures 10-12.
pub fn all_cells() -> Vec<(Framework, App)> {
    Framework::ALL
        .iter()
        .flat_map(|fw| fw.apps().iter().map(move |&app| (*fw, app)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_cells_exactly() {
        let cells = all_cells();
        assert_eq!(cells.len(), 12);
        assert!(cells.contains(&(Framework::PowerGraph, App::Tc)));
        assert!(!cells.contains(&(Framework::Gpop, App::Tc)));
    }

    #[test]
    fn workload_split_respects_iteration_boundary() {
        let scale = ExpScale::quick();
        let w = build_workload(Framework::Gpop, App::Pr, Dataset::Rmat, &scale);
        assert!(!w.train.is_empty());
        assert!(!w.test.is_empty());
        assert!(w.test.len() <= scale.eval_records);
        assert_eq!(w.num_phases, 2);
        // The training slice is exactly one iteration: its phase sequence
        // starts at phase 0 and covers both phases.
        assert_eq!(w.train[0].phase, 0);
        let phases: std::collections::HashSet<u8> = w.train.iter().map(|r| r.phase).collect();
        assert_eq!(phases.len(), 2);
        assert!(!w.label().is_empty());
    }
}
