//! Workload construction shared by every experiment: build the synthetic
//! dataset, trace the (framework, application) pair over it, and split the
//! trace into the training iteration and the evaluation stream exactly as
//! the paper's workflow prescribes (Figure 6: train on the first iteration,
//! test on the following ten).

use crate::scale::ExpScale;
use mpgraph_frameworks::{generate_trace, App, Framework, MemRecord, Trace, TraceConfig};
use mpgraph_graph::{standin, Csr, Dataset};
use mpgraph_sim::llc_filter_indexed;

/// A traced workload with its train/test split.
#[derive(Debug)]
pub struct Workload {
    pub framework: Framework,
    pub app: App,
    pub dataset: Dataset,
    pub num_phases: usize,
    /// Raw records of the first iteration.
    pub train: Vec<MemRecord>,
    /// Raw records of the remaining iterations (simulator input).
    pub test: Vec<MemRecord>,
    /// LLC-level view of `train` — what the prefetcher's models see, and
    /// therefore what they train on (Figure 6's extracted LLC trace).
    pub train_llc: Vec<MemRecord>,
    /// LLC-level view of `test` (prediction-metric input, Tables 6/7).
    pub test_llc: Vec<MemRecord>,
}

impl Workload {
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.framework.name(),
            self.app.name(),
            self.dataset.name()
        )
    }
}

/// Splits a trace at the end of its first iteration.
pub fn split_trace(trace: &Trace, eval_cap: usize) -> (Vec<MemRecord>, Vec<MemRecord>) {
    let split = trace
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(trace.records.len() / 2);
    let train = trace.records[..split].to_vec();
    let test_all = &trace.records[split..];
    let test = test_all[..test_all.len().min(eval_cap)].to_vec();
    (train, test)
}

/// Builds the graph for `dataset` at the experiment scale.
pub fn build_graph(dataset: Dataset, scale: &ExpScale) -> Csr {
    standin(
        dataset,
        scale.graph_div,
        0xC0DE ^ dataset.name().len() as u64,
    )
}

/// Traces one (framework, app, dataset) cell and splits it.
pub fn build_workload(
    framework: Framework,
    app: App,
    dataset: Dataset,
    scale: &ExpScale,
) -> Workload {
    let g = build_graph(dataset, scale);
    let cfg = TraceConfig {
        iterations: scale.iterations,
        record_limit: scale.record_limit,
        ..TraceConfig::default()
    };
    let out = generate_trace(framework, app, &g, &cfg);
    let (train, test) = split_trace(&out.trace, scale.eval_records);
    // LLC-filter the whole trace in one pass (cache state is continuous
    // across the split), then cut at the same boundary.
    let sim_cfg = crate::runners::prefetching::sim_config();
    let split = out
        .trace
        .iteration_starts
        .get(1)
        .copied()
        .unwrap_or(out.trace.records.len() / 2);
    let test_end = split + test.len();
    let filtered = llc_filter_indexed(&out.trace.records[..test_end], &sim_cfg);
    let mut train_llc = Vec::new();
    let mut test_llc = Vec::new();
    for (idx, r) in filtered {
        if idx < split {
            train_llc.push(r);
        } else {
            test_llc.push(r);
        }
    }
    Workload {
        framework,
        app,
        dataset,
        num_phases: framework.num_phases() as usize,
        train,
        test,
        train_llc,
        test_llc,
    }
}

/// The carrier dataset for single-workload experiments: the first dataset
/// the scale configures (sparse by default, so a full iteration — with its
/// phase transitions and dependent gather loads — fits the eval window).
pub fn carrier(scale: &ExpScale) -> Dataset {
    scale.datasets.first().copied().unwrap_or(Dataset::Rmat)
}

/// All 12 (framework, app) cells of Tables 6/7 and Figures 10-12.
pub fn all_cells() -> Vec<(Framework, App)> {
    Framework::ALL
        .iter()
        .flat_map(|fw| fw.apps().iter().map(move |&app| (*fw, app)))
        .collect()
}

// ---------------------------------------------------------------------------
// Synthetic multi-phase workload subsystem
// ---------------------------------------------------------------------------

/// One phase of a synthetic access program: a configurable page working
/// set visited as a deterministic transition chain (page A → B → C → …,
/// wrapping), with a few sequential blocks touched per visit. The chain
/// structure is what the temporal lane of CSTP exists to exploit: every
/// page of the set stays resident in the PBOT while the page predictor
/// learns the transitions, so replaying one of these programs exercises
/// the full spatial × temporal prefetch path rather than just the
/// sequential-stride fast case.
#[derive(Debug, Clone)]
pub struct SynthPhase {
    pub name: &'static str,
    /// Page working set, visited in order (the page-transition chain).
    pub pages: Vec<u64>,
    /// Sequential 64-byte blocks touched per page visit.
    pub blocks_per_visit: usize,
    /// Full sweeps over the working set per phase occurrence.
    pub sweeps: usize,
    /// PC cluster base; accesses cycle over `pc_count` PCs above it, so
    /// the PC modality separates phases the way Figure 2b shows.
    pub pc_base: u64,
    pub pc_count: usize,
    /// Pages the chain starts from advance by this many positions each
    /// framework iteration — a BFS-style drifting frontier. 0 keeps the
    /// chain identical across iterations (PageRank-style fixed order).
    pub rotate_per_iteration: usize,
}

impl SynthPhase {
    fn emit(&self, iteration: usize, phase_id: u8, out: &mut Vec<MemRecord>) {
        let start = if self.pages.is_empty() {
            0
        } else {
            (iteration * self.rotate_per_iteration) % self.pages.len()
        };
        for sweep in 0..self.sweeps {
            for vi in 0..self.pages.len() {
                let page = self.pages[(start + vi) % self.pages.len()];
                for b in 0..self.blocks_per_visit {
                    // Rotate the per-visit offset with the sweep and the
                    // iteration so consecutive sweeps touch neighbouring
                    // (not identical) blocks — spatial deltas stay
                    // learnable without the stream degenerating into an
                    // exact replay.
                    let offset = (b + sweep + iteration) as u64 % 64;
                    out.push(MemRecord {
                        pc: self.pc_base + ((vi + b) as u64 % self.pc_count.max(1) as u64) * 4,
                        vaddr: page * 4096 + offset * 64,
                        core: 0,
                        is_write: false,
                        phase: phase_id,
                        gap: 1,
                        dep: false,
                    });
                }
            }
        }
    }
}

/// A full synthetic program: its phases run back to back once per
/// iteration, mirroring the scatter/gather (GPOP), hook/compress (CC) and
/// expand/contract (BFS) iteration structure of the traced frameworks.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    pub name: &'static str,
    pub phases: Vec<SynthPhase>,
    /// Framework iterations; the first becomes the training split.
    pub iterations: usize,
}

/// A generated synthetic workload with the Figure 6 train/test split.
#[derive(Debug)]
pub struct SynthWorkload {
    pub name: &'static str,
    pub num_phases: usize,
    /// First iteration (phase labels available offline — training input).
    pub train: Vec<MemRecord>,
    /// Remaining iterations (simulator / evaluation input).
    pub test: Vec<MemRecord>,
}

impl SynthConfig {
    /// Generates the records and splits at the first iteration boundary.
    pub fn generate(&self) -> SynthWorkload {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for it in 0..self.iterations.max(2) {
            let out = if it == 0 { &mut train } else { &mut test };
            for (pid, phase) in self.phases.iter().enumerate() {
                phase.emit(it, pid as u8, out);
            }
        }
        SynthWorkload {
            name: self.name,
            num_phases: self.phases.len().max(1),
            train,
            test,
        }
    }

    /// PageRank-style two-phase program (GPOP scatter/gather): a
    /// wide-jump scatter chain over spread-out source pages, then a dense
    /// gather chain over the accumulator pages. The scatter set's tail
    /// overlaps the gather set — the cross-phase reuse of the rank arrays
    /// that scatter writes and gather reads.
    pub fn pagerank_like() -> Self {
        let gather_pages: Vec<u64> = (0..8u64).map(|i| 600 + i).collect();
        let mut scatter_pages: Vec<u64> = (0..12u64).map(|i| 120 + 8 * i).collect();
        // Cross-phase reuse: scatter ends each sweep in the accumulators.
        scatter_pages.extend(gather_pages.iter().take(4));
        SynthConfig {
            name: "synthetic-pagerank",
            phases: vec![
                SynthPhase {
                    name: "scatter",
                    pages: scatter_pages,
                    blocks_per_visit: 3,
                    sweeps: 4,
                    pc_base: 0x40_0000,
                    pc_count: 5,
                    rotate_per_iteration: 0,
                },
                SynthPhase {
                    name: "gather",
                    pages: gather_pages,
                    blocks_per_visit: 8,
                    sweeps: 4,
                    pc_base: 0x41_0000,
                    pc_count: 5,
                    rotate_per_iteration: 0,
                },
            ],
            iterations: 6,
        }
    }

    /// BFS-style program: a fixed structure chain (CSR offsets +
    /// neighbour arrays, reread every iteration) and a frontier chain
    /// whose starting position drifts each iteration as the traversal
    /// advances through the vertex set.
    pub fn bfs_like() -> Self {
        SynthConfig {
            name: "synthetic-bfs",
            phases: vec![
                SynthPhase {
                    name: "expand",
                    pages: (0..10u64).map(|i| 300 + 4 * i).collect(),
                    blocks_per_visit: 4,
                    sweeps: 4,
                    pc_base: 0x42_0000,
                    pc_count: 4,
                    rotate_per_iteration: 3,
                },
                SynthPhase {
                    name: "contract",
                    pages: (0..6u64).map(|i| 500 + i).collect(),
                    blocks_per_visit: 6,
                    sweeps: 4,
                    pc_base: 0x43_0000,
                    pc_count: 4,
                    rotate_per_iteration: 0,
                },
            ],
            iterations: 6,
        }
    }

    /// Connected-components-style program (hook/compress): both phases
    /// walk the *same* component-label pages — maximal cross-phase reuse —
    /// but compress revisits them in a strided order, the pointer-jumping
    /// pattern that makes CC's second phase temporally rather than
    /// spatially local.
    pub fn cc_like() -> Self {
        let labels: Vec<u64> = (0..9u64).map(|i| 800 + i).collect();
        let compress_order: Vec<u64> = (0..9u64).map(|i| 800 + (i * 4) % 9).collect();
        SynthConfig {
            name: "synthetic-cc",
            phases: vec![
                SynthPhase {
                    name: "hook",
                    pages: labels,
                    blocks_per_visit: 5,
                    sweeps: 4,
                    pc_base: 0x44_0000,
                    pc_count: 3,
                    rotate_per_iteration: 0,
                },
                SynthPhase {
                    name: "compress",
                    pages: compress_order,
                    blocks_per_visit: 5,
                    sweeps: 4,
                    pc_base: 0x45_0000,
                    pc_count: 3,
                    rotate_per_iteration: 0,
                },
            ],
            iterations: 6,
        }
    }

    /// All three presets (one per modelled application archetype).
    pub fn presets() -> Vec<SynthConfig> {
        vec![
            SynthConfig::pagerank_like(),
            SynthConfig::bfs_like(),
            SynthConfig::cc_like(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_cells_exactly() {
        let cells = all_cells();
        assert_eq!(cells.len(), 12);
        assert!(cells.contains(&(Framework::PowerGraph, App::Tc)));
        assert!(!cells.contains(&(Framework::Gpop, App::Tc)));
    }

    #[test]
    fn synth_presets_are_multi_phase_and_multi_page() {
        for cfg in SynthConfig::presets() {
            let w = cfg.generate();
            assert_eq!(w.num_phases, 2, "{}", w.name);
            assert!(!w.train.is_empty() && !w.test.is_empty(), "{}", w.name);
            // Training split is exactly one iteration; test holds the rest.
            assert!(w.test.len() >= 4 * w.train.len(), "{}", w.name);
            let phases: std::collections::HashSet<u8> = w.train.iter().map(|r| r.phase).collect();
            assert_eq!(phases.len(), 2, "{} train split misses a phase", w.name);
            for split in [&w.train, &w.test] {
                let pages: std::collections::HashSet<u64> =
                    split.iter().map(|r| r.page()).collect();
                assert!(pages.len() >= 6, "{} working set too small", w.name);
            }
            // Phases are PC-separable (the Figure 2b property detectors
            // rely on): the phase PC clusters must not overlap.
            let pcs = |ph: u8| -> std::collections::HashSet<u64> {
                w.test
                    .iter()
                    .filter(|r| r.phase == ph)
                    .map(|r| r.pc)
                    .collect()
            };
            assert!(pcs(0).is_disjoint(&pcs(1)), "{}", w.name);
        }
    }

    #[test]
    fn synth_chains_revisit_pages_within_and_across_phases() {
        // Page-transition chains: consecutive sweeps revisit every page,
        // so each page of the working set recurs many times — that is
        // what keeps the PBOT primed.
        let w = SynthConfig::pagerank_like().generate();
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for r in &w.test {
            *counts.entry(r.page()).or_default() += 1;
        }
        assert!(counts.values().all(|&c| c >= 8), "pages not revisited");
        // Cross-phase reuse: some pages appear under both phase labels.
        let p0: std::collections::HashSet<u64> = w
            .test
            .iter()
            .filter(|r| r.phase == 0)
            .map(|r| r.page())
            .collect();
        let p1: std::collections::HashSet<u64> = w
            .test
            .iter()
            .filter(|r| r.phase == 1)
            .map(|r| r.page())
            .collect();
        assert!(p0.intersection(&p1).count() >= 4, "no cross-phase reuse");
    }

    #[test]
    fn bfs_frontier_drifts_across_iterations() {
        let cfg = SynthConfig::bfs_like();
        let w = cfg.generate();
        // The expand phase rotates its chain start each iteration: the
        // first expand page of iteration 1 differs from iteration 2's.
        let first_page_of = |records: &[MemRecord], skip_phases: usize| {
            records
                .iter()
                .scan((0u8, 0usize), |state, r| {
                    if r.phase != state.0 {
                        state.0 = r.phase;
                        state.1 += 1;
                    }
                    Some((state.1, r))
                })
                .find(|&(seen, r)| seen == skip_phases && r.phase == 0)
                .map(|(_, r)| r.page())
        };
        let it1 = first_page_of(&w.test, 0);
        let it2 = first_page_of(&w.test, 2);
        assert_ne!(it1, it2, "frontier did not drift");
    }

    #[test]
    fn workload_split_respects_iteration_boundary() {
        let scale = ExpScale::quick();
        let w = build_workload(Framework::Gpop, App::Pr, Dataset::Rmat, &scale);
        assert!(!w.train.is_empty());
        assert!(!w.test.is_empty());
        assert!(w.test.len() <= scale.eval_records);
        assert_eq!(w.num_phases, 2);
        // The training slice is exactly one iteration: its phase sequence
        // starts at phase 0 and covers both phases.
        assert_eq!(w.train[0].phase, 0);
        let phases: std::collections::HashSet<u8> = w.train.iter().map(|r| r.phase).collect();
        assert_eq!(phases.len(), 2);
        assert!(!w.label().is_empty());
    }
}
