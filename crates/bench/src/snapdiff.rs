//! Snapshot regression diffing: compare two [`MetricsSnapshot`] artifacts
//! (a committed baseline and a freshly emitted one) and flag metrics that
//! degraded beyond a tolerance. Counters are reported informationally;
//! only the rate metrics gate — absolute counts shift with scale knobs,
//! while accuracy / coverage / timeliness / PBOT hit rate should not —
//! plus the simulated-latency histogram percentiles (p50/p99), which are
//! deterministic cycle counts and gate *upward* with relative tolerances.

use mpgraph_core::MetricsSnapshot;

/// Per-metric tolerances. Rate metrics (`accuracy` .. `pbot_hit_rate`)
/// are *absolute*: a current value regresses when it falls below
/// `baseline - tolerance`. Latency percentiles (`latency_p50` /
/// `latency_p99`) are *relative*: a current value regresses when it
/// grows above `baseline * (1 + tolerance)`. Improvements never fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    pub accuracy: f64,
    pub coverage: f64,
    pub timeliness: f64,
    pub pbot_hit_rate: f64,
    /// Relative headroom for p50 latency percentiles (0.25 = +25%).
    pub latency_p50: f64,
    /// Relative headroom for p99 latency percentiles. Tails are noisier
    /// than medians even in a deterministic simulator (one extra slow
    /// probe window shifts the nearest-rank p99), so the default is
    /// looser than p50's.
    pub latency_p99: f64,
    /// Relative headroom on the serve-path SLO burn metrics
    /// (`serve.slo.worst_burn_rate`, `serve.slo.breach_intervals`): a
    /// current value above `baseline * (1 + tol)` regresses, and a zero
    /// baseline never gates (a baseline snapshotted without live
    /// telemetry attached carries all-zero SLO fields).
    pub burn: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            accuracy: 0.05,
            coverage: 0.05,
            timeliness: 0.05,
            pbot_hit_rate: 0.05,
            latency_p50: 0.25,
            latency_p99: 0.50,
            burn: 0.50,
        }
    }
}

impl Tolerances {
    /// Sets every tolerance (absolute rates and relative latencies) to
    /// the same value.
    pub fn uniform(tol: f64) -> Self {
        Tolerances {
            accuracy: tol,
            coverage: tol,
            timeliness: tol,
            pbot_hit_rate: tol,
            latency_p50: tol,
            latency_p99: tol,
            burn: tol,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    pub tolerance: f64,
    pub regressed: bool,
}

/// The full comparison: every gated metric plus its verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    pub deltas: Vec<MetricDelta>,
}

impl DiffReport {
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

fn compare(report: &mut DiffReport, metric: &str, baseline: f64, current: f64, tolerance: f64) {
    report.deltas.push(MetricDelta {
        metric: metric.to_string(),
        baseline,
        current,
        tolerance,
        regressed: current < baseline - tolerance,
    });
}

/// Latency gate: higher is worse, tolerance is relative. A zero baseline
/// never gates (an empty histogram snapshots to all-zero percentiles, and
/// `0 * (1 + tol)` would flag any nonzero current — a false positive when
/// the baseline predates latency collection).
fn compare_latency(report: &mut DiffReport, metric: &str, baseline: u64, current: u64, tol: f64) {
    compare_upward(report, metric, baseline as f64, current as f64, tol);
}

/// Upward-only relative gate for higher-is-worse f64 metrics (SLO burn
/// rates, breach-interval counts). Same zero-baseline exemption as the
/// latency gate.
fn compare_upward(report: &mut DiffReport, metric: &str, baseline: f64, current: f64, tol: f64) {
    report.deltas.push(MetricDelta {
        metric: metric.to_string(),
        baseline,
        current,
        tolerance: tol,
        regressed: baseline > 0.0 && current > baseline * (1.0 + tol),
    });
}

/// Diffs `current` against `baseline`: top-level accuracy / coverage /
/// timeliness, the CSTP PBOT hit rate, and per-phase accuracy for every
/// phase present in both snapshots.
pub fn diff_snapshots(
    baseline: &MetricsSnapshot,
    current: &MetricsSnapshot,
    tol: &Tolerances,
) -> DiffReport {
    let mut rep = DiffReport::default();
    compare(
        &mut rep,
        "accuracy",
        baseline.accuracy,
        current.accuracy,
        tol.accuracy,
    );
    compare(
        &mut rep,
        "coverage",
        baseline.coverage,
        current.coverage,
        tol.coverage,
    );
    compare(
        &mut rep,
        "timeliness",
        baseline.timeliness,
        current.timeliness,
        tol.timeliness,
    );
    compare(
        &mut rep,
        "cstp.pbot_hit_rate",
        baseline.cstp.pbot_hit_rate,
        current.cstp.pbot_hit_rate,
        tol.pbot_hit_rate,
    );
    compare_latency(
        &mut rep,
        "inference_latency.p50",
        baseline.inference_latency.p50,
        current.inference_latency.p50,
        tol.latency_p50,
    );
    compare_latency(
        &mut rep,
        "inference_latency.p99",
        baseline.inference_latency.p99,
        current.inference_latency.p99,
        tol.latency_p99,
    );
    compare_latency(
        &mut rep,
        "memory_latency.p50",
        baseline.memory_latency.p50,
        current.memory_latency.p50,
        tol.latency_p50,
    );
    compare_latency(
        &mut rep,
        "memory_latency.p99",
        baseline.memory_latency.p99,
        current.memory_latency.p99,
        tol.latency_p99,
    );
    compare_upward(
        &mut rep,
        "serve.slo.worst_burn_rate",
        baseline.serve.slo.worst_burn_rate,
        current.serve.slo.worst_burn_rate,
        tol.burn,
    );
    compare_upward(
        &mut rep,
        "serve.slo.breach_intervals",
        baseline.serve.slo.breach_intervals as f64,
        current.serve.slo.breach_intervals as f64,
        tol.burn,
    );
    for bp in &baseline.phases {
        if let Some(cp) = current.phases.iter().find(|p| p.phase == bp.phase) {
            compare(
                &mut rep,
                &format!("phase[{}].accuracy", bp.phase),
                bp.accuracy,
                cp.accuracy,
                tol.accuracy,
            );
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_core::PhaseMetrics;

    fn snap(accuracy: f64, coverage: f64, phase_acc: &[f64]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            accuracy,
            coverage,
            timeliness: 0.9,
            phases: phase_acc
                .iter()
                .enumerate()
                .map(|(i, &a)| PhaseMetrics {
                    phase: i as u32,
                    accuracy: a,
                    ..PhaseMetrics::default()
                })
                .collect(),
            ..MetricsSnapshot::default()
        };
        s.cstp.pbot_hit_rate = 0.5;
        s
    }

    #[test]
    fn identical_snapshots_pass() {
        let b = snap(0.8, 0.6, &[0.7, 0.9]);
        let rep = diff_snapshots(&b, &b.clone(), &Tolerances::default());
        assert!(!rep.has_regressions());
        // accuracy, coverage, timeliness, pbot + 4 latency percentiles
        // + 2 SLO burn gates + 2 phases
        assert_eq!(rep.deltas.len(), 12);
    }

    #[test]
    fn slo_burn_growth_beyond_tolerance_is_flagged() {
        let mut b = snap(0.8, 0.6, &[0.7]);
        b.serve.slo.worst_burn_rate = 2.0;
        b.serve.slo.breach_intervals = 4;
        let mut c = b.clone();
        // +25% burn sits inside the default 50% headroom; 3x breach
        // intervals blow through it.
        c.serve.slo.worst_burn_rate = 2.5;
        c.serve.slo.breach_intervals = 12;
        let rep = diff_snapshots(&b, &c, &Tolerances::default());
        let bad: Vec<_> = rep.regressions().map(|d| d.metric.clone()).collect();
        assert_eq!(bad, vec!["serve.slo.breach_intervals".to_string()]);
        // Burn improvements never fail, and a zero baseline never gates.
        let calm = snap(0.8, 0.6, &[0.7]);
        let mut hot = calm.clone();
        hot.serve.slo.worst_burn_rate = 9.0;
        hot.serve.slo.breach_intervals = 50;
        assert!(
            !diff_snapshots(&calm, &hot, &Tolerances::default()).has_regressions(),
            "zero-burn baseline must not gate"
        );
        assert!(!diff_snapshots(&c, &b, &Tolerances::default()).has_regressions());
    }

    #[test]
    fn latency_growth_beyond_tolerance_is_flagged() {
        let mut b = snap(0.8, 0.6, &[0.7]);
        b.inference_latency.p50 = 100;
        b.inference_latency.p99 = 400;
        let mut c = b.clone();
        // +10% p50 stays inside the default 25% headroom; a 2x p99 blows
        // through the 50% tail headroom.
        c.inference_latency.p50 = 110;
        c.inference_latency.p99 = 800;
        let rep = diff_snapshots(&b, &c, &Tolerances::default());
        let bad: Vec<_> = rep.regressions().map(|d| d.metric.clone()).collect();
        assert_eq!(bad, vec!["inference_latency.p99".to_string()]);
    }

    #[test]
    fn latency_improvements_never_fail() {
        let mut b = snap(0.8, 0.6, &[0.7]);
        b.inference_latency.p50 = 100;
        b.memory_latency.p99 = 900;
        let mut c = b.clone();
        c.inference_latency.p50 = 10;
        c.memory_latency.p99 = 100;
        assert!(!diff_snapshots(&b, &c, &Tolerances::default()).has_regressions());
    }

    #[test]
    fn zero_latency_baseline_never_gates() {
        let b = snap(0.8, 0.6, &[0.7]);
        let mut c = b.clone();
        c.inference_latency.p50 = 5_000;
        c.memory_latency.p99 = 5_000;
        assert!(!diff_snapshots(&b, &c, &Tolerances::default()).has_regressions());
    }

    #[test]
    fn degradation_beyond_tolerance_is_flagged() {
        let b = snap(0.8, 0.6, &[0.7]);
        let c = snap(0.70, 0.6, &[0.7]);
        let rep = diff_snapshots(&b, &c, &Tolerances::default());
        let bad: Vec<_> = rep.regressions().map(|d| d.metric.clone()).collect();
        assert_eq!(bad, vec!["accuracy".to_string()]);
    }

    #[test]
    fn degradation_within_tolerance_passes() {
        let b = snap(0.8, 0.6, &[0.7]);
        let c = snap(0.76, 0.58, &[0.66]);
        assert!(!diff_snapshots(&b, &c, &Tolerances::default()).has_regressions());
    }

    #[test]
    fn improvements_never_fail() {
        let b = snap(0.5, 0.4, &[0.3]);
        let c = snap(0.9, 0.9, &[0.9]);
        assert!(!diff_snapshots(&b, &c, &Tolerances::default()).has_regressions());
    }

    #[test]
    fn per_phase_accuracy_gates_independently() {
        let b = snap(0.8, 0.6, &[0.7, 0.9]);
        let c = snap(0.8, 0.6, &[0.7, 0.5]);
        let rep = diff_snapshots(&b, &c, &Tolerances::default());
        let bad: Vec<_> = rep.regressions().map(|d| d.metric.clone()).collect();
        assert_eq!(bad, vec!["phase[1].accuracy".to_string()]);
    }

    #[test]
    fn uniform_tolerance_applies_everywhere() {
        let b = snap(0.8, 0.6, &[0.7]);
        let c = snap(0.70, 0.5, &[0.6]);
        assert!(!diff_snapshots(&b, &c, &Tolerances::uniform(0.2)).has_regressions());
        assert!(diff_snapshots(&b, &c, &Tolerances::uniform(0.01)).has_regressions());
    }
}
