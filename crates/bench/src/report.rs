//! Result reporting: fixed-width console tables matching the paper's
//! row/column structure, plus JSON dumps under `results/` so EXPERIMENTS.md
//! comparisons are reproducible.

use serde::Serialize;
use std::path::PathBuf;

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", s.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

fn results_dir() -> PathBuf {
    if std::path::Path::new("results").exists() || std::fs::create_dir_all("results").is_ok() {
        PathBuf::from("results")
    } else {
        PathBuf::from(".")
    }
}

/// Writes `value` as pretty JSON to `results/<name>.json` (relative to the
/// workspace root if present, else the current directory).
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Like [`dump_json`] but single-line compact JSON — for the bulky figure
/// artifacts whose pretty form churns thousands of diff lines per run.
pub fn dump_json_compact<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string(value).expect("serializable");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Parses `--<flag> <path>` (or `--<flag>=<path>`) from argv. Returns
/// `None` when the flag is absent, so binaries that never heard of it keep
/// working unchanged.
fn path_arg(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let eq_prefix = format!("--{flag}=");
    let bare = format!("--{flag}");
    for (i, a) in args.iter().enumerate() {
        if let Some(p) = a.strip_prefix(&eq_prefix) {
            return Some(PathBuf::from(p));
        }
        if *a == bare {
            return args.get(i + 1).map(PathBuf::from);
        }
    }
    None
}

/// Parses `--metrics-out <path>` from argv.
pub fn metrics_out_arg() -> Option<PathBuf> {
    path_arg("metrics-out")
}

/// Parses `--trace-out <path>` from argv (Chrome-trace/Perfetto export).
pub fn trace_out_arg() -> Option<PathBuf> {
    path_arg("trace-out")
}

/// Writes a metrics snapshot (or any serializable value) as pretty JSON to
/// an explicit path, creating parent directories as needed.
pub fn write_json_to<T: Serialize>(path: &std::path::Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, json)
}

/// Like [`write_json_to`] but compact single-line JSON — used for trace
/// exports, which are bulky and consumed by tools rather than humans.
pub fn write_json_compact_to<T: Serialize>(
    path: &std::path::Path,
    value: &T,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string(value).expect("serializable");
    std::fs::write(path, json)
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a float with fixed precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{:.*}", digits, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_f_format() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(f(1.23456, 3), "1.235");
    }

    #[test]
    fn dump_json_roundtrips() {
        #[derive(Serialize)]
        struct S {
            a: u32,
        }
        let p = dump_json("test_dump", &S { a: 7 }).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("\"a\": 7"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "x".into()],
            ],
        );
    }
}
