//! Universal `--metrics-out` support for the experiment binaries.
//!
//! Every runner accepts `--metrics-out <path>` and, when present, emits a
//! full pipeline [`MetricsSnapshot`] as JSON. The snapshot comes from an
//! instrumented MPGraph run over the synthetic multi-phase carrier
//! workload ([`SynthConfig::pagerank_like`]): a scoreboard observes every
//! prefetch while the deployed prefetcher's own counters (CSTP chain /
//! PBOT, detector arm→confirm latencies, controller, training) are folded
//! in afterwards. The carrier is synthetic on purpose — it is cheap enough
//! to ride along with any experiment, deterministic across runners, and
//! its page-transition chains keep the PBOT primed so the temporal-lane
//! counters in the artifact are live rather than structurally zero.
//!
//! The `resilience` binary is the one exception: its report already
//! embeds the snapshot of its own guarded fault-injection run, so it
//! serializes that instead of the carrier's.

use crate::report::{metrics_out_arg, write_json_to};
use crate::scale::ExpScale;
use crate::workload::SynthConfig;
use mpgraph_core::{train_mpgraph, MetricsSnapshot, MpGraphConfig, PrefetchScoreboard};
use mpgraph_sim::simulate_observed;

/// Runs the observed carrier and returns the enriched snapshot.
pub fn collect_carrier_metrics(scale: &ExpScale) -> MetricsSnapshot {
    let w = SynthConfig::pagerank_like().generate();
    let mut mp = train_mpgraph(
        &w.train,
        w.num_phases,
        MpGraphConfig::default(),
        &scale.train,
    );
    let mut scoreboard = PrefetchScoreboard::new(w.num_phases, 4096);
    let cfg = crate::runners::prefetching::sim_config();
    let _ = simulate_observed(&w.test, &mut mp, &cfg, None, Some(&mut scoreboard));
    let mut snap = scoreboard.snapshot();
    mp.enrich_snapshot(&mut snap);
    snap
}

/// Binary entry point: when `--metrics-out <path>` is on the command
/// line, collects the carrier snapshot and writes it there. A no-op
/// without the flag, so every binary can call this unconditionally.
pub fn emit_if_requested(scale: &ExpScale) {
    let Some(path) = metrics_out_arg() else {
        return;
    };
    let snap = collect_carrier_metrics(scale);
    match write_json_to(&path, &snap) {
        Ok(()) => println!("metrics snapshot written to {}", path.display()),
        Err(e) => eprintln!("failed to write metrics to {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance contract for every emitted artifact: prefetches
    /// observed, the temporal lane live (nonzero PBOT traffic on the
    /// multi-page carrier), detector arm→confirm latencies sampled, both
    /// latency clocks populated, and the scoreboard's double-entry
    /// bookkeeping intact.
    #[test]
    fn carrier_metrics_exercise_every_snapshot_section() {
        let snap = collect_carrier_metrics(&ExpScale::quick());
        assert!(snap.issued > 0, "no prefetches issued");
        assert!(snap.cstp.batches > 0);
        assert!(
            snap.cstp.pbot_hits > 0,
            "PBOT never hit on the multi-page carrier: {:?}",
            snap.cstp
        );
        assert!(snap.cstp.pbot_hit_rate > 0.0);
        assert!(snap.detector.updates > 0);
        assert!(
            snap.detector.confirm_latency_samples > 0,
            "no arm→confirm latency samples: {:?}",
            snap.detector
        );
        assert!(snap.detector.confirm_latency_mean >= 0.0);
        assert!(snap.inference_latency.count > 0);
        assert!(
            snap.inference_wall_ns.count > 0,
            "wall-clock inference histogram empty"
        );
        assert_eq!(snap.untracked_completions, 0, "scoreboard lost prefetches");
        // The artifact must carry all of that through serde.
        let text = serde_json::to_string(&snap).expect("serializable");
        for key in [
            "pbot_hit_rate",
            "confirm_latency_samples",
            "inference_wall_ns",
            "untracked_completions",
        ] {
            assert!(text.contains(key), "snapshot JSON missing {key}");
        }
    }
}
