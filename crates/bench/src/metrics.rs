//! Universal `--metrics-out` support for the experiment binaries.
//!
//! Every runner accepts `--metrics-out <path>` and, when present, emits a
//! full pipeline [`MetricsSnapshot`] as JSON. The snapshot comes from an
//! instrumented MPGraph run over the synthetic multi-phase carrier
//! workload ([`SynthConfig::pagerank_like`]): a scoreboard observes every
//! prefetch while the deployed prefetcher's own counters (CSTP chain /
//! PBOT, detector arm→confirm latencies, controller, training) are folded
//! in afterwards. The carrier is synthetic on purpose — it is cheap enough
//! to ride along with any experiment, deterministic across runners, and
//! its page-transition chains keep the PBOT primed so the temporal-lane
//! counters in the artifact are live rather than structurally zero.
//!
//! The `resilience` binary is the one exception: its report already
//! embeds the snapshot of its own guarded fault-injection run, so it
//! serializes that instead of the carrier's.

use crate::report::{metrics_out_arg, trace_out_arg, write_json_compact_to, write_json_to};
use crate::scale::ExpScale;
use crate::workload::SynthConfig;
use mpgraph_core::{
    train_mpgraph, MetricsSnapshot, MpGraphConfig, PrefetchScoreboard, TraceConfig,
};
use mpgraph_sim::simulate_observed;

/// Runs the observed carrier once and returns the enriched snapshot plus,
/// when a [`TraceConfig`] was supplied, the Chrome-trace JSON of the run.
pub fn collect_carrier(
    scale: &ExpScale,
    trace: Option<TraceConfig>,
) -> (MetricsSnapshot, Option<serde::Value>) {
    let w = SynthConfig::pagerank_like().generate();
    let mut mp = train_mpgraph(
        &w.train,
        w.num_phases,
        MpGraphConfig::default(),
        &scale.train,
    );
    let mut scoreboard = match trace {
        Some(cfg) => PrefetchScoreboard::with_trace(w.num_phases, 4096, cfg),
        None => PrefetchScoreboard::new(w.num_phases, 4096),
    };
    let cfg = crate::runners::prefetching::sim_config();
    let _ = simulate_observed(&w.test, &mut mp, &cfg, None, Some(&mut scoreboard));
    let chrome = scoreboard.chrome_trace();
    let mut snap = scoreboard.snapshot();
    mp.enrich_snapshot(&mut snap);
    (snap, chrome)
}

/// Runs the observed carrier and returns the enriched snapshot.
pub fn collect_carrier_metrics(scale: &ExpScale) -> MetricsSnapshot {
    collect_carrier(scale, None).0
}

/// Binary entry point: when `--metrics-out <path>` and/or `--trace-out
/// <path>` are on the command line, runs the instrumented carrier once and
/// writes the requested artifacts. A no-op without either flag, so every
/// binary can call this unconditionally.
pub fn emit_if_requested(scale: &ExpScale) {
    let metrics = metrics_out_arg();
    let trace = trace_out_arg();
    if metrics.is_none() && trace.is_none() {
        return;
    }
    let (snap, chrome) = collect_carrier(scale, trace.as_ref().map(|_| TraceConfig::default()));
    if let Some(path) = metrics {
        match write_json_to(&path, &snap) {
            Ok(()) => println!("metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("failed to write metrics to {}: {e}", path.display()),
        }
    }
    if let Some(path) = trace {
        match chrome {
            Some(tr) => match write_json_compact_to(&path, &tr) {
                Ok(()) => println!("chrome trace written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
            },
            None => eprintln!("trace requested but the scoreboard produced none"),
        }
    }
}

/// Trace-only entry point for binaries (the `resilience` runner) that
/// serialize their own metrics snapshot but still want `--trace-out` to
/// yield a carrier trace.
pub fn emit_trace_if_requested(scale: &ExpScale) {
    let Some(path) = trace_out_arg() else {
        return;
    };
    let (_, chrome) = collect_carrier(scale, Some(TraceConfig::default()));
    match chrome {
        Some(tr) => match write_json_compact_to(&path, &tr) {
            Ok(()) => println!("chrome trace written to {}", path.display()),
            Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
        },
        None => eprintln!("trace requested but the scoreboard produced none"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance contract for every emitted artifact: prefetches
    /// observed, the temporal lane live (nonzero PBOT traffic on the
    /// multi-page carrier), detector arm→confirm latencies sampled, both
    /// latency clocks populated, and the scoreboard's double-entry
    /// bookkeeping intact.
    #[test]
    fn carrier_metrics_exercise_every_snapshot_section() {
        let snap = collect_carrier_metrics(&ExpScale::quick());
        assert!(snap.issued > 0, "no prefetches issued");
        assert!(snap.cstp.batches > 0);
        assert!(
            snap.cstp.pbot_hits > 0,
            "PBOT never hit on the multi-page carrier: {:?}",
            snap.cstp
        );
        assert!(snap.cstp.pbot_hit_rate > 0.0);
        assert!(snap.detector.updates > 0);
        assert!(
            snap.detector.confirm_latency_samples > 0,
            "no arm→confirm latency samples: {:?}",
            snap.detector
        );
        assert!(snap.detector.confirm_latency_mean >= 0.0);
        assert!(snap.inference_latency.count > 0);
        assert!(
            snap.inference_wall_ns.count > 0,
            "wall-clock inference histogram empty"
        );
        assert_eq!(snap.untracked_completions, 0, "scoreboard lost prefetches");
        // The artifact must carry all of that through serde.
        let text = serde_json::to_string(&snap).expect("serializable");
        for key in [
            "pbot_hit_rate",
            "confirm_latency_samples",
            "inference_wall_ns",
            "untracked_completions",
        ] {
            assert!(text.contains(key), "snapshot JSON missing {key}");
        }
    }
}
