//! Sharded full-matrix replay driver behind `mpgraph run --all`
//! (DESIGN.md §15).
//!
//! The framework × app × dataset matrix is partitioned across worker
//! threads; each combo is traced, trained, and replayed wholly inside one
//! worker, with its own [`PrefetchScoreboard`] and flight recorder, so a
//! combo's result is a pure function of the combo and the scale — never
//! of the worker that happened to run it. Long evaluation streams are
//! replayed in contiguous segments through a resumable
//! [`SimSession`], which carries the full simulator and prefetcher state
//! across segment boundaries (`SimSession::run_segment` hand-off).
//!
//! Merging is deterministic by construction: per-combo snapshots fold in
//! the fixed [`full_matrix`] order via [`MetricsSnapshot::merge_at`]
//! (counter addition, histogram merge, windowed-series concatenation
//! rebased onto the combined record clock), and the merged artifact's
//! host-time histogram is canonicalized away. A sharded run is therefore
//! byte-identical to the serial run on the same seed, at any `--shards`.

use crate::runners::prefetching::{mpgraph_cfg, sim_config};
use crate::scale::ExpScale;
use crate::workload::{all_cells, build_workload};
use mpgraph_core::trace::TraceConfig as TelemetryConfig;
use mpgraph_core::{
    chrome_trace_json_sharded, train_mpgraph, MetricsSnapshot, PrefetchScoreboard, ShardTrace,
};
use mpgraph_frameworks::{App, Framework};
use mpgraph_graph::Dataset;
use mpgraph_prefetchers::{BestOffset, BoConfig};
use mpgraph_sim::{simulate, NullPrefetcher, PrefetchObserver, SimResult, SimSession};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluation-stream records replayed per [`SimSession`] segment. Segment
/// boundaries depend only on this constant — never on the shard count —
/// so segmentation cannot perturb the replay (and the sim crate's
/// equivalence tests guarantee segmented == one-shot regardless).
pub const SEGMENT_LEN: usize = 50_000;

/// One cell of the full evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Combo {
    pub framework: Framework,
    pub app: App,
    pub dataset: Dataset,
}

impl Combo {
    /// `framework/app/dataset`, e.g. `"GPOP/PR/rmat"` — the shard's
    /// Perfetto process name and the merge-order key shown in reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.framework.name(),
            self.app.name(),
            self.dataset.name()
        )
    }
}

/// The matrix in its canonical order: `Framework::ALL` × the apps each
/// framework ships (Table 1) × the scale's datasets. Merge order and
/// Perfetto pids both follow this order, independent of worker count.
pub fn full_matrix(scale: &ExpScale) -> Vec<Combo> {
    let mut combos = Vec::new();
    for (framework, app) in all_cells() {
        for &dataset in &scale.datasets {
            combos.push(Combo {
                framework,
                app,
                dataset,
            });
        }
    }
    combos
}

/// One combo's measurements: the reference simulations (no prefetch, BO),
/// the MPGraph replay with its observed snapshot, and the flight-recorder
/// trace that becomes this combo's Perfetto process.
#[derive(Debug)]
pub struct ComboResult {
    pub combo: Combo,
    pub base: SimResult,
    pub bo: SimResult,
    pub mpgraph: SimResult,
    pub snapshot: MetricsSnapshot,
    pub trace: ShardTrace,
    /// Records on this combo's record clock (= evaluated accesses); the
    /// merge offset advances by this much per combo.
    pub records: u64,
}

/// Runs one combo start to finish: trace → LLC-filter → train MPGraph on
/// iteration 0 → replay the evaluation stream in `segment_len` segments
/// through one [`SimSession`] with a single traced scoreboard spanning
/// every segment (so cross-segment prefetch completions stay tracked).
pub fn run_combo(combo: Combo, scale: &ExpScale, segment_len: usize) -> ComboResult {
    run_combo_opts(combo, scale, segment_len, false)
}

/// [`run_combo`] with the serve path selectable: `quant` rounds the
/// trained predictors onto their int8 grid and installs the real int8
/// serving snapshots before evaluation, so the whole run measures the
/// i8×i8→i32 inference path on otherwise identical weights. Diffing a
/// quant snapshot against the f32 one isolates the pure quantization
/// accuracy cost (no distillation in the loop).
pub fn run_combo_opts(
    combo: Combo,
    scale: &ExpScale,
    segment_len: usize,
    quant: bool,
) -> ComboResult {
    let w = build_workload(combo.framework, combo.app, combo.dataset, scale);
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut bo_pf = BestOffset::new(BoConfig::default());
    let bo = simulate(&w.test, &mut bo_pf, &cfg);

    let mut mp = train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train);
    if quant {
        mp.quantize();
    }
    let mut sb =
        PrefetchScoreboard::with_trace(w.num_phases.max(1), 4096, TelemetryConfig::default());
    let mut session = SimSession::new(&cfg);
    for segment in w.test.chunks(segment_len.max(1)) {
        session.run_segment(
            segment,
            &mut mp,
            None,
            Some(&mut sb as &mut dyn PrefetchObserver),
        );
    }
    let mpgraph = session.finish(&mp, None);

    let mut snapshot = sb.snapshot();
    mp.enrich_snapshot(&mut snapshot);
    let recorder = sb
        .flight_recorder()
        .cloned()
        .expect("scoreboard was built with tracing attached");
    let records = sb.trace_records();
    let trace = ShardTrace {
        label: combo.label(),
        recorder,
        windows: sb.windows(),
        end: records,
        live: Vec::new(),
    };
    ComboResult {
        combo,
        base,
        bo,
        mpgraph,
        snapshot,
        trace,
        records,
    }
}

/// The full matrix run: per-combo results in canonical order plus the
/// deterministically merged snapshot.
#[derive(Debug)]
pub struct MatrixResult {
    pub combos: Vec<ComboResult>,
    pub merged: MetricsSnapshot,
}

impl MatrixResult {
    /// The merged Perfetto export: one process per combo, pid = position
    /// in canonical matrix order + 1.
    pub fn chrome_trace(&self) -> serde::Value {
        let shards: Vec<ShardTrace> = self.combos.iter().map(|c| c.trace.clone()).collect();
        chrome_trace_json_sharded(&shards)
    }
}

/// Runs the full matrix across `shards` worker threads at the default
/// [`SEGMENT_LEN`].
pub fn run_matrix(scale: &ExpScale, shards: usize) -> MatrixResult {
    run_matrix_segmented(scale, shards, SEGMENT_LEN)
}

/// [`run_matrix`] with an explicit segment length (tests shrink it to
/// force many segment hand-offs on quick-scale streams).
pub fn run_matrix_segmented(scale: &ExpScale, shards: usize, segment_len: usize) -> MatrixResult {
    let combos = full_matrix(scale);
    let workers = shards.max(1).min(combos.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ComboResult>>> = combos.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&combo) = combos.get(i) else { break };
                let result = run_combo(combo, scale, segment_len);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    let results: Vec<ComboResult> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every combo ran")
        })
        .collect();
    merge(results)
}

/// Folds per-combo snapshots in canonical order: counters add, histograms
/// merge, each combo's windows land rebased after the previous combo's
/// record clock. The merged artifact drops the host-time histogram
/// ([`MetricsSnapshot::canonicalize_wall_clock`]) so its bytes are a pure
/// function of the workload and seed.
fn merge(combos: Vec<ComboResult>) -> MatrixResult {
    let mut merged = match combos.first() {
        Some(c) => c.snapshot.clone(),
        None => MetricsSnapshot::default(),
    };
    let mut offset = combos.first().map_or(0, |c| c.records);
    for c in &combos[1.min(combos.len())..] {
        merged.merge_at(&c.snapshot, offset);
        offset += c.records;
    }
    merged.canonicalize_wall_clock();
    MatrixResult { combos, merged }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_order_is_canonical_and_complete() {
        let scale = ExpScale::quick();
        let combos = full_matrix(&scale);
        // 12 (framework, app) cells × 1 quick dataset.
        assert_eq!(combos.len(), 12 * scale.datasets.len());
        let labels: Vec<String> = combos.iter().map(|c| c.label()).collect();
        let mut sorted_dedup = labels.clone();
        sorted_dedup.dedup();
        assert_eq!(labels.len(), sorted_dedup.len(), "duplicate combos");
        assert_eq!(labels.first().map(String::as_str), Some("GPOP/BFS/rmat"));
    }

    #[test]
    fn one_combo_produces_consistent_snapshot_and_trace() {
        let scale = ExpScale::quick();
        let combos = full_matrix(&scale);
        let r = run_combo(combos[0], &scale, 7_000);
        assert!(r.records > 0);
        assert_eq!(r.trace.end, r.records);
        assert_eq!(r.trace.label, combos[0].label());
        assert!(r.mpgraph.ipc() > 0.0);
        assert_eq!(r.snapshot.issued, r.mpgraph.prefetches_issued);
        // One scoreboard spans all segments, so completions that cross a
        // segment boundary must stay tracked.
        assert_eq!(r.snapshot.untracked_completions, 0);
    }
}
