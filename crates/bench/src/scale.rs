//! Experiment scale presets. The paper's runs are hundreds of millions of
//! instructions on real hardware; this reproduction exposes two presets —
//! `quick` for CI-style smoke runs (seconds) and `standard` for the actual
//! table/figure regeneration (minutes) — plus CLI parsing shared by every
//! experiment binary.

use mpgraph_graph::Dataset;
use mpgraph_prefetchers::TrainCfg;

/// Scaling knobs shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExpScale {
    /// Synthetic dataset scale divisor vs the SNAP originals (DESIGN.md §5).
    pub graph_div: usize,
    /// Framework iterations to trace (1 training + N evaluation).
    pub iterations: usize,
    /// Cap on generated trace records.
    pub record_limit: usize,
    /// Cap on test-trace records replayed through the simulator.
    pub eval_records: usize,
    /// Prediction-metric evaluation samples (Tables 6/7).
    pub eval_samples: usize,
    /// Model-training hyper-parameters.
    pub train: TrainCfg,
    /// Datasets included in the sweep.
    pub datasets: Vec<Dataset>,
}

impl ExpScale {
    /// Smoke-test scale: everything completes in a few seconds.
    pub fn quick() -> Self {
        ExpScale {
            graph_div: 4096,
            iterations: 6,
            record_limit: 200_000,
            eval_records: 80_000,
            eval_samples: 300,
            train: TrainCfg {
                history: 9,
                max_samples: 400,
                epochs: 2,
                lr: 3e-3,
                seed: 1234,
            },
            datasets: vec![Dataset::Rmat],
        }
    }

    /// Standard reproduction scale (the default for the binaries). Tuned
    /// for a single-core runner: sparse datasets keep iterations short
    /// while the 64×-scaled cache hierarchy keeps vertex arrays LLC-
    /// overflowing (DESIGN.md §5).
    pub fn standard() -> Self {
        ExpScale {
            graph_div: 64,
            iterations: 6,
            record_limit: 2_000_000,
            eval_records: 450_000,
            eval_samples: 1000,
            train: TrainCfg {
                history: 9,
                max_samples: 1500,
                epochs: 2,
                lr: 2e-3,
                seed: 1234,
            },
            datasets: vec![Dataset::Youtube, Dataset::RoadCa],
        }
    }

    /// Parses `--quick` / `--standard` / `--datasets all` from argv.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--quick") {
            ExpScale::quick()
        } else {
            ExpScale::standard()
        };
        if args.iter().any(|a| a == "--datasets=all") {
            scale.datasets = Dataset::ALL.to_vec();
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_standard() {
        let q = ExpScale::quick();
        let s = ExpScale::standard();
        assert!(q.record_limit < s.record_limit);
        assert!(q.train.max_samples < s.train.max_samples);
        assert!(q.graph_div > s.graph_div);
        assert!(!q.datasets.is_empty());
    }
}
