//! Figures 10-12 (prefetch accuracy / coverage / IPC improvement), Table 8
//! (computational complexity), Figure 13 (knowledge-distillation sweep) and
//! Figure 14 (distance prefetching under inference latency).

use crate::scale::ExpScale;
use crate::workload::{all_cells, build_workload, carrier, Workload};
use mpgraph_core::complexity::{baseline_complexity, mpgraph_complexity, CriticalPath};
use mpgraph_core::{
    amma_latency, build_detector, compress, train_mpgraph, AmmaConfig, DeltaPredictor, DistillCfg,
    MpGraphConfig, MpGraphPrefetcher, PageHead, PagePredictor,
};
use mpgraph_prefetchers::{
    BestOffset, BoConfig, DeltaLstm, DeltaLstmConfig, Isb, IsbConfig, TransFetch, TransFetchConfig,
    Voyager, VoyagerConfig,
};
use mpgraph_sim::{simulate, NullPrefetcher, SimConfig, SimResult};
use rayon::prelude::*;
use serde::Serialize;

/// Simulator configuration for the scaled datasets: Table 3 latencies with
/// a 64× smaller cache hierarchy, preserving "fits in DRAM, not in LLC" —
/// and crucially "vertex-value arrays overflow the LLC" — for the 64×
/// smaller graphs (DESIGN.md §5).
pub fn sim_config() -> SimConfig {
    SimConfig {
        l1_size: 2 * 1024,
        l2_size: 8 * 1024,
        llc_size: 32 * 1024,
        // Bandwidth-per-instruction compensation for the memory-op-dense
        // traces (see `mpgraph::scaled_sim_config`).
        dram: mpgraph_sim::DramConfig {
            bus_cycles: 8,
            ..mpgraph_sim::DramConfig::default()
        },
        ..SimConfig::default()
    }
}

/// One (workload, prefetcher) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct PrefetchRow {
    pub framework: String,
    pub app: String,
    pub dataset: String,
    pub prefetcher: String,
    pub accuracy: f64,
    pub coverage: f64,
    pub ipc: f64,
    pub ipc_improvement_pct: f64,
}

fn row(w: &Workload, r: &SimResult, base: &SimResult) -> PrefetchRow {
    PrefetchRow {
        framework: w.framework.name().into(),
        app: w.app.name().into(),
        dataset: w.dataset.name().into(),
        prefetcher: r.prefetcher.clone(),
        accuracy: r.accuracy(),
        coverage: r.coverage(),
        ipc: r.ipc(),
        ipc_improvement_pct: r.ipc_improvement(base),
    }
}

/// MPGraph configuration used in the main comparison (AMMA-PS, CSTP with
/// Ds = Dt = 2, Soft-DT detector).
pub fn mpgraph_cfg() -> MpGraphConfig {
    MpGraphConfig::default()
}

/// Runs every prefetcher of §5.4.1 on one workload cell.
pub fn run_cell(w: &Workload, scale: &ExpScale) -> Vec<PrefetchRow> {
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut rows = Vec::new();

    let mut bo = BestOffset::new(BoConfig::default());
    rows.push(row(w, &simulate(&w.test, &mut bo, &cfg), &base));

    let mut isb = Isb::new(IsbConfig::default());
    rows.push(row(w, &simulate(&w.test, &mut isb, &cfg), &base));

    // ML prefetchers train on the LLC-level trace — the stream they will
    // actually observe online (Figure 6).
    let mut dl = DeltaLstm::train(&w.train_llc, DeltaLstmConfig::default(), &scale.train);
    rows.push(row(w, &simulate(&w.test, &mut dl, &cfg), &base));

    let mut voy = Voyager::train(&w.train_llc, VoyagerConfig::default(), &scale.train);
    rows.push(row(w, &simulate(&w.test, &mut voy, &cfg), &base));

    let mut tf = TransFetch::train(&w.train_llc, TransFetchConfig::default(), &scale.train);
    rows.push(row(w, &simulate(&w.test, &mut tf, &cfg), &base));

    let mut mp = train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train);
    rows.push(row(w, &simulate(&w.test, &mut mp, &cfg), &base));

    rows
}

/// Figures 10-12: the full (framework, app) × dataset × prefetcher sweep.
pub fn run_figures_10_to_12(scale: &ExpScale) -> Vec<PrefetchRow> {
    let mut tasks = Vec::new();
    for (fw, app) in all_cells() {
        for &ds in &scale.datasets {
            tasks.push((fw, app, ds));
        }
    }
    tasks
        .par_iter()
        .flat_map(|&(fw, app, ds)| {
            let w = build_workload(fw, app, ds, scale);
            run_cell(&w, scale)
        })
        .collect()
}

/// Per-prefetcher averages (the bars of Figures 10/11).
pub fn prefetcher_means(rows: &[PrefetchRow]) -> Vec<(String, f64, f64, f64)> {
    let names = [
        "BO",
        "ISB",
        "Delta-LSTM",
        "Voyager",
        "TransFetch",
        "MPGraph",
    ];
    names
        .iter()
        .map(|&n| {
            let sel: Vec<&PrefetchRow> = rows.iter().filter(|r| r.prefetcher == n).collect();
            let len = sel.len().max(1) as f64;
            (
                n.to_string(),
                sel.iter().map(|r| r.accuracy).sum::<f64>() / len,
                sel.iter().map(|r| r.coverage).sum::<f64>() / len,
                sel.iter().map(|r| r.ipc_improvement_pct).sum::<f64>() / len,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 8
// ---------------------------------------------------------------------------

/// One Table 8 row with measured IPC improvement attached.
#[derive(Debug, Clone, Serialize)]
pub struct Table8Row {
    pub model: String,
    pub params_k: f64,
    pub ops_m: f64,
    pub critical_path: String,
    pub ipc_improvement_pct: f64,
}

/// Regenerates Table 8 on a GPOP/PR workload: parameter and OPs accounting
/// for the trained models plus the measured IPC improvement of each.
pub fn run_table8(scale: &ExpScale) -> Vec<Table8Row> {
    use mpgraph_frameworks::{App, Framework};
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let seq = scale.train.history;
    let mut rows = Vec::new();

    let mut dl = DeltaLstm::train(&w.train_llc, DeltaLstmConfig::default(), &scale.train);
    let r = simulate(&w.test, &mut dl, &cfg);
    let c = baseline_complexity(
        "Delta-LSTM",
        dl.num_params(),
        seq,
        CriticalPath::SequenceTimesLayers,
    );
    rows.push(Table8Row {
        params_k: c.params_k(),
        ops_m: c.ops_m(),
        model: c.model,
        critical_path: c.critical_path.notation().into(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    let mut voy = Voyager::train(&w.train_llc, VoyagerConfig::default(), &scale.train);
    let r = simulate(&w.test, &mut voy, &cfg);
    let c = baseline_complexity(
        "Voyager",
        voy.num_params(),
        seq,
        CriticalPath::SequenceTimesLayers,
    );
    rows.push(Table8Row {
        params_k: c.params_k(),
        ops_m: c.ops_m(),
        model: c.model,
        critical_path: c.critical_path.notation().into(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    let mut tf = TransFetch::train(&w.train_llc, TransFetchConfig::default(), &scale.train);
    let r = simulate(&w.test, &mut tf, &cfg);
    let c = baseline_complexity("TransFetch", tf.num_params(), seq, CriticalPath::Layers);
    rows.push(Table8Row {
        params_k: c.params_k(),
        ops_m: c.ops_m(),
        model: c.model,
        critical_path: c.critical_path.notation().into(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    // MPGraph, full and compressed.
    let mut mp = train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train);
    let r = simulate(&w.test, &mut mp, &cfg);
    let c = mpgraph_complexity("MPGraph", &mut mp.delta, &mut mp.page, seq);
    rows.push(Table8Row {
        params_k: c.params_k(),
        ops_m: c.ops_m(),
        model: c.model,
        critical_path: c.critical_path.notation().into(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    let (mut cmp, _factor) = compressed_mpgraph(&w, scale, AmmaConfig::student(8), true);
    let r = simulate(&w.test, &mut cmp, &cfg);
    let c = mpgraph_complexity("MPGraph (compressed)", &mut cmp.delta, &mut cmp.page, seq);
    rows.push(Table8Row {
        params_k: c.params_k(),
        ops_m: c.ops_m(),
        model: c.model,
        critical_path: c.critical_path.notation().into(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });
    rows
}

// ---------------------------------------------------------------------------
// Figure 13: knowledge-distillation compression sweep
// ---------------------------------------------------------------------------

/// Builds a compressed MPGraph: AMMA-PS teachers distilled into students at
/// `student_cfg` dimensions (optionally folded into a single student), with
/// int8 quantization. Returns the prefetcher and the compression factor.
pub fn compressed_mpgraph(
    w: &Workload,
    scale: &ExpScale,
    student_cfg: AmmaConfig,
    single_student: bool,
) -> (MpGraphPrefetcher, f64) {
    let cfg = mpgraph_cfg();
    let teacher_delta = DeltaPredictor::train(
        &w.train_llc,
        w.num_phases,
        cfg.variant,
        cfg.delta,
        &scale.train,
    );
    let teacher_page = PagePredictor::train(
        &w.train_llc,
        w.num_phases,
        cfg.variant,
        cfg.page,
        &scale.train,
    );
    // Binary-encode the student's page head on top of KD (§6.1 stacks all
    // three compressions).
    let dc = DistillCfg {
        student_amma: student_cfg,
        temperature: 3.0,
        single_student,
        student_head: Some(PageHead::BinaryEncoded),
    };
    let mut sd = compress::distill_delta(&teacher_delta, &w.train_llc, &dc, &scale.train);
    let mut sp = compress::distill_page(&teacher_page, &w.train_llc, &dc, &scale.train);
    compress::quantize_delta(&mut sd);
    compress::quantize_page(&mut sp);
    let teacher_params = teacher_delta.num_params() + teacher_page.num_params();
    let student_params = sd.num_params() + sp.num_params();
    // int8 counts 4× per-parameter storage compression on top.
    let factor = 4.0 * teacher_params as f64 / student_params.max(1) as f64;
    let detector = build_detector(&w.train_llc, w.num_phases, cfg.detector);
    let mut pcfg = cfg;
    pcfg.latency = amma_latency(&student_cfg).total;
    let pf =
        MpGraphPrefetcher::from_parts(sd, sp, detector, pcfg, w.num_phases, scale.train.history);
    (pf, factor)
}

/// One Figure 13 point.
#[derive(Debug, Clone, Serialize)]
pub struct Figure13Row {
    pub config: String,
    pub compression_factor: f64,
    pub accuracy: f64,
    pub coverage: f64,
    pub ipc_improvement_pct: f64,
}

/// Figure 13: IPC/accuracy/coverage versus compression factor, with BO as
/// the uncompressed non-ML reference.
pub fn run_figure13(scale: &ExpScale) -> Vec<Figure13Row> {
    use mpgraph_frameworks::{App, Framework};
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut rows = Vec::new();

    let mut bo = BestOffset::new(BoConfig::default());
    let r = simulate(&w.test, &mut bo, &cfg);
    rows.push(Figure13Row {
        config: "BO".into(),
        compression_factor: 1.0,
        accuracy: r.accuracy(),
        coverage: r.coverage(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    let mut teacher = train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train);
    let r = simulate(&w.test, &mut teacher, &cfg);
    rows.push(Figure13Row {
        config: "MPGraph (teacher)".into(),
        compression_factor: 1.0,
        accuracy: r.accuracy(),
        coverage: r.coverage(),
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    for (label, attn_dim, single) in [
        ("KD student d/2", 16usize, false),
        ("KD student d/4", 8, false),
        ("KD student d/8 + fold", 4, true),
    ] {
        let (mut pf, factor) = compressed_mpgraph(&w, scale, AmmaConfig::student(attn_dim), single);
        // Figure 13 isolates storage compression; latency is swept in
        // Figure 14.
        let mut pcfg = pf.cfg;
        pcfg.latency = 0;
        pf.cfg = pcfg;
        let r = simulate(&w.test, &mut pf, &cfg);
        rows.push(Figure13Row {
            config: label.into(),
            compression_factor: factor,
            accuracy: r.accuracy(),
            coverage: r.coverage(),
            ipc_improvement_pct: r.ipc_improvement(&base),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 14: distance prefetching under inference latency
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
pub struct Figure14Row {
    pub config: String,
    pub latency_cycles: u64,
    pub distance_prefetching: bool,
    pub ipc_improvement_pct: f64,
}

/// Figure 14: inject {0, 100, 200, 400} cycles of model latency, with and
/// without distance prefetching, for the uncompressed and compressed
/// models; BO (latency 0) is the reference line.
pub fn run_figure14(scale: &ExpScale) -> Vec<Figure14Row> {
    use mpgraph_frameworks::{App, Framework};
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut rows = Vec::new();

    let mut bo = BestOffset::new(BoConfig::default());
    let r = simulate(&w.test, &mut bo, &cfg);
    rows.push(Figure14Row {
        config: "BO".into(),
        latency_cycles: 0,
        distance_prefetching: false,
        ipc_improvement_pct: r.ipc_improvement(&base),
    });

    for (config, compressed) in [("MPGraph", false), ("MPGraph 87x", true)] {
        // Train once per configuration; only the injected latency and the
        // distance-prefetching knob change between sweep points (the online
        // state re-warms within the first few thousand accesses).
        let mut pf = if compressed {
            compressed_mpgraph(&w, scale, AmmaConfig::student(8), true).0
        } else {
            train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train)
        };
        for latency in [0u64, 100, 200, 400] {
            for dp in [false, true] {
                let mut pcfg = pf.cfg;
                pcfg.latency = latency;
                pf.cfg = pcfg;
                pf.dp_distance = if dp { 1 } else { 0 };
                let r = simulate(&w.test, &mut pf, &cfg);
                rows.push(Figure14Row {
                    config: config.into(),
                    latency_cycles: latency,
                    distance_prefetching: dp,
                    ipc_improvement_pct: r.ipc_improvement(&base),
                });
            }
        }
    }
    rows
}

/// CSTP degree ablation (DESIGN.md extras): sweep (Ds, Dt).
#[derive(Debug, Clone, Serialize)]
pub struct DegreeAblationRow {
    pub spatial_degree: usize,
    pub temporal_degree: usize,
    pub max_degree: usize,
    pub accuracy: f64,
    pub coverage: f64,
    pub ipc_improvement_pct: f64,
}

pub fn run_degree_ablation(scale: &ExpScale) -> Vec<DegreeAblationRow> {
    use mpgraph_core::CstpConfig;
    use mpgraph_frameworks::{App, Framework};
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut rows = Vec::new();
    for (ds, dt) in [(1usize, 0usize), (2, 0), (2, 1), (2, 2), (4, 2), (2, 4)] {
        let mut mcfg = mpgraph_cfg();
        mcfg.cstp = CstpConfig {
            spatial_degree: ds,
            temporal_degree: dt,
        };
        let mut pf = train_mpgraph(&w.train_llc, w.num_phases, mcfg, &scale.train);
        let r = simulate(&w.test, &mut pf, &cfg);
        rows.push(DegreeAblationRow {
            spatial_degree: ds,
            temporal_degree: dt,
            max_degree: mcfg.cstp.max_degree(),
            accuracy: r.accuracy(),
            coverage: r.coverage(),
            ipc_improvement_pct: r.ipc_improvement(&base),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_frameworks::{App, Framework};

    #[test]
    fn one_cell_produces_six_rows() {
        let scale = ExpScale::quick();
        let w = build_workload(Framework::Gpop, App::Pr, carrier(&scale), &scale);
        let rows = run_cell(&w, &scale);
        assert_eq!(rows.len(), 6);
        let names: Vec<&str> = rows.iter().map(|r| r.prefetcher.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "BO",
                "ISB",
                "Delta-LSTM",
                "Voyager",
                "TransFetch",
                "MPGraph"
            ]
        );
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
            assert!((0.0..=1.0).contains(&r.coverage), "{r:?}");
            assert!(r.ipc > 0.0);
        }
    }

    #[test]
    fn compressed_mpgraph_reports_large_factor() {
        let scale = ExpScale::quick();
        let w = build_workload(Framework::Gpop, App::Pr, carrier(&scale), &scale);
        let (_pf, factor) = compressed_mpgraph(&w, &scale, AmmaConfig::student(4), true);
        assert!(factor > 10.0, "factor {factor}");
    }
}
