//! Resilience experiment: the degradation demo behind DESIGN.md's
//! "Failure model & degraded modes" section.
//!
//! Injects inference stalls (a hung accelerator / contended inference
//! queue) into the simulated LLC stream and compares three deployments on
//! the same workload:
//!
//! * **unguarded MPGraph** — pays every stall on the prefetch path;
//! * **guarded MPGraph** — a [`DegradationGuard`] trips to Best-Offset
//!   when the stall pattern blows the inference deadline budget;
//! * **pure Best-Offset** — rule-based, immune to inference stalls; the
//!   ceiling the guard should approach while degraded.
//!
//! The runner also assembles the pipeline-wide [`HealthReport`]: guard
//! condition, controller observe-errors, and the injector's fault ledger.

use crate::scale::ExpScale;
use crate::workload::{build_workload, carrier};
use mpgraph_core::{
    train_mpgraph, ComponentHealth, ComponentStatus, DegradationGuard, GuardConfig, HealthReport,
    MetricsSnapshot, MpGraphPrefetcher, PrefetchScoreboard,
};
use mpgraph_prefetchers::{BestOffset, BoConfig};
use mpgraph_sim::{
    simulate, simulate_observed, simulate_with_faults, FaultConfig, FaultInjector, FaultKind,
    NullPrefetcher, SimResult,
};
use serde::Serialize;

use super::prefetching::{mpgraph_cfg, sim_config};

/// One (configuration, fault regime) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceRow {
    pub config: String,
    pub stalled: bool,
    pub accuracy: f64,
    pub coverage: f64,
    pub ipc: f64,
    pub ipc_improvement_pct: f64,
}

/// Flattened [`ComponentHealth`] for the JSON report.
#[derive(Debug, Clone, Serialize)]
pub struct HealthRow {
    pub component: String,
    pub status: String,
    pub detail: String,
}

/// The full resilience report: measurements plus the aggregated health of
/// the guarded run.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceReport {
    pub rows: Vec<ResilienceRow>,
    pub health: Vec<HealthRow>,
    pub inference_stalls_injected: u64,
    pub guard_tripped: bool,
    /// Pipeline-wide observability snapshot from the guarded run: per-phase
    /// and per-lane prefetch outcomes, CSTP/detector/controller/guard/
    /// training counters, and the latency histograms (`--metrics-out`
    /// serializes exactly this).
    pub metrics: MetricsSnapshot,
}

/// Stall regime for the demo: most inferences hang far past the deadline
/// (and past the engine's timeliness bound, so stalled prefetches count as
/// misses), as a wedged accelerator would.
pub fn stall_faults(seed: u64) -> FaultConfig {
    FaultConfig::only(FaultKind::StallInference, 0.8, seed)
}

fn row(config: &str, stalled: bool, r: &SimResult, base: &SimResult) -> ResilienceRow {
    ResilienceRow {
        config: config.into(),
        stalled,
        accuracy: r.accuracy(),
        coverage: r.coverage(),
        ipc: r.ipc(),
        ipc_improvement_pct: r.ipc_improvement(base),
    }
}

/// Folds every counter the guarded deployment owns into the scoreboard's
/// snapshot: CSTP, detector, controller and training metrics from the
/// wrapped MPGraph prefetcher, plus the guard's own trip ledger.
pub fn guarded_snapshot(
    scoreboard: &PrefetchScoreboard,
    guard: &DegradationGuard<MpGraphPrefetcher>,
) -> MetricsSnapshot {
    let mut snap = scoreboard.snapshot();
    guard.inner().enrich_snapshot(&mut snap);
    snap.guard = guard.metrics();
    snap
}

/// Aggregates pipeline health after a guarded run. The simulator
/// component is derived from the observed metrics: untracked completions
/// or in-flight overflow mean the scoreboard's accounting lost prefetches
/// and degrade the component rather than passing silently.
pub fn health_report(
    guard: &DegradationGuard<MpGraphPrefetcher>,
    result: &SimResult,
    metrics: &MetricsSnapshot,
) -> HealthReport {
    let mut report = HealthReport::new();
    report.push(guard.health());
    let mp = guard.inner();
    let controller = if mp.observe_errors == 0 {
        ComponentHealth::new("controller", ComponentStatus::Healthy, "no observe errors")
    } else {
        ComponentHealth::new(
            "controller",
            ComponentStatus::Degraded,
            format!("{} recoverable observe errors", mp.observe_errors),
        )
    };
    report.push(controller);
    let mut sim = ComponentHealth::simulator_from_metrics(metrics);
    sim.detail = format!("{}; {} faults injected", sim.detail, result.faults.total());
    report.push(sim);
    report.set_faults(result.faults);
    report
}

/// Runs the three-way comparison on the GPOP/PR carrier workload.
pub fn run_resilience(scale: &ExpScale) -> ResilienceReport {
    let w = build_workload(
        mpgraph_frameworks::Framework::Gpop,
        mpgraph_frameworks::App::Pr,
        carrier(scale),
        scale,
    );
    let cfg = sim_config();
    let base = simulate(&w.test, &mut NullPrefetcher, &cfg);
    let mut rows = Vec::new();

    // Pure Best-Offset: immune to inference stalls by construction.
    let mut bo = BestOffset::new(BoConfig::default());
    let mut inj = FaultInjector::new(stall_faults(1));
    let r_bo = simulate_with_faults(&w.test, &mut bo, &cfg, Some(&mut inj));
    rows.push(row("BO", true, &r_bo, &base));

    // One trained MPGraph serves all three ML rows, so the comparison
    // isolates the deployment policy rather than training noise.
    let mut mp = train_mpgraph(&w.train_llc, w.num_phases, mpgraph_cfg(), &scale.train);
    let r_clean = simulate(&w.test, &mut mp, &cfg);
    rows.push(row("MPGraph", false, &r_clean, &base));

    let mut inj = FaultInjector::new(stall_faults(1));
    let r_unguarded = simulate_with_faults(&w.test, &mut mp, &cfg, Some(&mut inj));
    rows.push(row("MPGraph unguarded", true, &r_unguarded, &base));

    // The guarded run is the observed one: a scoreboard classifies every
    // prefetch it issues, and its snapshot rides along in the report.
    let mut guarded = DegradationGuard::new(mp, GuardConfig::default());
    let mut inj = FaultInjector::new(stall_faults(1));
    let mut scoreboard = PrefetchScoreboard::new(w.num_phases, 4096);
    let r_guarded = simulate_observed(
        &w.test,
        &mut guarded,
        &cfg,
        Some(&mut inj),
        Some(&mut scoreboard),
    );
    rows.push(row("MPGraph guarded", true, &r_guarded, &base));

    let metrics = guarded_snapshot(&scoreboard, &guarded);
    let mut report = health_report(&guarded, &r_guarded, &metrics);
    report.set_metrics(metrics.clone());
    ResilienceReport {
        health: report
            .components
            .iter()
            .map(|c| HealthRow {
                component: c.component.clone(),
                status: c.status.name().into(),
                detail: c.detail.clone(),
            })
            .collect(),
        inference_stalls_injected: r_guarded.faults.count(FaultKind::StallInference),
        guard_tripped: guarded.trips > 0,
        metrics,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance demo: under injected stalls the guarded deployment
    /// strictly beats the unguarded one and lands within 10% of the pure
    /// Best-Offset IPC ceiling.
    #[test]
    fn guard_rescues_ipc_under_stalls() {
        let scale = ExpScale::quick();
        let rep = run_resilience(&scale);
        assert!(rep.inference_stalls_injected > 0);
        assert!(rep.guard_tripped, "guard never tripped under 80% stalls");

        let find = |config: &str, stalled: bool| {
            rep.rows
                .iter()
                .find(|r| r.config == config && r.stalled == stalled)
                .unwrap_or_else(|| panic!("missing row {config}/{stalled}"))
        };
        let bo = find("BO", true);
        let unguarded = find("MPGraph unguarded", true);
        let guarded = find("MPGraph guarded", true);

        assert!(
            guarded.ipc > unguarded.ipc,
            "guarded IPC {} not above unguarded {}",
            guarded.ipc,
            unguarded.ipc
        );
        assert!(
            guarded.coverage >= unguarded.coverage,
            "guarded coverage {} below unguarded {}",
            guarded.coverage,
            unguarded.coverage
        );
        assert!(
            guarded.ipc >= 0.9 * bo.ipc,
            "guarded IPC {} more than 10% below BO {}",
            guarded.ipc,
            bo.ipc
        );
    }

    #[test]
    fn health_report_names_every_component_and_metrics_ride_along() {
        let scale = ExpScale::quick();
        let rep = run_resilience(&scale);
        let names: Vec<&str> = rep.health.iter().map(|h| h.component.as_str()).collect();
        for expected in ["degradation-guard", "controller", "simulator"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }

        // The scoreboard observed the guarded run end to end.
        let m = &rep.metrics;
        assert!(m.issued > 0, "no prefetches observed");
        assert!((0.0..=1.0).contains(&m.accuracy));
        assert!((0.0..=1.0).contains(&m.coverage));
        assert!(!m.phases.is_empty());
        assert!(m.memory_latency.count > 0, "no memory latencies recorded");
        assert!(m.memory_latency.p99 >= m.memory_latency.p50);
        // Prefetcher-side counters were folded in.
        assert!(m.cstp.batches > 0);
        assert!(!m.detector.name.is_empty());
        assert!(m.detector.updates > 0);
        assert!(m.training.steps > 0);
        assert!(m.guard.trips > 0, "guard metrics missing trips");
        // And the whole thing serializes for --metrics-out / CI artifacts.
        let text = serde_json::to_string(&rep.metrics).expect("metrics serialize");
        for key in [
            "accuracy",
            "coverage",
            "timeliness",
            "pbot_hit_rate",
            "duplicates_suppressed",
            "inference_latency",
        ] {
            assert!(text.contains(key), "metrics JSON missing {key}");
        }
    }
}
