//! Experiment runners, one module per evaluation area: `detection`
//! (Table 4, Figure 9), `prediction` (Tables 6-7, modality ablation),
//! `prefetching` (Figures 10-14, Table 8, degree ablation), `motivation`
//! (Figures 2-3), `resilience` (fault-injection demo), `perf` (the
//! kernel/inference latency suite behind the CI regression gate), and
//! `matrix` (the `mpgraph run --all` summary over the sharded driver).

pub mod detection;
pub mod matrix;
pub mod motivation;
pub mod perf;
pub mod prediction;
pub mod prefetching;
pub mod resilience;
