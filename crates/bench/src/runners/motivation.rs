//! Figures 2 and 3: the motivation studies — PCA of memory-access and PC
//! windows colored by phase (Figure 2), and the page-jump scatter of the
//! GPOP Scatter/Gather phases (Figure 3).

use crate::scale::ExpScale;
use crate::workload::{build_workload, carrier};
use mpgraph_frameworks::{App, Framework, MemRecord};
use mpgraph_ml::tensor::Matrix;
use mpgraph_ml::Pca;
use serde::Serialize;

/// One projected point with its ground-truth phase.
#[derive(Debug, Clone, Serialize)]
pub struct PcaPoint {
    pub components: Vec<f32>,
    pub phase: u8,
}

/// Figure 2 data: top-3 PCA projections of sliding windows of (a) memory
/// block addresses and (b) PCs, labelled by phase.
#[derive(Debug, Clone, Serialize)]
pub struct Figure2Data {
    pub access_points: Vec<PcaPoint>,
    pub pc_points: Vec<PcaPoint>,
    /// Separation score: between-phase centroid distance over mean
    /// within-phase spread, for the PC projection (>1 ⇒ phases separable,
    /// the paper's Figure 2b claim).
    pub pc_separation: f64,
    pub access_separation: f64,
}

/// Builds feature windows: each sample is `window` consecutive normalized
/// values; the label is the phase at the window's end.
fn windows(values: &[f64], phases: &[u8], window: usize, stride: usize) -> (Matrix, Vec<u8>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut i = window;
    while i < values.len() {
        rows.push(&values[i - window..i]);
        labels.push(phases[i - 1]);
        i += stride;
    }
    let mut m = Matrix::zeros(rows.len(), window);
    // Normalize each feature column to zero mean / unit-ish scale to keep
    // PCA numerically sane on large raw addresses.
    let flat: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
    let mean = flat.iter().sum::<f64>() / flat.len().max(1) as f64;
    let std = (flat.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / flat.len().max(1) as f64)
        .sqrt()
        .max(1e-9);
    for (r, row) in rows.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            m.data[r * window + c] = ((v - mean) / std) as f32;
        }
    }
    (m, labels)
}

fn separation(points: &[PcaPoint]) -> f64 {
    let phases: std::collections::BTreeSet<u8> = points.iter().map(|p| p.phase).collect();
    if phases.len() < 2 {
        return 0.0;
    }
    let dim = points[0].components.len();
    let centroid = |ph: u8| -> Vec<f64> {
        let sel: Vec<&PcaPoint> = points.iter().filter(|p| p.phase == ph).collect();
        (0..dim)
            .map(|c| {
                sel.iter().map(|p| p.components[c] as f64).sum::<f64>() / sel.len().max(1) as f64
            })
            .collect()
    };
    let spread = |ph: u8, cen: &[f64]| -> f64 {
        let sel: Vec<&PcaPoint> = points.iter().filter(|p| p.phase == ph).collect();
        let s: f64 = sel
            .iter()
            .map(|p| {
                p.components
                    .iter()
                    .zip(cen.iter())
                    .map(|(&a, &b)| (a as f64 - b).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        s / sel.len().max(1) as f64
    };
    let phases: Vec<u8> = phases.into_iter().collect();
    let mut min_between = f64::INFINITY;
    let mut mean_spread = 0.0;
    for (i, &a) in phases.iter().enumerate() {
        let ca = centroid(a);
        mean_spread += spread(a, &ca);
        for &b in phases.iter().skip(i + 1) {
            let cb = centroid(b);
            let d: f64 = ca
                .iter()
                .zip(cb.iter())
                .map(|(&x, &y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt();
            min_between = min_between.min(d);
        }
    }
    mean_spread /= phases.len() as f64;
    min_between / mean_spread.max(1e-9)
}

/// Regenerates Figure 2 from GPOP CC + PR traces. Windows are drawn from
/// phase-filtered contiguous streams so both phases contribute points even
/// when a single phase spans the head of the trace.
pub fn run_figure2(scale: &ExpScale) -> Figure2Data {
    let mut records: Vec<MemRecord> = Vec::new();
    for app in [App::Cc, App::Pr] {
        let w = build_workload(Framework::Gpop, app, carrier(scale), scale);
        let num_phases = w.num_phases as u8;
        for phase in 0..num_phases {
            records.extend(
                w.test_llc
                    .iter()
                    .filter(|r| r.phase == phase)
                    .take(10_000)
                    .copied(),
            );
        }
    }
    let phases: Vec<u8> = records.iter().map(|r| r.phase).collect();
    let blocks: Vec<f64> = records.iter().map(|r| r.block() as f64).collect();
    let pcs: Vec<f64> = records.iter().map(|r| r.pc as f64).collect();
    let window = 16;
    let stride = 64;
    let project = |vals: &[f64]| -> Vec<PcaPoint> {
        let (m, labels) = windows(vals, &phases, window, stride);
        let pca = Pca::fit(&m, 3);
        let proj = pca.transform(&m);
        labels
            .iter()
            .enumerate()
            .map(|(i, &ph)| PcaPoint {
                components: proj.row(i).to_vec(),
                phase: ph,
            })
            .collect()
    };
    let access_points = project(&blocks);
    let pc_points = project(&pcs);
    let pc_separation = separation(&pc_points);
    let access_separation = separation(&access_points);
    Figure2Data {
        access_points,
        pc_points,
        pc_separation,
        access_separation,
    }
}

/// Figure 3 data: the page sequence of the first GPOP Scatter and Gather
/// phases, plus jump statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Figure3Data {
    pub scatter_pages: Vec<u64>,
    pub gather_pages: Vec<u64>,
    pub scatter_wide_jump_ratio: f64,
    pub gather_wide_jump_ratio: f64,
    pub scatter_distinct_pages: usize,
    pub gather_distinct_pages: usize,
}

fn jump_stats(pages: &[u64]) -> (f64, usize) {
    if pages.len() < 2 {
        return (0.0, pages.len());
    }
    let wide = pages
        .windows(2)
        .filter(|w| (w[1] as i64 - w[0] as i64).unsigned_abs() > 4)
        .count();
    let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
    (wide as f64 / (pages.len() - 1) as f64, distinct.len())
}

pub fn run_figure3(scale: &ExpScale) -> Figure3Data {
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let scatter_pages: Vec<u64> = w
        .test_llc
        .iter()
        .filter(|r| r.phase == 0)
        .take(5000)
        .map(|r| r.page())
        .collect();
    let gather_pages: Vec<u64> = w
        .test_llc
        .iter()
        .filter(|r| r.phase == 1)
        .take(5000)
        .map(|r| r.page())
        .collect();
    let (sr, sd) = jump_stats(&scatter_pages);
    let (gr, gd) = jump_stats(&gather_pages);
    Figure3Data {
        scatter_pages,
        gather_pages,
        scatter_wide_jump_ratio: sr,
        gather_wide_jump_ratio: gr,
        scatter_distinct_pages: sd,
        gather_distinct_pages: gd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_pc_windows_separate_phases() {
        let data = run_figure2(&ExpScale::quick());
        assert!(!data.pc_points.is_empty());
        assert!(!data.access_points.is_empty());
        // Figure 2b's claim: PCs cluster by phase far better than raw
        // accesses do (runtime-code impulses keep either from being
        // perfectly clean, exactly as in the paper's scatter plots).
        assert!(
            data.pc_separation > 0.3,
            "pc separation {}",
            data.pc_separation
        );
        assert!(
            data.pc_separation > 2.0 * data.access_separation,
            "pc {} vs access {}",
            data.pc_separation,
            data.access_separation
        );
    }

    #[test]
    fn figure3_shows_wide_jumps() {
        let data = run_figure3(&ExpScale::quick());
        assert!(!data.scatter_pages.is_empty());
        assert!(!data.gather_pages.is_empty());
        assert!(
            data.scatter_wide_jump_ratio > 0.05,
            "scatter jumps {}",
            data.scatter_wide_jump_ratio
        );
        assert!(data.scatter_distinct_pages > 10);
    }
}
