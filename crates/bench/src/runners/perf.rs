//! Perf runner behind the CI perf-regression gate (`BENCH_kernels.json`).
//!
//! Measures three things on every run:
//!
//! * **kernel speedups** — the register-tiled matmul kernels against the
//!   `_ref` naive kernels (the seed's loop structure) at the shapes AMMA
//!   inference actually hits;
//! * **inference latency** — p50/p99 nanoseconds per warm-arena
//!   `predict_deltas_in` call for the AMMA, AMMA-PI and AMMA-PS variants;
//! * **training throughput** — tokens/second through the parallel
//!   AMMA-PS `DeltaPredictor::train` fan-out.
//!
//! Absolute nanoseconds are machine-dependent, so the gate compares
//! **normalized p50s**: every gated measurement is interleaved, sample by
//! sample, with a reference workload — the same-shape `_ref` kernel for
//! tiled kernels, a fixed calibration kernel (`matmul_ref` at 64×64×64)
//! for inference — and gated on the ratio of the two p50s. Both streams
//! see the same machine-load profile, so a regression in the committed
//! baseline's normalized numbers means the code got slower relative to
//! the machine, not that CI got a slower (or momentarily busier) machine.
//! The gate fails on a >[`TOLERANCE`] normalized-p50 increase;
//! `MPGRAPH_PERF_OVERRIDE=1` (or the `perf-override` PR label, which sets
//! it — see `.github/workflows/ci.yml`) downgrades the failure to a
//! warning for intentional trade-offs.

use std::time::Instant;

use criterion::black_box;
use mpgraph_core::{
    amma_latency, cycles_to_ns, AmmaConfig, DeltaPredictor, DeltaPredictorConfig, Variant,
};
use mpgraph_frameworks::MemRecord;
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_ml::ScratchArena;
use mpgraph_prefetchers::TrainCfg;
use serde::{Deserialize, Serialize};

/// Maximum tolerated relative increase of a normalized p50 vs the baseline.
pub const TOLERANCE: f64 = 0.15;

/// Accelerator clock assumed when converting Eq. 12 cycles to wall time.
pub const ACCEL_GHZ: f64 = 1.0;

/// One gated measurement: a latency plus its reference-normalized p50.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfEntry {
    pub name: String,
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// The gated number: the median per-pair ratio of this measurement
    /// against the reference stream interleaved with it (the same-shape
    /// `_ref` kernel for kernel entries, the fixed calibration kernel for
    /// inference entries).
    pub normalized_p50: f64,
}

/// Tiled-vs-reference kernel comparison (informational; the tiled side is
/// also a gated [`PerfEntry`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpeedup {
    pub name: String,
    pub tiled_p50_ns: u64,
    pub ref_p50_ns: u64,
    pub speedup: f64,
}

/// The full report, serialized to `BENCH_kernels.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    pub schema_version: u32,
    pub quick: bool,
    /// Median over this run's per-entry calibration blocks.
    pub calibration_p50_ns: u64,
    pub kernels: Vec<KernelSpeedup>,
    /// Entries the CI gate compares (normalized p50, >15% fails).
    pub gated: Vec<PerfEntry>,
    /// AMMA-PS training throughput (informational: too run-to-run noisy
    /// on shared runners to gate).
    pub train_tokens_per_sec: f64,
    /// Eq. 12 critical path of the paper config, in cycles and in ns at
    /// [`ACCEL_GHZ`], for context next to the software latencies.
    pub eq12_paper_cycles: u64,
    pub eq12_paper_ns: f64,
}

/// Interleaved sampling: alternates one sample of `a` with one of `b`, so
/// adjacent samples of the two streams see the same machine-load profile.
/// Returns both streams sorted, plus the **median of per-pair ratios**
/// `a_i / b_i` — the gated statistic. Per-pair ratios are robust where a
/// ratio of medians is not: a load spike inflates one pair's ratio, which
/// the median then discards, instead of shifting a whole stream's p50.
fn sample_interleaved_ns(
    samples: usize,
    inner: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Vec<u64>, Vec<u64>, f64) {
    let mut va = Vec::with_capacity(samples);
    let mut vb = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..inner {
            a();
        }
        va.push((t.elapsed().as_nanos() / inner.max(1) as u128) as u64);
        let t = Instant::now();
        for _ in 0..inner {
            b();
        }
        vb.push((t.elapsed().as_nanos() / inner.max(1) as u128) as u64);
    }
    let mut ratios: Vec<f64> = va
        .iter()
        .zip(vb.iter())
        .map(|(&x, &y)| x as f64 / y.max(1) as f64)
        .collect();
    ratios.sort_unstable_by(f64::total_cmp);
    let median_ratio = median(&ratios);
    va.sort_unstable();
    vb.sort_unstable();
    (va, vb, median_ratio)
}

/// Median of a sorted slice: the mean of the two middle elements when the
/// length is even (the lower-middle shortcut biases an even-length gate
/// stream low — a real regression can hide in the skipped upper middle).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Nearest-rank percentile over sorted samples, `p` in [0, 1]: the value
/// at rank `⌈p·n⌉` (1-based, clamped). The previous `.round()` of
/// `(n-1)·p` sat *below* the nearest-rank definition for most `p`/`n`
/// combinations, understating tail latencies.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn entry(name: &str, sorted: &[u64], calibration_p50: u64) -> PerfEntry {
    let p50 = percentile(sorted, 0.50);
    PerfEntry {
        name: name.to_string(),
        p50_ns: p50,
        p99_ns: percentile(sorted, 0.99),
        normalized_p50: p50 as f64 / calibration_p50.max(1) as f64,
    }
}

/// Matmul shapes AMMA inference actually hits (history×feat × weight
/// matrices at the default and paper dimensions), plus a square shape.
const SHAPES: &[(usize, usize, usize)] = &[(9, 64, 64), (9, 128, 128), (9, 128, 256), (64, 64, 64)];

struct Knobs {
    kernel_samples: usize,
    kernel_inner: usize,
    infer_samples: usize,
    train_samples: usize,
    train_epochs: usize,
}

impl Knobs {
    fn new(quick: bool) -> Self {
        if quick {
            Knobs {
                kernel_samples: 150,
                kernel_inner: 4,
                infer_samples: 500,
                train_samples: 150,
                train_epochs: 1,
            }
        } else {
            Knobs {
                kernel_samples: 400,
                kernel_inner: 8,
                infer_samples: 2000,
                train_samples: 400,
                train_epochs: 2,
            }
        }
    }
}

/// Synthetic three-phase trace with the stride/page mix the predictors
/// train on elsewhere in the bench crate; deterministic and cheap.
fn perf_trace() -> Vec<MemRecord> {
    let mut v = Vec::new();
    let rec = |vaddr: u64, pc: u64, phase: u8, core: u8| MemRecord {
        pc,
        vaddr,
        core,
        is_write: false,
        phase,
        gap: 1,
        dep: false,
    };
    for rep in 0..3u64 {
        let mut a = (4 + rep) * 8192;
        for i in 0..300usize {
            v.push(rec(a, 0x400000 + (i as u64 % 3) * 4, 0, (i % 2) as u8));
            a += 64;
        }
        for i in 0..300usize {
            let page = [40u64, 80, 120][i % 3];
            v.push(rec(page * 4096 + (i % 60) as u64 * 64, 0x401000, 1, 0));
        }
        let mut b = 1u64 << 26;
        for i in 0..300usize {
            v.push(rec(b, 0x402000, 2, (i % 2) as u8));
            b += 4 * 64;
        }
    }
    v
}

fn kernel_pair(
    name: &str,
    (m, k, n): (usize, usize, usize),
    knobs: &Knobs,
    bt: bool,
) -> (KernelSpeedup, PerfEntry) {
    let mut r = rng(0x9E_5F);
    let a = Matrix::xavier(m, k, &mut r);
    // matmul_bt multiplies by the transpose, so its operand is (n, k).
    let b = if bt {
        Matrix::xavier(n, k, &mut r)
    } else {
        Matrix::xavier(k, n, &mut r)
    };
    let mut out = Matrix::zeros(m, n);
    // Tiled and reference samples interleave so their ratio — the gated
    // number — is immune to load drift across the measurement.
    let (tiled, reference, ratio) = sample_interleaved_ns(
        knobs.kernel_samples,
        knobs.kernel_inner,
        || {
            if bt {
                black_box(&a).matmul_bt_into(black_box(&b), &mut out);
            } else {
                black_box(&a).matmul_into(black_box(&b), &mut out);
            }
            black_box(&out);
        },
        || {
            let y = if bt {
                black_box(&a).matmul_bt_ref(black_box(&b))
            } else {
                black_box(&a).matmul_ref(black_box(&b))
            };
            black_box(&y);
        },
    );
    let ref_p50 = percentile(&reference, 0.50).max(1);
    let mut e = entry(name, &tiled, ref_p50);
    e.normalized_p50 = ratio;
    let speedup = KernelSpeedup {
        name: name.to_string(),
        tiled_p50_ns: e.p50_ns,
        ref_p50_ns: ref_p50,
        speedup: 1.0 / ratio.max(1e-12),
    };
    (speedup, e)
}

/// int8 kernel vs the **f32 tiled** kernel at the same shape. Unlike
/// [`kernel_pair`] the reference here is the fast f32 path, so the gated
/// normalized p50 is directly i8/f32 — the quantized serve path only pays
/// off when this sits well under 1.0 (the committed baseline pins it at
/// ≤ 2/3, i.e. ≥1.5× speedup).
fn kernel_pair_i8(
    name: &str,
    (m, k, n): (usize, usize, usize),
    knobs: &Knobs,
    widened: bool,
) -> (KernelSpeedup, PerfEntry) {
    use mpgraph_ml::quant::{matmul_i8_bt_into, matmul_i8w16_bt_into};
    let mut r = rng(0x18_5F);
    let fa = Matrix::xavier(m, k, &mut r);
    // Both rows use the bt orientation — weights (n, k), one output channel
    // per row — because that is the layout the quantized serve path runs
    // (`QuantizedLinear` stores weights transposed) and the one where
    // integer reassociation beats the order-pinned f32 dot.
    let fb = Matrix::xavier(n, k, &mut r);
    let mut fout = Matrix::zeros(m, n);
    let to_i8 = |m: &Matrix| -> Vec<i8> {
        m.data
            .iter()
            .map(|&v| (v * 127.0).clamp(-127.0, 127.0) as i8)
            .collect()
    };
    let qa = to_i8(&fa);
    let qb = to_i8(&fb);
    // The widened row measures the serve-path kernel proper: the weight
    // mirror is built once at load time (QuantizedLinear construction), so
    // it sits outside the timed region; the activation widening is inside.
    let qb16: Vec<i16> = qb.iter().map(|&v| v as i16).collect();
    let mut xw = vec![0i16; k];
    let mut qout = vec![0i32; m * n];
    let (quant, float_tiled, ratio) = sample_interleaved_ns(
        knobs.kernel_samples,
        knobs.kernel_inner,
        || {
            if widened {
                matmul_i8w16_bt_into(
                    black_box(&qa),
                    black_box(&qb16),
                    m,
                    k,
                    n,
                    &mut xw,
                    &mut qout,
                );
            } else {
                matmul_i8_bt_into(black_box(&qa), black_box(&qb), m, k, n, &mut qout);
            }
            black_box(&qout);
        },
        || {
            black_box(&fa).matmul_bt_into(black_box(&fb), &mut fout);
            black_box(&fout);
        },
    );
    let f32_p50 = percentile(&float_tiled, 0.50).max(1);
    let mut e = entry(name, &quant, f32_p50);
    e.normalized_p50 = ratio;
    let speedup = KernelSpeedup {
        name: name.to_string(),
        tiled_p50_ns: e.p50_ns,
        ref_p50_ns: f32_p50,
        speedup: 1.0 / ratio.max(1e-12),
    };
    (speedup, e)
}

/// Runs the full perf suite at the given scale.
pub fn run_perf(quick: bool) -> PerfReport {
    let knobs = Knobs::new(quick);

    let mut kernels = Vec::new();
    let mut gated = Vec::new();
    for &shape in SHAPES {
        let (m, k, n) = shape;
        let (sp, e) = kernel_pair(&format!("matmul_{m}x{k}x{n}"), shape, &knobs, false);
        kernels.push(sp);
        gated.push(e);
        let (sp, e) = kernel_pair(&format!("matmul_bt_{m}x{k}x{n}"), shape, &knobs, true);
        kernels.push(sp);
        gated.push(e);
        // int8 rows: gated against the f32 *tiled* bt kernel, so the ratio
        // is the real quantization payoff, not a naive-loop strawman.
        let (sp, e) = kernel_pair_i8(&format!("matmul_i8_bt_{m}x{k}x{n}"), shape, &knobs, false);
        kernels.push(sp);
        gated.push(e);
        let (sp, e) = kernel_pair_i8(&format!("matmul_i8w16_bt_{m}x{k}x{n}"), shape, &knobs, true);
        kernels.push(sp);
        gated.push(e);
    }

    // Warm-arena inference latency per backbone variant.
    let mut cals: Vec<u64> = Vec::new();
    let trace = perf_trace();
    let tc = TrainCfg {
        history: 9,
        max_samples: knobs.train_samples,
        epochs: knobs.train_epochs,
        lr: 3e-3,
        seed: 1234,
    };
    let cfg = DeltaPredictorConfig {
        amma: AmmaConfig::default(),
        ..DeltaPredictorConfig::default()
    };
    for variant in [Variant::Amma, Variant::AmmaPi, Variant::AmmaPs] {
        let dp = DeltaPredictor::train(&trace, 3, variant, cfg, &tc);
        let hist: Vec<(u64, u64)> = trace[..tc.history]
            .iter()
            .map(|rec| (rec.block(), rec.pc))
            .collect();
        let mut arena = ScratchArena::new();
        for _ in 0..4 {
            // Warm the arena free-lists so the timed region is the
            // allocation-free steady state.
            let _ = dp.predict_deltas_in(&hist, 0, 4, &mut arena);
        }
        // Interleave inference samples with the calibration kernel so the
        // gated ratio tracks the same load profile on both sides.
        let mut cr = rng(0xCA_11B);
        let ca = Matrix::xavier(64, 64, &mut cr);
        let cb = Matrix::xavier(64, 64, &mut cr);
        let mut phase = 0usize;
        let (sorted, cal_stream, ratio) = sample_interleaved_ns(
            knobs.infer_samples,
            1,
            || {
                phase = (phase + 1) % 3;
                let d = dp.predict_deltas_in(black_box(&hist), phase, 4, &mut arena);
                black_box(&d);
            },
            || {
                let y = black_box(&ca).matmul_ref(black_box(&cb));
                black_box(&y);
            },
        );
        let cal = percentile(&cal_stream, 0.50).max(1);
        cals.push(cal);
        let mut e = entry(&format!("infer_{}", variant.name()), &sorted, cal);
        e.normalized_p50 = ratio;
        gated.push(e);
    }

    // Parallel AMMA-PS training throughput: tokens = history window per
    // sample per epoch.
    let t = Instant::now();
    let dp = DeltaPredictor::train(&trace, 3, Variant::AmmaPs, cfg, &tc);
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    black_box(&dp.final_loss);
    let tokens = (tc.max_samples * tc.history * tc.epochs) as f64;

    // Fused (B×T×d) batched inference against B per-item calls — the
    // serve-pump kernel. Here the per-item side *is* the interleaved
    // reference, so the gated ratio is directly batched/per-item (want
    // well under 1.0, and the 15% gate holds whatever it measures).
    const FUSED_BATCH: usize = 16;
    let hists: Vec<Vec<(u64, u64)>> = (0..FUSED_BATCH)
        .map(|b| {
            trace[b..b + tc.history]
                .iter()
                .map(|rec| (rec.block(), rec.pc))
                .collect()
        })
        .collect();
    let refs: Vec<&[(u64, u64)]> = hists.iter().map(Vec::as_slice).collect();
    let mut fused_arena = ScratchArena::new();
    let mut solo_arena = ScratchArena::new();
    for _ in 0..4 {
        let _ = dp.predict_deltas_batch_in(&refs, 0, 4, &mut fused_arena);
        let _ = dp.predict_deltas_in(&hists[0], 0, 4, &mut solo_arena);
    }
    // Each closure advances its own phase counter; both are called once
    // per sample, so the two streams see identical phase sequences.
    let mut phase_a = 0usize;
    let mut phase_b = 0usize;
    let (sorted, per_item_stream, ratio) = sample_interleaved_ns(
        (knobs.infer_samples / 4).max(50),
        1,
        || {
            phase_a = (phase_a + 1) % 3;
            let d = dp.predict_deltas_batch_in(black_box(&refs), phase_a, 4, &mut fused_arena);
            black_box(&d);
        },
        || {
            phase_b = (phase_b + 1) % 3;
            for h in &refs {
                let d = dp.predict_deltas_in(black_box(h), phase_b, 4, &mut solo_arena);
                black_box(&d);
            }
        },
    );
    let per_item_p50 = percentile(&per_item_stream, 0.50).max(1);
    let mut e = entry(
        &format!(
            "infer_batched{FUSED_BATCH}_vs_per_item_{}",
            Variant::AmmaPs.name()
        ),
        &sorted,
        per_item_p50,
    );
    e.normalized_p50 = ratio;
    kernels.push(KernelSpeedup {
        name: e.name.clone(),
        tiled_p50_ns: e.p50_ns,
        ref_p50_ns: per_item_p50,
        speedup: 1.0 / ratio.max(1e-12),
    });
    gated.push(e);

    // Reported calibration: the median over the interleaved streams.
    cals.sort_unstable();
    let calibration_p50 = percentile(&cals, 0.50).max(1);

    let eq12 = amma_latency(&AmmaConfig::paper()).total;
    PerfReport {
        schema_version: 1,
        quick,
        calibration_p50_ns: calibration_p50,
        kernels,
        gated,
        train_tokens_per_sec: tokens / secs,
        eq12_paper_cycles: eq12,
        eq12_paper_ns: cycles_to_ns(eq12, ACCEL_GHZ),
    }
}

/// Runs the suite `passes` times and keeps, per gated entry, the
/// **slowest** normalized p50 (and per kernel the smallest speedup)
/// observed. Baselines are generated this way so a transiently quiet
/// machine cannot produce an unachievably tight envelope for later
/// checks to chase.
pub fn run_perf_envelope(quick: bool, passes: usize) -> PerfReport {
    let mut merged = run_perf(quick);
    for _ in 1..passes.max(1) {
        let next = run_perf(quick);
        for e in &mut merged.gated {
            if let Some(n) = next.gated.iter().find(|n| n.name == e.name) {
                if n.normalized_p50 > e.normalized_p50 {
                    e.normalized_p50 = n.normalized_p50;
                    e.p50_ns = n.p50_ns;
                    e.p99_ns = n.p99_ns;
                }
            }
        }
        for k in &mut merged.kernels {
            if let Some(n) = next.kernels.iter().find(|n| n.name == k.name) {
                if n.speedup < k.speedup {
                    *k = n.clone();
                }
            }
        }
        merged.train_tokens_per_sec = merged.train_tokens_per_sec.min(next.train_tokens_per_sec);
    }
    merged
}

/// Compares a run against the committed baseline: one message per gated
/// entry whose normalized p50 regressed by more than `tolerance`. Entries
/// present on only one side are reported (baseline refresh needed), never
/// silently skipped.
pub fn compare(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for b in &baseline.gated {
        match current.gated.iter().find(|c| c.name == b.name) {
            None => problems.push(format!(
                "{}: present in baseline but not measured by this run (refresh BENCH_kernels.json)",
                b.name
            )),
            Some(c) => {
                let limit = b.normalized_p50 * (1.0 + tolerance);
                if c.normalized_p50 > limit {
                    problems.push(format!(
                        "{}: normalized p50 {:.3} exceeds baseline {:.3} by more than {:.0}% \
                         (raw {} ns vs baseline {} ns)",
                        c.name,
                        c.normalized_p50,
                        b.normalized_p50,
                        tolerance * 100.0,
                        c.p50_ns,
                        b.p50_ns,
                    ));
                }
            }
        }
    }
    for c in &current.gated {
        if !baseline.gated.iter().any(|b| b.name == c.name) {
            problems.push(format!(
                "{}: measured by this run but missing from the baseline (refresh BENCH_kernels.json)",
                c.name
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(entries: &[(&str, f64)]) -> PerfReport {
        PerfReport {
            schema_version: 1,
            quick: true,
            calibration_p50_ns: 1000,
            kernels: Vec::new(),
            gated: entries
                .iter()
                .map(|(n, norm)| PerfEntry {
                    name: n.to_string(),
                    p50_ns: (norm * 1000.0) as u64,
                    p99_ns: (norm * 2000.0) as u64,
                    normalized_p50: *norm,
                })
                .collect(),
            train_tokens_per_sec: 0.0,
            eq12_paper_cycles: 0,
            eq12_paper_ns: 0.0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 50); // rank ⌈0.5·100⌉ = 50
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        // Odd length: p50 is the true middle.
        let odd: Vec<u64> = (1..=5).collect();
        assert_eq!(percentile(&odd, 0.5), 3);
        assert_eq!(percentile(&odd, 0.9), 5);
    }

    #[test]
    fn median_averages_even_middles() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 2.0]), 1.5);
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), 2.5);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = report_with(&[("a", 1.0), ("b", 2.0)]);
        let same = report_with(&[("a", 1.10), ("b", 2.0)]);
        assert!(compare(&base, &same, TOLERANCE).is_empty());
        let slow = report_with(&[("a", 1.20), ("b", 2.0)]);
        let problems = compare(&base, &slow, TOLERANCE);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].starts_with("a:"), "{problems:?}");
    }

    #[test]
    fn compare_reports_schema_drift_both_ways() {
        let base = report_with(&[("a", 1.0), ("gone", 1.0)]);
        let cur = report_with(&[("a", 1.0), ("new", 1.0)]);
        let problems = compare(&base, &cur, TOLERANCE);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let base = report_with(&[("a", 1.25)]);
        let text = serde_json::to_string_pretty(&base).expect("serialize");
        let back: PerfReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.gated.len(), 1);
        assert_eq!(back.gated[0].name, "a");
        assert_eq!(back.gated[0].p50_ns, base.gated[0].p50_ns);
        assert!((back.gated[0].normalized_p50 - 1.25).abs() < 1e-12);
    }

    /// End-to-end smoke at a tiny scale: the suite runs, gates are
    /// self-consistent, and a run never regresses against itself.
    #[test]
    fn quick_run_is_self_consistent() {
        let rep = run_perf(true);
        assert!(rep.calibration_p50_ns > 0);
        assert_eq!(rep.kernels.len(), 4 * SHAPES.len() + 1);
        assert_eq!(rep.gated.len(), 4 * SHAPES.len() + 4);
        // The int8 rows must actually be faster than the f32 tiled kernels
        // they are normalized against (the committed baseline pins the
        // envelope much tighter; >1.0 here keeps a noisy quick run honest).
        for k in rep.kernels.iter().filter(|k| k.name.contains("_i8")) {
            assert!(
                k.speedup > 1.0,
                "{} int8 slower than f32 tiled: {:.3}x",
                k.name,
                k.speedup
            );
        }
        let fused = rep
            .kernels
            .iter()
            .find(|k| k.name.starts_with("infer_batched"))
            .expect("batched-vs-per-item row missing");
        assert!(
            fused.speedup > 1.0,
            "batched inference slower than per-item: {:.3}x",
            fused.speedup
        );
        assert!(rep.train_tokens_per_sec > 0.0);
        assert!(rep.eq12_paper_cycles > 0);
        for e in &rep.gated {
            assert!(e.p50_ns > 0, "{} has zero p50", e.name);
            assert!(e.p99_ns >= e.p50_ns, "{} p99 below p50", e.name);
            assert!(e.normalized_p50 > 0.0);
        }
        assert!(compare(&rep, &rep, TOLERANCE).is_empty());
    }
}
