//! Table 4 and Figure 9: phase-transition detection quality.

use crate::scale::ExpScale;
use crate::workload::{build_workload, carrier};
use mpgraph_frameworks::{App, Framework};
use mpgraph_phase::{
    build_training_set, detection_lag, evaluate_transitions, ks_statistic, DecisionTree,
    DtDetector, Kswin, KswinConfig, SoftDtDetector, SoftKswin, TransitionDetector,
};
use serde::Serialize;

/// One Table 4 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    pub framework: String,
    /// "U" (unsupervised) or "S" (supervised), as in the table.
    pub train_mode: &'static str,
    pub detector: String,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Ground-truth transitions and PC stream of an evaluation trace.
struct DetectionTask {
    pcs: Vec<u64>,
    truths: Vec<usize>,
    num_phases: usize,
    /// Training slice for the supervised detectors.
    train_pcs: Vec<u64>,
    train_phases: Vec<u8>,
}

fn build_task(framework: Framework, scale: &ExpScale) -> DetectionTask {
    // The paper evaluates detection on the frameworks' traces; PR gives the
    // steadiest per-phase behaviour, so use it as the carrier app.
    let w = build_workload(framework, App::Pr, carrier(scale), scale);
    // Detectors run inside the prefetcher, observing the LLC stream.
    let pcs: Vec<u64> = w.test_llc.iter().map(|r| r.pc).collect();
    let phases: Vec<u8> = w.test_llc.iter().map(|r| r.phase).collect();
    let mut truths = Vec::new();
    for i in 1..phases.len() {
        if phases[i] != phases[i - 1] {
            truths.push(i);
        }
    }
    let _ = phases;
    DetectionTask {
        pcs,
        truths,
        num_phases: w.num_phases,
        train_pcs: w.train_llc.iter().map(|r| r.pc).collect(),
        train_phases: w.train_llc.iter().map(|r| r.phase).collect(),
    }
}

/// Tolerance: soft detectors legitimately lag by up to their confirmation
/// window; allow half a phase of slack (phases span thousands of accesses).
fn tolerances(task: &DetectionTask) -> (usize, usize) {
    let min_gap = task
        .truths
        .windows(2)
        .map(|w| w[1] - w[0])
        .min()
        .unwrap_or(1000)
        .max(64);
    (16, min_gap / 2)
}

fn run_detector(det: &mut dyn TransitionDetector, task: &DetectionTask) -> (f64, f64, f64) {
    let detections: Vec<usize> = task
        .pcs
        .iter()
        .enumerate()
        .filter_map(|(i, &pc)| det.update(pc).then_some(i))
        .collect();
    let (pre, post) = tolerances(task);
    let prf = evaluate_transitions(&detections, &task.truths, pre, post);
    (prf.precision, prf.recall, prf.f1)
}

/// Regenerates Table 4 for all three frameworks × four detectors.
pub fn run_table4(scale: &ExpScale) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for fw in Framework::ALL {
        let task = build_task(fw, scale);
        // --- Unsupervised.
        let kcfg = KswinConfig::default();
        let mut kswin = Kswin::new(kcfg);
        let (p, r, f1) = run_detector(&mut kswin, &task);
        rows.push(Table4Row {
            framework: fw.name().into(),
            train_mode: "U",
            detector: "KSWIN".into(),
            precision: p,
            recall: r,
            f1,
        });
        let mut soft = SoftKswin::new(kcfg);
        let (p, r, f1) = run_detector(&mut soft, &task);
        rows.push(Table4Row {
            framework: fw.name().into(),
            train_mode: "U",
            detector: "Soft-KSWIN".into(),
            precision: p,
            recall: r,
            f1,
        });
        // --- Supervised: tree trained offline on the labelled first
        // iteration.
        let window = 8;
        let (xs, ys) = build_training_set(&task.train_pcs, &task.train_phases, window, 7);
        let tree = DecisionTree::fit(&xs, &ys, task.num_phases, 8);
        let mut dt = DtDetector::new(tree.clone(), window);
        let (p, r, f1) = run_detector(&mut dt, &task);
        rows.push(Table4Row {
            framework: fw.name().into(),
            train_mode: "S",
            detector: "DT".into(),
            precision: p,
            recall: r,
            f1,
        });
        let mut soft_dt = SoftDtDetector::new(tree, window, 64);
        let (p, r, f1) = run_detector(&mut soft_dt, &task);
        rows.push(Table4Row {
            framework: fw.name().into(),
            train_mode: "S",
            detector: "Soft-DT".into(),
            precision: p,
            recall: r,
            f1,
        });
    }
    rows
}

/// Figure 9 case study: the K-S statistic timeline with KSWIN and
/// Soft-KSWIN detections on a GPOP PageRank PC stream.
#[derive(Debug, Clone, Serialize)]
pub struct Figure9Data {
    /// (index, K-S statistic) samples along the stream.
    pub ks_series: Vec<(usize, f64)>,
    pub threshold: f64,
    pub true_transitions: Vec<usize>,
    pub kswin_detections: Vec<usize>,
    pub soft_detections: Vec<usize>,
    pub kswin_false_positives: usize,
    pub soft_false_positives: usize,
    pub soft_mean_lag: f64,
}

pub fn run_figure9(scale: &ExpScale) -> Figure9Data {
    let task = build_task(Framework::Gpop, scale);
    let cfg = KswinConfig::default();
    // K-S statistic timeline (sampled every 16 accesses on a sliding pair
    // of windows, for the figure's top panel).
    let mut ks_series = Vec::new();
    let w = cfg.window;
    let r = cfg.recent;
    let mut i = w;
    while i < task.pcs.len() {
        let hist: Vec<f64> = task.pcs[i - w..i - r].iter().map(|&p| p as f64).collect();
        let recent: Vec<f64> = task.pcs[i - r..i].iter().map(|&p| p as f64).collect();
        ks_series.push((i, ks_statistic(&hist, &recent)));
        i += 16;
    }
    let mut kswin = Kswin::new(cfg);
    let kswin_detections: Vec<usize> = task
        .pcs
        .iter()
        .enumerate()
        .filter_map(|(i, &pc)| kswin.update(pc).then_some(i))
        .collect();
    let mut soft = SoftKswin::new(cfg);
    let soft_detections: Vec<usize> = task
        .pcs
        .iter()
        .enumerate()
        .filter_map(|(i, &pc)| soft.update(pc).then_some(i))
        .collect();
    let (pre, post) = tolerances(&task);
    let hard = evaluate_transitions(&kswin_detections, &task.truths, pre, post);
    let softp = evaluate_transitions(&soft_detections, &task.truths, pre, post);
    let kswin_fp =
        kswin_detections.len() - (hard.recall * task.truths.len() as f64).round() as usize;
    let soft_fp =
        soft_detections.len() - (softp.recall * task.truths.len() as f64).round() as usize;
    let (soft_mean_lag, _) = detection_lag(&soft_detections, &task.truths, post);
    Figure9Data {
        ks_series,
        threshold: mpgraph_phase::ks_threshold(cfg.alpha, cfg.recent, cfg.recent),
        true_transitions: task.truths.clone(),
        kswin_detections,
        soft_detections,
        kswin_false_positives: kswin_fp,
        soft_false_positives: soft_fp,
        soft_mean_lag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_and_recall() {
        let rows = run_table4(&ExpScale::quick());
        assert_eq!(rows.len(), 12); // 3 frameworks × 4 detectors
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.precision), "{row:?}");
            assert!((0.0..=1.0).contains(&row.recall), "{row:?}");
        }
        // The paper's headline: soft variants have strictly better
        // precision than their hard counterparts on average.
        let avg = |name: &str| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.detector == name)
                .map(|r| r.precision)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            avg("Soft-KSWIN") >= avg("KSWIN"),
            "soft-kswin {} < kswin {}",
            avg("Soft-KSWIN"),
            avg("KSWIN")
        );
        assert!(
            avg("Soft-DT") >= avg("DT"),
            "soft-dt {} < dt {}",
            avg("Soft-DT"),
            avg("DT")
        );
    }

    #[test]
    fn figure9_series_nonempty() {
        let data = run_figure9(&ExpScale::quick());
        assert!(!data.ks_series.is_empty());
        assert!(data.threshold > 0.0);
        assert!(!data.true_transitions.is_empty());
    }
}
