//! Tables 6 and 7: spatial delta prediction F1 and temporal page
//! prediction accuracy@10 for the five model variants over the twelve
//! (framework, application) cells.

use crate::scale::ExpScale;
use crate::workload::{all_cells, build_workload, carrier, Workload};
use mpgraph_core::{
    AmmaConfig, DeltaPredictor, DeltaPredictorConfig, PageHead, PagePredictor, PagePredictorConfig,
    Variant,
};
use rayon::prelude::*;
use serde::Serialize;

/// One cell of Table 6 or 7.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionCell {
    pub framework: String,
    pub app: String,
    pub variant: String,
    pub metric: f64,
}

/// Default model dimensions for the prediction sweeps (DESIGN.md §5 scale;
/// half of Table 5's widths).
pub fn sweep_amma() -> AmmaConfig {
    AmmaConfig::default()
}

fn delta_cfg() -> DeltaPredictorConfig {
    DeltaPredictorConfig {
        amma: sweep_amma(),
        ..DeltaPredictorConfig::default()
    }
}

fn page_cfg() -> PagePredictorConfig {
    PagePredictorConfig {
        amma: sweep_amma(),
        page_vocab: 1024,
        embed_dim: 16,
        head: PageHead::Softmax,
    }
}

/// Training budget for the prediction tables: the variant comparison needs
/// enough optimization for the architectures to separate from the
/// base-rate solution (underfit models all collapse onto the dominant
/// labels and tie).
fn table_train(scale: &ExpScale) -> mpgraph_prefetchers::TrainCfg {
    mpgraph_prefetchers::TrainCfg {
        max_samples: scale.train.max_samples * 2,
        epochs: scale.train.epochs.max(3),
        ..scale.train
    }
}

/// Table 6: F1 of delta prediction, every variant × cell.
pub fn run_table6(scale: &ExpScale) -> Vec<PredictionCell> {
    let cells = all_cells();
    cells
        .par_iter()
        .flat_map(|&(fw, app)| {
            let w = build_workload(fw, app, carrier(scale), scale);
            Variant::ALL
                .par_iter()
                .map(move |&variant| {
                    let model = DeltaPredictor::train(
                        &w.train_llc,
                        w.num_phases,
                        variant,
                        delta_cfg(),
                        &table_train(scale),
                    );
                    let prf = model.evaluate_f1(&w.test_llc, &scale.train, scale.eval_samples);
                    PredictionCell {
                        framework: fw.name().into(),
                        app: app.name().into(),
                        variant: variant.name().into(),
                        metric: prf.f1,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Table 7: accuracy@10 of page prediction, every variant × cell.
pub fn run_table7(scale: &ExpScale) -> Vec<PredictionCell> {
    let cells = all_cells();
    cells
        .par_iter()
        .flat_map(|&(fw, app)| {
            let w = build_workload(fw, app, carrier(scale), scale);
            Variant::ALL
                .par_iter()
                .map(move |&variant| {
                    let model = PagePredictor::train(
                        &w.train_llc,
                        w.num_phases,
                        variant,
                        page_cfg(),
                        &table_train(scale),
                    );
                    let acc = model.evaluate_accuracy_at(
                        &w.test_llc,
                        &scale.train,
                        10,
                        scale.eval_samples,
                    );
                    PredictionCell {
                        framework: fw.name().into(),
                        app: app.name().into(),
                        variant: variant.name().into(),
                        metric: acc,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Modality ablation (DESIGN.md extras): AMMA with both modalities vs the
/// address-only and PC-only variants, delta-prediction F1 on GPOP PR.
#[derive(Debug, Clone, Serialize)]
pub struct ModalityAblation {
    pub setting: String,
    pub f1: f64,
}

type RecordMutator = Box<dyn Fn(&mut Vec<mpgraph_frameworks::MemRecord>) + Sync>;

pub fn run_modality_ablation(scale: &ExpScale) -> Vec<ModalityAblation> {
    use mpgraph_frameworks::{App, Framework};
    let w = build_workload(Framework::Gpop, App::Pr, carrier(scale), scale);
    let settings: Vec<(&str, RecordMutator)> = vec![
        ("addr+pc", Box::new(|_recs: &mut Vec<_>| {})),
        (
            "addr-only",
            Box::new(|recs: &mut Vec<mpgraph_frameworks::MemRecord>| {
                for r in recs.iter_mut() {
                    r.pc = 0; // collapse the PC modality
                }
            }),
        ),
        (
            "pc-only",
            Box::new(|recs: &mut Vec<mpgraph_frameworks::MemRecord>| {
                // Collapse address information down to the page-offset only
                // pattern carrier (the model keeps PCs intact).
                for r in recs.iter_mut() {
                    r.vaddr &= 0xFFF;
                }
            }),
        ),
    ];
    settings
        .into_iter()
        .map(|(name, mutate)| {
            let mut train = w.train_llc.clone();
            let mut test = w.test_llc.clone();
            mutate(&mut train);
            // The label stream must stay intact: only inputs are ablated
            // for addr+pc/addr-only; pc-only also degrades labels, which is
            // the point (address info unavailable).
            if name == "pc-only" {
                mutate(&mut test);
            } else if name == "addr-only" {
                for r in test.iter_mut() {
                    r.pc = 0;
                }
            }
            let model = DeltaPredictor::train(
                &train,
                w.num_phases,
                Variant::AmmaPs,
                delta_cfg(),
                &scale.train,
            );
            let prf = model.evaluate_f1(&test, &scale.train, scale.eval_samples);
            ModalityAblation {
                setting: name.into(),
                f1: prf.f1,
            }
        })
        .collect()
}

/// Averages cells by variant (for summary assertions and EXPERIMENTS.md).
pub fn variant_means(cells: &[PredictionCell]) -> Vec<(String, f64)> {
    Variant::ALL
        .iter()
        .map(|v| {
            let vals: Vec<f64> = cells
                .iter()
                .filter(|c| c.variant == v.name())
                .map(|c| c.metric)
                .collect();
            (
                v.name().to_string(),
                vals.iter().sum::<f64>() / vals.len().max(1) as f64,
            )
        })
        .collect()
}

/// Convenience: run one cell only (used by tests and the quickstart docs).
pub fn run_one_cell_table6(
    fw: mpgraph_frameworks::Framework,
    app: mpgraph_frameworks::App,
    variant: Variant,
    scale: &ExpScale,
) -> (Workload, f64) {
    let w = build_workload(fw, app, carrier(scale), scale);
    let model = DeltaPredictor::train(
        &w.train_llc,
        w.num_phases,
        variant,
        delta_cfg(),
        &scale.train,
    );
    let prf = model.evaluate_f1(&w.test_llc, &scale.train, scale.eval_samples);
    (w, prf.f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_frameworks::{App, Framework};

    #[test]
    fn one_cell_runs_and_is_bounded() {
        let scale = ExpScale::quick();
        let (_, f1) = run_one_cell_table6(Framework::Gpop, App::Pr, Variant::Amma, &scale);
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn variant_means_cover_all_variants() {
        let cells = vec![
            PredictionCell {
                framework: "GPOP".into(),
                app: "PR".into(),
                variant: "AMMA".into(),
                metric: 0.5,
            },
            PredictionCell {
                framework: "GPOP".into(),
                app: "CC".into(),
                variant: "AMMA".into(),
                metric: 0.7,
            },
        ];
        let means = variant_means(&cells);
        assert_eq!(means.len(), 5);
        let amma = means.iter().find(|(n, _)| n == "AMMA").unwrap();
        assert!((amma.1 - 0.6).abs() < 1e-12);
    }
}
