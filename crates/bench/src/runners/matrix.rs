//! `mpgraph run --all` presentation and artifacts: the per-combo summary
//! table, the serializable row set (`results/matrix_all.json`), and the
//! merged-snapshot totals, all over [`crate::shard`]'s driver output.

use crate::report::{self, f, pct, print_table};
use crate::shard::MatrixResult;
use serde::Serialize;
use std::path::PathBuf;

/// One combo's summary row, serialized to `results/matrix_all.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixRow {
    pub framework: String,
    pub app: String,
    pub dataset: String,
    /// Evaluation records replayed for this combo.
    pub records: u64,
    pub base_ipc: f64,
    pub bo_ipc_improvement_pct: f64,
    pub mpgraph_ipc_improvement_pct: f64,
    pub accuracy: f64,
    pub coverage: f64,
}

/// Summary rows in canonical matrix order.
pub fn rows(m: &MatrixResult) -> Vec<MatrixRow> {
    m.combos
        .iter()
        .map(|c| MatrixRow {
            framework: c.combo.framework.name().into(),
            app: c.combo.app.name().into(),
            dataset: c.combo.dataset.name().into(),
            records: c.records,
            base_ipc: c.base.ipc(),
            bo_ipc_improvement_pct: c.bo.ipc_improvement(&c.base),
            mpgraph_ipc_improvement_pct: c.mpgraph.ipc_improvement(&c.base),
            accuracy: c.mpgraph.accuracy(),
            coverage: c.mpgraph.coverage(),
        })
        .collect()
}

/// Prints the per-combo table and the merged-snapshot totals.
pub fn print_summary(m: &MatrixResult) {
    let table: Vec<Vec<String>> = rows(m)
        .iter()
        .map(|r| {
            vec![
                r.framework.clone(),
                r.app.clone(),
                r.dataset.clone(),
                r.records.to_string(),
                f(r.base_ipc, 3),
                format!("{:+.2}%", r.bo_ipc_improvement_pct),
                format!("{:+.2}%", r.mpgraph_ipc_improvement_pct),
                pct(r.accuracy),
                pct(r.coverage),
            ]
        })
        .collect();
    print_table(
        "Full matrix (framework x app x dataset)",
        &[
            "framework",
            "app",
            "dataset",
            "records",
            "base ipc",
            "BO impv",
            "MPGraph impv",
            "acc",
            "cov",
        ],
        &table,
    );
    let s = &m.merged;
    println!(
        "\nmerged: {} combos  issued {}  useful {}  acc {}  cov {}  windows {}",
        m.combos.len(),
        s.issued,
        s.useful,
        pct(s.accuracy),
        pct(s.coverage),
        s.windows.len()
    );
}

/// Dumps the summary rows to `results/matrix_all.json`.
pub fn dump_rows(m: &MatrixResult) -> std::io::Result<PathBuf> {
    report::dump_json("matrix_all", &rows(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExpScale;
    use crate::shard::run_matrix_segmented;

    #[test]
    fn rows_follow_canonical_order_and_print() {
        // Tiny scale: enough records for one training iteration plus a
        // short evaluation stream per combo.
        let scale = ExpScale {
            record_limit: 24_000,
            eval_records: 8_000,
            ..ExpScale::quick()
        };
        let m = run_matrix_segmented(&scale, 2, 3_000);
        let rs = rows(&m);
        assert_eq!(rs.len(), 12);
        assert_eq!(rs[0].framework, "GPOP");
        for r in &rs {
            assert!(r.records > 0, "{}/{} replayed nothing", r.framework, r.app);
            assert!((0.0..=1.0).contains(&r.accuracy));
            assert!((0.0..=1.0).contains(&r.coverage));
        }
        // Merged counters cover every combo.
        let issued: u64 = m.combos.iter().map(|c| c.snapshot.issued).sum();
        assert_eq!(m.merged.issued, issued);
        print_summary(&m);
    }
}
