//! # mpgraph-prefetchers
//!
//! The paper's baseline prefetchers (§5.4.1), all implementing
//! [`mpgraph_sim::Prefetcher`]:
//!
//! * rule-based — [`BestOffset`] (BO, Michaud 2016) and [`Isb`] (Irregular
//!   Stream Buffer, Jain & Lin 2013), plus [`NextLine`]/[`Stride`] sanity
//!   floors;
//! * ML-based — [`DeltaLstm`] (Hashemi et al. 2018), [`Voyager`] (Shi et
//!   al. 2021), and [`TransFetch`] (Zhang et al. 2022), each trained
//!   offline on the first trace iteration and deployed online, exactly as
//!   the paper's workflow (Figure 6) prescribes.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod best_offset;
pub mod delta_lstm;
pub mod isb;
pub mod mlcommon;
pub mod simple;
pub mod transfetch;
pub mod voyager;

pub use best_offset::{BestOffset, BoConfig};
pub use delta_lstm::{DeltaLstm, DeltaLstmConfig, TrainCfg};
pub use isb::{Isb, IsbConfig};
pub use mlcommon::{DeltaVocab, History, PageVocab};
pub use simple::{NextLine, Stride};
pub use transfetch::{TransFetch, TransFetchConfig};
pub use voyager::{Voyager, VoyagerConfig};
