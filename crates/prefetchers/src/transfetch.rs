//! TransFetch (Zhang et al., CF 2022): an attention-based prefetcher with
//! fine-grained address segmentation input and a multi-label delta-bitmap
//! output covering a spatial range — the state-of-the-art ML baseline the
//! paper reports highest accuracy (but lower coverage) for.

use crate::delta_lstm::TrainCfg;
use crate::mlcommon::{pc_feature, segment_block, History};
use mpgraph_frameworks::MemRecord;
use mpgraph_ml::layers::{Linear, Module, Sigmoid};
use mpgraph_ml::loss::bce_with_logits;
use mpgraph_ml::metrics::top_k_indices;
use mpgraph_ml::optim::Adam;
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_ml::transformer::TransformerLayer;
use mpgraph_sim::{LlcAccess, Prefetcher};

/// TransFetch model dimensions.
#[derive(Debug, Clone, Copy)]
pub struct TransFetchConfig {
    /// Address segments per block address (4-bit nibbles).
    pub segments: usize,
    /// Model width.
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    /// Delta range: labels cover [-delta_range, +delta_range] \ {0}.
    pub delta_range: i64,
    /// Future window F whose deltas form the training bitmap.
    pub look_forward: usize,
    pub degree: usize,
    pub latency: u64,
    /// Classification threshold on the sigmoid output.
    pub threshold: f32,
}

impl Default for TransFetchConfig {
    fn default() -> Self {
        TransFetchConfig {
            segments: 9,
            dim: 32,
            heads: 4,
            layers: 2,
            delta_range: 63,
            look_forward: 16,
            degree: 6,
            latency: 0,
            threshold: 0.5,
        }
    }
}

impl TransFetchConfig {
    /// Output bitmap width: 2 × delta_range (delta 0 excluded).
    pub fn num_labels(&self) -> usize {
        2 * self.delta_range as usize
    }

    /// Bitmap index of `delta` (None when out of range or 0).
    pub fn label_of(&self, delta: i64) -> Option<usize> {
        if delta == 0 || delta.abs() > self.delta_range {
            return None;
        }
        Some(if delta > 0 {
            (self.delta_range + delta - 1) as usize
        } else {
            (self.delta_range + delta) as usize
        })
    }

    /// Inverse of [`Self::label_of`].
    pub fn delta_of(&self, label: usize) -> i64 {
        let l = label as i64;
        if l >= self.delta_range {
            l - self.delta_range + 1
        } else {
            l - self.delta_range
        }
    }
}

/// The trained TransFetch prefetcher.
pub struct TransFetch {
    cfg: TransFetchConfig,
    embed: Linear,
    blocks: Vec<TransformerLayer>,
    head: Linear,
    hist: History<(u64, u64)>, // (block, pc)
    pub final_loss: f32,
}

impl TransFetch {
    fn encode(cfg: &TransFetchConfig, hist: &[(u64, u64)]) -> Matrix {
        let feat_dim = cfg.segments + 1;
        let mut x = Matrix::zeros(hist.len(), feat_dim);
        for (i, &(block, pc)) in hist.iter().enumerate() {
            let segs = segment_block(block, cfg.segments);
            x.row_mut(i)[..cfg.segments].copy_from_slice(&segs);
            x.row_mut(i)[cfg.segments] = pc_feature(pc);
        }
        x
    }

    fn forward_logits(
        embed: &mut Linear,
        blocks: &mut [TransformerLayer],
        head: &mut Linear,
        x: &Matrix,
    ) -> Matrix {
        let mut h = embed.forward(x);
        for b in blocks.iter_mut() {
            h = b.forward(&h);
        }
        // Mean-pool over the sequence.
        let mut pooled = Matrix::zeros(1, h.cols);
        for r in 0..h.rows {
            for c in 0..h.cols {
                pooled.data[c] += h.at(r, c) / h.rows as f32;
            }
        }
        head.forward(&pooled)
    }

    fn infer_logits(&self, hist: &[(u64, u64)]) -> Matrix {
        let x = Self::encode(&self.cfg, hist);
        let mut h = self.embed.infer(&x);
        for b in &self.blocks {
            h = b.infer(&h);
        }
        let mut pooled = Matrix::zeros(1, h.cols);
        for r in 0..h.rows {
            for c in 0..h.cols {
                pooled.data[c] += h.at(r, c) / h.rows as f32;
            }
        }
        self.head.infer(&pooled)
    }

    pub fn train(records: &[MemRecord], cfg: TransFetchConfig, tc: &TrainCfg) -> Self {
        let mut r = rng(tc.seed ^ 0x7F47C4);
        let mut embed = Linear::new(cfg.segments + 1, cfg.dim, &mut r);
        let mut blocks: Vec<TransformerLayer> = (0..cfg.layers)
            .map(|_| TransformerLayer::new(cfg.dim, cfg.heads, &mut r))
            .collect();
        let mut head = Linear::new(cfg.dim, cfg.num_labels(), &mut r);
        let mut opt = Adam::new(tc.lr);

        let t = tc.history;
        let usable = records.len().saturating_sub(t + cfg.look_forward);
        let stride = (usable / tc.max_samples.max(1)).max(1);
        let mut final_loss = 0.0f32;
        for _ in 0..tc.epochs {
            let mut i = 0usize;
            let mut count = 0usize;
            let mut loss_sum = 0.0f32;
            while i + t + cfg.look_forward < records.len() && count < tc.max_samples {
                let hist: Vec<(u64, u64)> = records[i..i + t]
                    .iter()
                    .map(|rec| (rec.block(), rec.pc))
                    .collect();
                let cur = records[i + t - 1].block() as i64;
                let mut target = Matrix::zeros(1, cfg.num_labels());
                for fut in &records[i + t..i + t + cfg.look_forward] {
                    if let Some(l) = cfg.label_of(fut.block() as i64 - cur) {
                        target.data[l] = 1.0;
                    }
                }
                let x = Self::encode(&cfg, &hist);
                let logits = Self::forward_logits(&mut embed, &mut blocks, &mut head, &x);
                let (loss, dl) = bce_with_logits(&logits, &target);
                loss_sum += loss;
                // Backward through head, pooling, transformer stack, embed.
                let d_pooled = head.backward(&dl);
                let rows = t;
                let mut dh = Matrix::zeros(rows, cfg.dim);
                for rr in 0..rows {
                    for c in 0..cfg.dim {
                        dh.data[rr * cfg.dim + c] = d_pooled.data[c] / rows as f32;
                    }
                }
                for b in blocks.iter_mut().rev() {
                    dh = b.backward(&dh);
                }
                let _ = embed.backward(&dh);
                opt.step(&mut embed);
                for b in blocks.iter_mut() {
                    opt.step(b);
                }
                opt.step(&mut head);
                i += stride;
                count += 1;
            }
            final_loss = if count > 0 {
                loss_sum / count as f32
            } else {
                f32::NAN
            };
        }
        TransFetch {
            hist: History::new(tc.history),
            cfg,
            embed,
            blocks,
            head,
            final_loss,
        }
    }

    /// Predicted deltas, strongest first, up to `k`, above threshold.
    pub fn predict_deltas(&self, hist: &[(u64, u64)], k: usize) -> Vec<i64> {
        let logits = self.infer_logits(hist);
        let probs = Sigmoid::infer(&logits);
        top_k_indices(probs.row(0), k)
            .into_iter()
            .filter(|&i| probs.data[i] >= self.cfg.threshold)
            .map(|i| self.cfg.delta_of(i))
            .collect()
    }

    pub fn num_params(&mut self) -> usize {
        let mut n = self.embed.num_params() + self.head.num_params();
        for b in &mut self.blocks {
            n += b.num_params();
        }
        n
    }
}

impl Prefetcher for TransFetch {
    fn name(&self) -> String {
        "TransFetch".into()
    }

    fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        self.hist.push((a.block, a.pc));
        if !self.hist.is_full() {
            return;
        }
        for d in self.predict_deltas(self.hist.items(), self.cfg.degree) {
            let t = a.block as i64 + d;
            if t >= 0 {
                out.push(t as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vaddr: u64, pc: u64) -> MemRecord {
        MemRecord {
            pc,
            vaddr,
            core: 0,
            is_write: false,
            phase: 0,
            gap: 1,
            dep: false,
        }
    }

    fn stride_trace(n: usize) -> Vec<MemRecord> {
        // Two interleaved strided streams under two PCs: +2 and +5 blocks.
        let mut v = Vec::new();
        for i in 0..n as u64 {
            v.push(rec((1 << 20) + i * 2 * 64, 0x400000));
            v.push(rec((1 << 24) + i * 5 * 64, 0x400100));
        }
        v
    }

    fn quick_cfg() -> (TransFetchConfig, TrainCfg) {
        (
            TransFetchConfig {
                segments: 6,
                dim: 16,
                heads: 2,
                layers: 1,
                delta_range: 15,
                look_forward: 8,
                degree: 3,
                latency: 0,
                threshold: 0.3,
            },
            TrainCfg {
                history: 6,
                max_samples: 300,
                epochs: 5,
                lr: 3e-3,
                seed: 3,
            },
        )
    }

    #[test]
    fn label_mapping_is_a_bijection() {
        let cfg = TransFetchConfig::default();
        for d in (-cfg.delta_range..=cfg.delta_range).filter(|&d| d != 0) {
            let l = cfg.label_of(d).unwrap();
            assert!(l < cfg.num_labels());
            assert_eq!(cfg.delta_of(l), d);
        }
        assert_eq!(cfg.label_of(0), None);
        assert_eq!(cfg.label_of(cfg.delta_range + 1), None);
    }

    #[test]
    fn learns_interleaved_strides() {
        let trace = stride_trace(400);
        let (cfg, tc) = quick_cfg();
        let model = TransFetch::train(&trace, cfg, &tc);
        assert!(model.final_loss < 0.3, "loss {}", model.final_loss);
        // From a history ending in the +2 stream, predicted deltas should
        // include small positive values consistent with the interleaving
        // (+2 for self, +5-ish for the other stream re-interleaved, etc.).
        let hist: Vec<(u64, u64)> = trace[100..106].iter().map(|r| (r.block(), r.pc)).collect();
        let deltas = model.predict_deltas(&hist, 3);
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|&d| d != 0 && d.abs() <= 15));
    }

    #[test]
    fn online_interface_respects_degree() {
        let trace = stride_trace(300);
        let (cfg, tc) = quick_cfg();
        let mut model = TransFetch::train(&trace, cfg, &tc);
        let mut out = Vec::new();
        for r in &trace[..50] {
            out.clear();
            model.on_access(
                &LlcAccess {
                    pc: r.pc,
                    block: r.block(),
                    core: 0,
                    is_write: false,
                    hit: false,
                    cycle: 0,
                },
                &mut out,
            );
            assert!(out.len() <= 3);
        }
    }

    #[test]
    fn param_count_reported() {
        let trace = stride_trace(100);
        let (cfg, tc) = quick_cfg();
        let mut model = TransFetch::train(&trace, cfg, &tc);
        assert!(model.num_params() > 500);
    }
}
