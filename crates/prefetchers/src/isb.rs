//! Irregular Stream Buffer (Jain & Lin, MICRO 2013): a temporal prefetcher
//! that linearizes irregular per-PC access streams into a *structural*
//! address space, then prefetches sequential structural neighbors.
//!
//! The paper uses ISB as its rule-based temporal baseline and observes that
//! "record and replay cannot work well on multi-core executions" — the
//! interleaved LLC stream breaks the recorded correlations, which is
//! exactly the behaviour this implementation exhibits on our traces.

use mpgraph_sim::{LlcAccess, Prefetcher};
use std::collections::HashMap;

/// Structural stream granule: each new stream reserves this many slots.
const STREAM_REGION: u64 = 16;

/// ISB configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsbConfig {
    /// Prefetch degree (structural successors fetched per trigger).
    pub degree: usize,
    /// Capacity of the PS/SP maps (entries); bounds the on-chip metadata
    /// the real design stores off-chip.
    pub capacity: usize,
}

impl Default for IsbConfig {
    fn default() -> Self {
        IsbConfig {
            degree: 6,
            capacity: 64 * 1024,
        }
    }
}

/// The ISB prefetcher.
pub struct Isb {
    cfg: IsbConfig,
    /// Physical → structural address.
    ps: HashMap<u64, u64>,
    /// Structural → physical address.
    sp: HashMap<u64, u64>,
    /// Per-PC training unit: last block observed for that PC.
    training: HashMap<u64, u64>,
    /// Next unallocated structural region.
    next_stream: u64,
}

impl Isb {
    pub fn new(cfg: IsbConfig) -> Self {
        Isb {
            cfg,
            ps: HashMap::new(),
            sp: HashMap::new(),
            training: HashMap::new(),
            next_stream: 0,
        }
    }

    fn assign(&mut self, block: u64, structural: u64) {
        if self.ps.len() >= self.cfg.capacity {
            // Metadata full: drop everything (coarse model of the finite
            // off-chip store being recycled).
            self.ps.clear();
            self.sp.clear();
        }
        self.ps.insert(block, structural);
        self.sp.insert(structural, block);
    }

    /// Number of structural mappings (test introspection).
    pub fn mapped(&self) -> usize {
        self.ps.len()
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> String {
        "ISB".into()
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        // --- Train: link the previous block of this PC to the current one.
        if let Some(&prev) = self.training.get(&a.pc) {
            if prev != a.block {
                let prev_s = match self.ps.get(&prev) {
                    Some(&s) => s,
                    None => {
                        let s = self.next_stream;
                        self.next_stream += STREAM_REGION;
                        self.assign(prev, s);
                        s
                    }
                };
                // Place the current block right after prev in structural
                // space unless it already has a home.
                if !self.ps.contains_key(&a.block) {
                    let slot = prev_s + 1;
                    // Start a fresh stream when the region is exhausted or
                    // the slot is taken by a different block.
                    if slot % STREAM_REGION == 0 || self.sp.contains_key(&slot) {
                        let s = self.next_stream;
                        self.next_stream += STREAM_REGION;
                        self.assign(a.block, s);
                    } else {
                        self.assign(a.block, slot);
                    }
                }
            }
        }
        self.training.insert(a.pc, a.block);

        // --- Predict: structural successors of the current block.
        if let Some(&s) = self.ps.get(&a.block) {
            for k in 1..=self.cfg.degree as u64 {
                if let Some(&phys) = self.sp.get(&(s + k)) {
                    out.push(phys);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, block: u64) -> LlcAccess {
        LlcAccess {
            pc,
            block,
            core: 0,
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn replays_a_recorded_irregular_stream() {
        let mut isb = Isb::new(IsbConfig::default());
        let stream = [100u64, 7, 923, 55, 1000, 42];
        let mut out = Vec::new();
        // Record the stream twice under one PC.
        for _ in 0..2 {
            for &b in &stream {
                out.clear();
                isb.on_access(&access(1, b), &mut out);
            }
        }
        // Now accessing the head should prefetch the successors.
        out.clear();
        isb.on_access(&access(1, 100), &mut out);
        assert!(out.contains(&7), "out {out:?}");
        assert!(out.contains(&923), "out {out:?}");
    }

    #[test]
    fn different_pcs_form_different_streams() {
        let mut isb = Isb::new(IsbConfig::default());
        let mut out = Vec::new();
        // PC 1 sees A,B; PC 2 sees A,C interleaved.
        for _ in 0..2 {
            isb.on_access(&access(1, 10), &mut out);
            isb.on_access(&access(2, 10), &mut out);
            isb.on_access(&access(1, 20), &mut out);
            isb.on_access(&access(2, 30), &mut out);
        }
        out.clear();
        isb.on_access(&access(1, 10), &mut out);
        // The PC-1 stream must predict 20 (its own successor); whether 30
        // sneaks in depends on structural layout, but 20 must be there.
        assert!(out.contains(&20), "out {out:?}");
    }

    #[test]
    fn unseen_block_prefetches_nothing() {
        let mut isb = Isb::new(IsbConfig::default());
        let mut out = Vec::new();
        isb.on_access(&access(1, 999), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn capacity_bound_is_respected() {
        let mut isb = Isb::new(IsbConfig {
            capacity: 128,
            ..IsbConfig::default()
        });
        let mut out = Vec::new();
        for i in 0..10_000u64 {
            isb.on_access(&access(1, i * 17 % 7919), &mut out);
            out.clear();
        }
        assert!(isb.mapped() <= 128 + 1);
    }

    #[test]
    fn interleaving_degrades_replay() {
        // The paper's observation: multi-core interleaving breaks record-
        // and-replay. Train two distinct streams under the SAME PC (as an
        // interleaved trace presents them) and check the recorded
        // correlations are polluted: predictions for stream-A blocks
        // include stream-B blocks.
        let mut isb = Isb::new(IsbConfig::default());
        let a = [100u64, 101, 102, 103];
        let b = [900u64, 901, 902, 903];
        let mut out = Vec::new();
        for i in 0..4 {
            isb.on_access(&access(1, a[i]), &mut out);
            isb.on_access(&access(1, b[i]), &mut out);
        }
        out.clear();
        isb.on_access(&access(1, 100), &mut out);
        // Successor of 100 in the interleaved record is 900 — a wrong
        // (cross-stream) correlation.
        assert!(out.contains(&900), "out {out:?}");
    }
}
