//! Delta-LSTM prefetcher (Hashemi et al., "Learning Memory Access
//! Patterns", 2018): an embedding-LSTM-softmax model over the block-delta
//! stream. Trained offline on the first iteration of the trace, then run
//! online as an LLC prefetcher — the weakest ML baseline of Figures 10-12.

use crate::mlcommon::{DeltaVocab, History};
use mpgraph_frameworks::MemRecord;
use mpgraph_ml::layers::{Embedding, Linear, Module};
use mpgraph_ml::loss::softmax_cross_entropy;
use mpgraph_ml::lstm::Lstm;
use mpgraph_ml::optim::Adam;
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_sim::{LlcAccess, Prefetcher};

/// Shared training hyper-parameters for all ML prefetchers in this crate.
#[derive(Debug, Clone, Copy)]
pub struct TrainCfg {
    /// History length T (paper: 9).
    pub history: usize,
    /// Max training samples drawn from the trace.
    pub max_samples: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for TrainCfg {
    fn default() -> Self {
        TrainCfg {
            history: 9,
            max_samples: 4000,
            epochs: 3,
            lr: 2e-3,
            seed: 42,
        }
    }
}

/// Model dimensions. The paper's Delta-LSTM uses hidden 256; we default to
/// 64 to keep full-matrix CPU training inside the experiment time budget
/// (documented scaling in DESIGN.md §5) — capacity ordering between the
/// baselines is preserved.
#[derive(Debug, Clone, Copy)]
pub struct DeltaLstmConfig {
    pub vocab: usize,
    pub embed_dim: usize,
    pub hidden: usize,
    pub degree: usize,
    /// Model-inference latency injected by the simulator (Eq. 12 scale).
    pub latency: u64,
    /// Minimum softmax probability for a delta to be prefetched; gates the
    /// low-confidence tail that would otherwise pollute the cache.
    pub threshold: f32,
}

impl Default for DeltaLstmConfig {
    fn default() -> Self {
        DeltaLstmConfig {
            vocab: 129,
            embed_dim: 16,
            hidden: 64,
            degree: 6,
            latency: 0,
            threshold: 0.10,
        }
    }
}

/// The trained Delta-LSTM prefetcher.
pub struct DeltaLstm {
    cfg: DeltaLstmConfig,
    vocab: DeltaVocab,
    embed: Embedding,
    lstm: Lstm,
    head: Linear,
    hist: History<usize>,
    last_block: Option<u64>,
    /// Final training loss, for tests/reporting.
    pub final_loss: f32,
}

impl DeltaLstm {
    /// Trains on `records` (typically the first framework iteration).
    pub fn train(records: &[MemRecord], cfg: DeltaLstmConfig, tc: &TrainCfg) -> Self {
        let vocab = DeltaVocab::build(records, cfg.vocab);
        let mut r = rng(tc.seed);
        let mut embed = Embedding::new(cfg.vocab, cfg.embed_dim, &mut r);
        let mut lstm = Lstm::new(cfg.embed_dim, cfg.hidden, &mut r);
        let mut head = Linear::new(cfg.hidden, cfg.vocab, &mut r);
        let mut opt = Adam::new(tc.lr);

        // Delta-class stream.
        let deltas: Vec<usize> = records
            .windows(2)
            .map(|w| vocab.class_of(w[1].block() as i64 - w[0].block() as i64))
            .collect();
        let t = tc.history;
        let usable = deltas.len().saturating_sub(t + 1);
        let stride = (usable / tc.max_samples.max(1)).max(1);
        let mut final_loss = 0.0;
        for _epoch in 0..tc.epochs {
            let mut i = 0;
            let mut count = 0usize;
            let mut loss_sum = 0.0f32;
            while i + t < deltas.len() && count < tc.max_samples {
                let hist = &deltas[i..i + t];
                let target = deltas[i + t];
                let x = embed.forward(hist);
                let h = lstm.forward(&x);
                let last = Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec());
                let logits = head.forward(&last);
                let (loss, dlogits) = softmax_cross_entropy(&logits, &[target]);
                loss_sum += loss;
                let dlast = head.backward(&dlogits);
                let mut dh = Matrix::zeros(h.rows, h.cols);
                dh.row_mut(h.rows - 1).copy_from_slice(dlast.row(0));
                let dx = lstm.backward(&dh);
                embed.backward(&dx);
                opt.step(&mut embed);
                opt.step(&mut lstm);
                opt.step(&mut head);
                i += stride;
                count += 1;
            }
            final_loss = if count > 0 {
                loss_sum / count as f32
            } else {
                f32::NAN
            };
        }
        DeltaLstm {
            hist: History::new(cfg.history_len(tc)),
            cfg,
            vocab,
            embed,
            lstm,
            head,
            last_block: None,
            final_loss,
        }
    }

    /// Predicted top-`k` delta classes (with softmax probability above the
    /// confidence threshold) for a delta-class history.
    fn predict(&self, hist: &[usize], k: usize) -> Vec<usize> {
        let x = self.embed.infer(hist);
        let h = self.lstm.infer(&x);
        let last = Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec());
        let probs = self.head.infer(&last).softmax_rows();
        mpgraph_ml::metrics::top_k_indices(probs.row(0), k)
            .into_iter()
            .filter(|&c| probs.data[c] >= self.cfg_threshold())
            .collect()
    }

    #[inline]
    fn cfg_threshold(&self) -> f32 {
        self.cfg.threshold
    }

    /// Total trainable parameters (Table 8).
    pub fn num_params(&mut self) -> usize {
        self.embed.num_params() + self.lstm.num_params() + self.head.num_params()
    }
}

impl DeltaLstmConfig {
    fn history_len(&self, tc: &TrainCfg) -> usize {
        tc.history
    }
}

impl Prefetcher for DeltaLstm {
    fn name(&self) -> String {
        "Delta-LSTM".into()
    }

    fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        if let Some(prev) = self.last_block {
            let d = a.block as i64 - prev as i64;
            self.hist.push(self.vocab.class_of(d));
        }
        self.last_block = Some(a.block);
        if !self.hist.is_full() {
            return;
        }
        // Top classes, skipping the OOV bucket; chain the best delta to
        // reach the requested degree.
        let picks = self.predict(self.hist.items(), self.cfg.degree + 1);
        let mut issued = 0usize;
        for &cls in &picks {
            let Some(delta) = self.vocab.delta_of(cls) else {
                continue;
            };
            let t = a.block as i64 + delta;
            if t >= 0 {
                out.push(t as u64);
                issued += 1;
            }
            if issued >= self.cfg.degree {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vaddr: u64) -> MemRecord {
        MemRecord {
            pc: 0x400000,
            vaddr,
            core: 0,
            is_write: false,
            phase: 0,
            gap: 1,
            dep: false,
        }
    }

    /// Repeating delta pattern +1, +1, +3 (blocks).
    fn patterned_trace(n: usize) -> Vec<MemRecord> {
        let mut addr = 1 << 20;
        let mut v = vec![rec(addr)];
        for i in 0..n {
            let d = [1i64, 1, 3][i % 3];
            addr = (addr as i64 + d * 64) as u64;
            v.push(rec(addr));
        }
        v
    }

    fn quick_cfg() -> (DeltaLstmConfig, TrainCfg) {
        (
            DeltaLstmConfig {
                vocab: 17,
                embed_dim: 8,
                hidden: 16,
                degree: 2,
                latency: 0,
                threshold: 0.05,
            },
            TrainCfg {
                history: 6,
                max_samples: 400,
                epochs: 4,
                lr: 5e-3,
                seed: 1,
            },
        )
    }

    #[test]
    fn learns_a_repeating_delta_pattern() {
        let trace = patterned_trace(600);
        let (cfg, tc) = quick_cfg();
        let model = DeltaLstm::train(&trace, cfg, &tc);
        assert!(model.final_loss < 0.5, "loss {}", model.final_loss);
        // Predict from a known history: after deltas [...,1,1,3,1,1] the
        // next delta is 3 (pattern position).
        let v = &model.vocab;
        let hist: Vec<usize> = [3i64, 1, 1, 3, 1, 1]
            .iter()
            .map(|&d| v.class_of(d))
            .collect();
        let picks = model.predict(&hist, 1);
        assert_eq!(v.delta_of(picks[0]), Some(3));
    }

    #[test]
    fn prefetches_follow_prediction() {
        let trace = patterned_trace(600);
        let (cfg, tc) = quick_cfg();
        let mut model = DeltaLstm::train(&trace, cfg, &tc);
        let mut out = Vec::new();
        // Replay part of the trace through the online interface.
        for r in &trace[..40] {
            out.clear();
            model.on_access(
                &LlcAccess {
                    pc: r.pc,
                    block: r.block(),
                    core: 0,
                    is_write: false,
                    hit: false,
                    cycle: 0,
                },
                &mut out,
            );
        }
        assert!(!out.is_empty());
        assert!(out.len() <= 2);
        // Predictions are near the current block (deltas are small).
        let cur = trace[39].block();
        assert!(out.iter().all(|&b| (b as i64 - cur as i64).abs() <= 16));
    }

    #[test]
    fn param_count_positive_and_reported() {
        let trace = patterned_trace(200);
        let (cfg, tc) = quick_cfg();
        let mut model = DeltaLstm::train(&trace, cfg, &tc);
        // embedding 17×8 + lstm (8×64 + 16×64 + 64) + head (16×17 + 17)
        assert_eq!(
            model.num_params(),
            17 * 8 + (8 * 64 + 16 * 64 + 64) + (16 * 17 + 17)
        );
    }
}
