//! Shared plumbing for the ML-based prefetchers: delta and page
//! vocabularies built from the training trace, sliding history windows, and
//! feature encoders reused by Delta-LSTM, Voyager, TransFetch, and MPGraph.

use mpgraph_frameworks::MemRecord;
use std::collections::HashMap;

/// Maps block-address deltas to dense class ids. Class 0 is the
/// out-of-vocabulary bucket; the rest are the most frequent training deltas.
#[derive(Debug, Clone)]
pub struct DeltaVocab {
    to_class: HashMap<i64, usize>,
    classes: Vec<i64>,
}

impl DeltaVocab {
    /// Builds a vocabulary from the block-delta stream of `records`,
    /// keeping the `max_classes - 1` most frequent deltas.
    pub fn build(records: &[MemRecord], max_classes: usize) -> Self {
        assert!(max_classes >= 2);
        let mut freq: HashMap<i64, u64> = HashMap::new();
        for w in records.windows(2) {
            let d = w[1].block() as i64 - w[0].block() as i64;
            *freq.entry(d).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(i64, u64)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut classes = vec![i64::MIN]; // class 0 = OOV sentinel
        let mut to_class = HashMap::new();
        for (d, _) in by_freq.into_iter().take(max_classes - 1) {
            to_class.insert(d, classes.len());
            classes.push(d);
        }
        DeltaVocab { to_class, classes }
    }

    pub fn len(&self) -> usize {
        self.classes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Delta → class (0 when unseen).
    pub fn class_of(&self, delta: i64) -> usize {
        self.to_class.get(&delta).copied().unwrap_or(0)
    }

    /// Class → delta (`None` for the OOV class).
    pub fn delta_of(&self, class: usize) -> Option<i64> {
        (class != 0).then(|| self.classes[class])
    }
}

/// Maps page numbers to dense tokens. Token 0 is OOV.
#[derive(Debug, Clone)]
pub struct PageVocab {
    to_token: HashMap<u64, usize>,
    pages: Vec<u64>,
    max_tokens: usize,
}

impl PageVocab {
    pub fn build(records: &[MemRecord], max_tokens: usize) -> Self {
        assert!(max_tokens >= 2);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for r in records {
            *freq.entry(r.page()).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(u64, u64)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut pages = vec![u64::MAX];
        let mut to_token = HashMap::new();
        for (p, _) in by_freq.into_iter().take(max_tokens - 1) {
            to_token.insert(p, pages.len());
            pages.push(p);
        }
        PageVocab {
            to_token,
            pages,
            max_tokens,
        }
    }

    /// Number of tokens actually allocated (≤ max_tokens).
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Capacity the embedding tables must size for.
    pub fn capacity(&self) -> usize {
        self.max_tokens
    }

    pub fn token_of(&self, page: u64) -> usize {
        self.to_token.get(&page).copied().unwrap_or(0)
    }

    pub fn page_of(&self, token: usize) -> Option<u64> {
        (token != 0 && token < self.pages.len()).then(|| self.pages[token])
    }
}

/// Splits batched inference lanes into the unique input windows (in
/// first-occurrence order) plus a per-lane index into them. Inference is
/// a pure function of the window, so a batched caller computes each
/// unique window once and fans the rows out to duplicate lanes
/// bit-exactly — same-phase streams co-traversing one frontier present
/// byte-identical histories far more often than independent ones would.
pub fn dedup_lanes<'a, T: Eq + std::hash::Hash>(lanes: &[&'a [T]]) -> (Vec<&'a [T]>, Vec<usize>) {
    let mut unique: Vec<&'a [T]> = Vec::with_capacity(lanes.len());
    let mut lane_of = Vec::with_capacity(lanes.len());
    let mut seen: std::collections::HashMap<&'a [T], usize> =
        std::collections::HashMap::with_capacity(lanes.len());
    for lane in lanes {
        let next = unique.len();
        let idx = *seen.entry(*lane).or_insert(next);
        if idx == next {
            unique.push(lane);
        }
        lane_of.push(idx);
    }
    (unique, lane_of)
}

/// Normalizes a PC to a small f32 feature by hashing, as the paper's input
/// preprocessing does ("the PC is hashed and normalized").
#[inline]
pub fn pc_feature(pc: u64) -> f32 {
    // Fibonacci hashing, top 16 bits, scaled to [0, 1).
    let h = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
    h as f32 / 65536.0
}

#[cfg(test)]
mod dedup_tests {
    use super::dedup_lanes;

    #[test]
    fn dedup_preserves_first_occurrence_order_and_lane_mapping() {
        let a = [1u64, 2, 3];
        let b = [4u64, 5, 6];
        let lanes: Vec<&[u64]> = vec![&a, &b, &a, &a, &b];
        let (unique, lane_of) = dedup_lanes(&lanes);
        assert_eq!(unique, vec![&a[..], &b[..]]);
        assert_eq!(lane_of, vec![0, 1, 0, 0, 1]);

        let distinct: Vec<&[u64]> = vec![&a, &b];
        let (u2, l2) = dedup_lanes(&distinct);
        assert_eq!(u2.len(), 2);
        assert_eq!(l2, vec![0, 1]);

        let (u3, l3) = dedup_lanes(&[] as &[&[u64]]);
        assert!(u3.is_empty() && l3.is_empty());
    }
}

/// Splits a block address into `n` 4-bit segments (least-significant
/// first), each scaled to [0, 1) — TransFetch's "fine-grained address
/// segmentation" input.
pub fn segment_block(block: u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((block >> (4 * i)) & 0xF) as f32 / 16.0)
        .collect()
}

/// Fixed-size history ring of the last `cap` items.
#[derive(Debug, Clone)]
pub struct History<T: Copy> {
    buf: Vec<T>,
    cap: usize,
}

impl<T: Copy> History<T> {
    pub fn new(cap: usize) -> Self {
        History {
            buf: Vec::with_capacity(cap),
            cap,
        }
    }

    pub fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            // Rotate-and-overwrite: one memmove, no len churn. Callers need
            // `items()` contiguous, which rules out a VecDeque ring here.
            self.buf.rotate_left(1);
            if let Some(slot) = self.buf.last_mut() {
                *slot = v;
            }
            return;
        }
        self.buf.push(v);
    }

    pub fn is_full(&self) -> bool {
        self.buf.len() == self.cap
    }

    /// Configured window length (reached once `is_full`).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn items(&self) -> &[T] {
        &self.buf
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vaddr: u64) -> MemRecord {
        MemRecord {
            pc: 0x400000,
            vaddr,
            core: 0,
            is_write: false,
            phase: 0,
            gap: 1,
            dep: false,
        }
    }

    #[test]
    fn delta_vocab_ranks_by_frequency() {
        // Deltas: +1 × 6, +2 × 3, -5 × 1 (in blocks of 64 bytes).
        let mut records = vec![rec(0)];
        let mut addr = 0u64;
        for d in [1i64, 1, 1, 2, 1, 2, 1, 2, 1, -5] {
            addr = (addr as i64 + d * 64) as u64;
            records.push(rec(addr));
        }
        let v = DeltaVocab::build(&records, 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.class_of(1), 1); // most frequent
        assert_eq!(v.class_of(2), 2);
        assert_eq!(v.class_of(-5), 0); // dropped → OOV
        assert_eq!(v.delta_of(1), Some(1));
        assert_eq!(v.delta_of(0), None);
    }

    #[test]
    fn page_vocab_roundtrip() {
        let records: Vec<MemRecord> = (0..100).map(|i| rec((i % 5) * 4096)).collect();
        let v = PageVocab::build(&records, 16);
        assert_eq!(v.len(), 6); // 5 pages + OOV
        for p in 0..5u64 {
            let t = v.token_of(p);
            assert_eq!(v.page_of(t), Some(p));
        }
        assert_eq!(v.token_of(999), 0);
    }

    #[test]
    fn page_vocab_caps_tokens() {
        let records: Vec<MemRecord> = (0..100).map(|i| rec(i * 4096)).collect();
        let v = PageVocab::build(&records, 8);
        assert_eq!(v.len(), 8);
        assert!(v.capacity() >= v.len());
    }

    #[test]
    fn pc_feature_is_deterministic_and_bounded() {
        let a = pc_feature(0x401234);
        assert_eq!(a, pc_feature(0x401234));
        assert!((0.0..1.0).contains(&a));
        assert_ne!(pc_feature(0x401234), pc_feature(0x401238));
    }

    #[test]
    fn segments_reconstruct_block() {
        let block = 0xAB_CDEFu64;
        let segs = segment_block(block, 6);
        assert_eq!(segs.len(), 6);
        let mut reconstructed = 0u64;
        for (i, s) in segs.iter().enumerate() {
            reconstructed |= ((s * 16.0).round() as u64) << (4 * i);
        }
        assert_eq!(reconstructed, block);
    }

    #[test]
    fn history_ring_keeps_last_n() {
        let mut h = History::new(3);
        assert!(!h.is_full());
        for i in 0..5 {
            h.push(i);
        }
        assert!(h.is_full());
        assert_eq!(h.items(), &[2, 3, 4]);
        h.clear();
        assert!(h.items().is_empty());
    }
}
