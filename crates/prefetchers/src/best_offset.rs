//! Best-Offset prefetcher (Michaud, HPCA 2016) — the strongest rule-based
//! baseline in the paper's evaluation ("the best performing non-ML
//! prefetcher", §6.1).
//!
//! BO maintains a list of candidate offsets and scores them in rounds: an
//! offset `O` gains a point whenever the line `X - O` was recently requested
//! (it would have prefetched `X` in time). At the end of a learning phase,
//! the best-scoring offset becomes the prefetch offset for the next phase.

use mpgraph_sim::{LlcAccess, Prefetcher};

/// Candidate offsets: positive integers ≤ 64 of the form 2^i·3^j·5^k, as in
/// the original design (restricted to one page = 64 blocks).
fn default_offsets() -> Vec<i64> {
    let mut v: Vec<i64> = (1..=64i64)
        .filter(|&n| {
            let mut m = n;
            for p in [2, 3, 5] {
                while m % p == 0 {
                    m /= p;
                }
            }
            m == 1
        })
        .collect();
    // Negative directions too: graph apps walk arrays both ways.
    let neg: Vec<i64> = v.iter().map(|&o| -o).collect();
    v.extend(neg);
    v
}

/// Configuration of the Best-Offset prefetcher.
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Score that immediately ends a learning phase.
    pub score_max: u32,
    /// Max rounds per learning phase.
    pub round_max: u32,
    /// Minimum winning score to enable prefetching at all.
    pub bad_score: u32,
    /// Recent-requests table size (direct-mapped).
    pub rr_size: usize,
    /// Prefetch degree: lines at offsets k·D for k = 1..=degree.
    pub degree: usize,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            score_max: 31,
            round_max: 100,
            bad_score: 1,
            rr_size: 256,
            degree: 6,
        }
    }
}

/// Best-Offset prefetcher state.
pub struct BestOffset {
    cfg: BoConfig,
    offsets: Vec<i64>,
    scores: Vec<u32>,
    /// Index of the offset being tested next.
    test_idx: usize,
    round: u32,
    /// Current prefetch offset (0 = prefetching off).
    best: i64,
    /// Recent request hashes (direct-mapped tag store).
    rr: Vec<u64>,
}

impl BestOffset {
    pub fn new(cfg: BoConfig) -> Self {
        let offsets = default_offsets();
        BestOffset {
            scores: vec![0; offsets.len()],
            offsets,
            test_idx: 0,
            round: 0,
            best: 1,
            rr: vec![u64::MAX; cfg.rr_size],
            cfg,
        }
    }

    fn rr_insert(&mut self, block: u64) {
        let idx = (block as usize) & (self.cfg.rr_size - 1);
        self.rr[idx] = block;
    }

    fn rr_contains(&self, block: u64) -> bool {
        let idx = (block as usize) & (self.cfg.rr_size - 1);
        self.rr[idx] == block
    }

    fn end_learning_phase(&mut self) {
        let (best_idx, &best_score) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .expect("non-empty offsets");
        self.best = if best_score >= self.cfg.bad_score {
            self.offsets[best_idx]
        } else {
            0
        };
        self.scores.fill(0);
        self.round = 0;
        self.test_idx = 0;
    }

    /// The offset currently used for prefetching (test introspection).
    pub fn current_offset(&self) -> i64 {
        self.best
    }
}

impl Prefetcher for BestOffset {
    fn name(&self) -> String {
        "BO".into()
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        // Learning: test one candidate offset per eligible access.
        if !a.hit || a.is_write {
            let o = self.offsets[self.test_idx];
            let base = a.block as i64 - o;
            if base >= 0 && self.rr_contains(base as u64) {
                self.scores[self.test_idx] += 1;
                if self.scores[self.test_idx] >= self.cfg.score_max {
                    self.end_learning_phase();
                }
            }
            if !self.scores.is_empty() {
                self.test_idx += 1;
                if self.test_idx == self.offsets.len() {
                    self.test_idx = 0;
                    self.round += 1;
                    if self.round >= self.cfg.round_max {
                        self.end_learning_phase();
                    }
                }
            }
            self.rr_insert(a.block);
        }
        // Prefetch: same-page lines at multiples of the best offset.
        if self.best != 0 {
            let page = a.block >> 6;
            for k in 1..=self.cfg.degree as i64 {
                let target = a.block as i64 + k * self.best;
                if target >= 0 && (target as u64) >> 6 == page {
                    out.push(target as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(block: u64, hit: bool) -> LlcAccess {
        LlcAccess {
            pc: 0x400000,
            block,
            core: 0,
            is_write: false,
            hit,
            cycle: 0,
        }
    }

    #[test]
    fn offset_list_is_michaud_style() {
        let o = default_offsets();
        assert!(o.contains(&1) && o.contains(&2) && o.contains(&30) && o.contains(&-4));
        assert!(!o.contains(&7)); // 7 has a prime factor > 5
        assert!(!o.contains(&0));
    }

    #[test]
    fn learns_a_stride_of_4() {
        let mut bo = BestOffset::new(BoConfig::default());
        let mut out = Vec::new();
        // Stride-4 miss stream inside a large region.
        for i in 0..4000u64 {
            out.clear();
            bo.on_access(&access(1_000_000 + i * 4, false), &mut out);
        }
        assert_eq!(bo.current_offset(), 4, "learned {}", bo.current_offset());
        // Prefetches are multiples of 4 ahead within the page.
        out.clear();
        let base = 2_000_000 & !63; // page-aligned block
        bo.on_access(&access(base, false), &mut out);
        assert!(out.contains(&(base + 4)));
        assert!(out.contains(&(base + 8)));
        assert!(out.iter().all(|&b| b >> 6 == base >> 6));
    }

    #[test]
    fn random_stream_disables_prefetching_or_scores_low() {
        let mut bo = BestOffset::new(BoConfig {
            round_max: 20,
            ..BoConfig::default()
        });
        let mut out = Vec::new();
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            // xorshift random block addresses: no consistent offset.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.clear();
            bo.on_access(&access(x % (1 << 30), false), &mut out);
        }
        // After enough random rounds the chosen offset's score was ~0; BO
        // either turned itself off or kept a low-value offset. Either way
        // prefetch volume on a random stream stays small per access.
        assert!(out.len() <= BoConfig::default().degree);
    }

    #[test]
    fn prefetches_stay_in_page() {
        let mut bo = BestOffset::new(BoConfig::default());
        bo.best = 32;
        let mut out = Vec::new();
        // Access near the end of a page: k·32 quickly leaves the page.
        let block = (5 << 6) + 60;
        bo.on_access(&access(block, false), &mut out);
        assert!(out.iter().all(|&b| b >> 6 == 5));
        assert!(out.len() <= 1);
    }

    #[test]
    fn hits_do_not_train() {
        let mut bo = BestOffset::new(BoConfig::default());
        let before = bo.scores.clone();
        let mut out = Vec::new();
        bo.on_access(&access(100, true), &mut out);
        assert_eq!(bo.scores, before);
    }
}
