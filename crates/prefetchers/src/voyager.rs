//! Voyager (Shi et al., ASPLOS 2021): a hierarchical neural prefetcher with
//! two cooperating models — a *page* model over the page-token sequence and
//! an *offset* model that attends to the page model's hidden states with
//! dot-product attention — predicting the next (page, offset) pair
//! temporally. The strongest ML baseline on X-Stream/PowerGraph in
//! Figure 12.
//!
//! Histories are kept *per core* (the LLC knows the requesting CPU in
//! ChampSim): without this, the 4-way interleaved LLC stream makes the
//! next-page distribution near-uniform and the temporal model cannot learn
//! — the same interleaving pathology the paper describes for ISB.

use crate::delta_lstm::TrainCfg;
use crate::mlcommon::{History, PageVocab};
use mpgraph_frameworks::MemRecord;
use mpgraph_ml::layers::{Embedding, Linear, Module};
use mpgraph_ml::loss::softmax_cross_entropy;
use mpgraph_ml::lstm::Lstm;
use mpgraph_ml::metrics::top_k_indices;
use mpgraph_ml::optim::Adam;
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_sim::{LlcAccess, Prefetcher, BLOCK_BITS};

/// Voyager model dimensions (scaled-down per DESIGN.md §5).
#[derive(Debug, Clone, Copy)]
pub struct VoyagerConfig {
    pub page_vocab: usize,
    pub page_embed: usize,
    pub offset_embed: usize,
    pub hidden: usize,
    pub degree: usize,
    pub latency: u64,
}

impl Default for VoyagerConfig {
    fn default() -> Self {
        VoyagerConfig {
            page_vocab: 512,
            page_embed: 16,
            offset_embed: 8,
            hidden: 64,
            degree: 6,
            latency: 0,
        }
    }
}

/// The trained Voyager prefetcher.
pub struct Voyager {
    cfg: VoyagerConfig,
    vocab: PageVocab,
    page_embed: Embedding,
    offset_embed: Embedding,
    page_lstm: Lstm,
    offset_lstm: Lstm,
    page_head: Linear,
    /// Offset head input: [offset hidden ; attention context over page
    /// hidden states] — the dot-product attention coupling.
    offset_head: Linear,
    /// Per-core (page token, offset) histories.
    hists: Vec<History<(usize, usize)>>,
    pub final_loss: f32,
}

/// Cores tracked by the per-core histories.
const MAX_CORES: usize = 8;

impl Voyager {
    pub fn train(records: &[MemRecord], cfg: VoyagerConfig, tc: &TrainCfg) -> Self {
        let vocab = PageVocab::build(records, cfg.page_vocab);
        let mut r = rng(tc.seed ^ 0x70A6E5);
        let mut page_embed = Embedding::new(cfg.page_vocab, cfg.page_embed, &mut r);
        let mut offset_embed = Embedding::new(64, cfg.offset_embed, &mut r);
        let mut page_lstm = Lstm::new(cfg.page_embed, cfg.hidden, &mut r);
        let mut offset_lstm = Lstm::new(cfg.offset_embed, cfg.hidden, &mut r);
        let mut page_head = Linear::new(cfg.hidden, cfg.page_vocab, &mut r);
        let mut offset_head = Linear::new(2 * cfg.hidden, 64, &mut r);
        let mut opt = Adam::new(tc.lr);

        // Per-core subsequences: the temporal patterns live within a
        // core's own stream, not in the interleaved aggregate.
        let mut per_core: Vec<Vec<(usize, usize)>> = vec![Vec::new(); MAX_CORES];
        for rc in records {
            per_core[(rc.core as usize) % MAX_CORES]
                .push((vocab.token_of(rc.page()), rc.page_offset() as usize));
        }
        // Concatenate with per-core sampling: windows never straddle cores.
        let t = tc.history;
        let seqs: Vec<&Vec<(usize, usize)>> = per_core.iter().filter(|s| s.len() > t + 1).collect();
        let total: usize = seqs.iter().map(|s| s.len()).sum();
        let usable = total.saturating_sub((t + 1) * seqs.len().max(1));
        let stride = (usable / tc.max_samples.max(1)).max(1);
        let mut final_loss = 0.0f32;
        for _ in 0..tc.epochs {
            let mut count = 0usize;
            let mut loss_sum = 0.0f32;
            // Round-robin over core subsequences.
            let mut cursors: Vec<usize> = vec![0; seqs.len()];
            let mut which = 0usize;
            while count < tc.max_samples {
                if seqs.is_empty() {
                    break;
                }
                let s = seqs[which % seqs.len()];
                let i = &mut cursors[which % seqs.len()];
                which += 1;
                if *i + t >= s.len() {
                    if cursors
                        .iter()
                        .zip(seqs.iter())
                        .all(|(c, s)| c + t >= s.len())
                    {
                        break;
                    }
                    continue;
                }
                let hist = &s[*i..*i + t];
                let (tp, to) = s[*i + t];
                let ptoks: Vec<usize> = hist.iter().map(|&(p, _)| p).collect();
                let otoks: Vec<usize> = hist.iter().map(|&(_, o)| o).collect();

                // ---- forward ----
                let pe = page_embed.forward(&ptoks);
                let ph = page_lstm.forward(&pe); // [T, H]
                let oe = offset_embed.forward(&otoks);
                let oh = offset_lstm.forward(&oe); // [T, H]
                let p_last = Matrix::from_vec(1, ph.cols, ph.row(t - 1).to_vec());
                let o_last = Matrix::from_vec(1, oh.cols, oh.row(t - 1).to_vec());
                // Dot-product attention: query = offset hidden, keys/values
                // = page hidden states.
                let mut scores = ph.matmul_bt(&o_last).transpose(); // [1, T]
                scores.scale(1.0 / (cfg.hidden as f32).sqrt());
                let attn = scores.softmax_rows(); // [1, T]
                let ctx = attn.matmul(&ph); // [1, H]
                let offset_in = {
                    let mut v = o_last.data.clone();
                    v.extend_from_slice(&ctx.data);
                    Matrix::from_vec(1, 2 * cfg.hidden, v)
                };
                let p_logits = page_head.forward(&p_last);
                let o_logits = offset_head.forward(&offset_in);
                let (pl, dp) = softmax_cross_entropy(&p_logits, &[tp]);
                let (ol, dol) = softmax_cross_entropy(&o_logits, &[to]);
                loss_sum += pl + ol;

                // ---- backward ----
                // Page head path.
                let dp_last = page_head.backward(&dp);
                // Offset head path.
                let d_off_in = offset_head.backward(&dol);
                let (d_o_last_head, d_ctx) = {
                    let top = Matrix::from_vec(1, cfg.hidden, d_off_in.data[..cfg.hidden].to_vec());
                    let bot = Matrix::from_vec(1, cfg.hidden, d_off_in.data[cfg.hidden..].to_vec());
                    (top, bot)
                };
                // ctx = attn @ ph
                let d_attn = d_ctx.matmul_bt(&ph); // [1, T]
                                                   // attn^T [T,1] @ d_ctx [1,H] → [T,H]
                let d_ph_from_ctx_init = attn.matmul_at(&d_ctx);
                let mut d_scores = Matrix::softmax_rows_backward(&attn, &d_attn);
                d_scores.scale(1.0 / (cfg.hidden as f32).sqrt());
                // scores[0, j] = ph[j] · o_last
                let d_ph_from_scores = d_scores.transpose().matmul(&o_last); // [T, H]
                let d_o_last_attn = d_scores.matmul(&ph); // [1, H]
                                                          // Accumulate page-LSTM output grads.
                let mut d_ph = d_ph_from_ctx_init;
                d_ph.add_assign(&d_ph_from_scores);
                d_ph.row_mut(t - 1)
                    .iter_mut()
                    .zip(dp_last.row(0).iter())
                    .for_each(|(a, &b)| *a += b);
                // Offset-LSTM output grads.
                let mut d_oh = Matrix::zeros(t, cfg.hidden);
                d_oh.row_mut(t - 1)
                    .iter_mut()
                    .zip(d_o_last_head.row(0).iter().zip(d_o_last_attn.row(0).iter()))
                    .for_each(|(a, (&b, &c))| *a = b + c);
                let d_pe = page_lstm.backward(&d_ph);
                let d_oe = offset_lstm.backward(&d_oh);
                page_embed.backward(&d_pe);
                offset_embed.backward(&d_oe);
                opt.step(&mut page_embed);
                opt.step(&mut offset_embed);
                opt.step(&mut page_lstm);
                opt.step(&mut offset_lstm);
                opt.step(&mut page_head);
                opt.step(&mut offset_head);
                *i += stride;
                count += 1;
            }
            final_loss = if count > 0 {
                loss_sum / count as f32
            } else {
                f32::NAN
            };
        }
        Voyager {
            hists: (0..MAX_CORES).map(|_| History::new(tc.history)).collect(),
            cfg,
            vocab,
            page_embed,
            offset_embed,
            page_lstm,
            offset_lstm,
            page_head,
            offset_head,
            final_loss,
        }
    }

    /// Inference: top page tokens and top offsets for the current history.
    fn predict(
        &self,
        hist: &[(usize, usize)],
        pages_k: usize,
        offs_k: usize,
    ) -> (Vec<usize>, Vec<usize>) {
        let t = hist.len();
        let ptoks: Vec<usize> = hist.iter().map(|&(p, _)| p).collect();
        let otoks: Vec<usize> = hist.iter().map(|&(_, o)| o).collect();
        let ph = self.page_lstm.infer(&self.page_embed.infer(&ptoks));
        let oh = self.offset_lstm.infer(&self.offset_embed.infer(&otoks));
        let p_last = Matrix::from_vec(1, ph.cols, ph.row(t - 1).to_vec());
        let o_last = Matrix::from_vec(1, oh.cols, oh.row(t - 1).to_vec());
        let mut scores = ph.matmul_bt(&o_last).transpose();
        scores.scale(1.0 / (self.cfg.hidden as f32).sqrt());
        let attn = scores.softmax_rows();
        let ctx = attn.matmul(&ph);
        let mut v = o_last.data.clone();
        v.extend_from_slice(&ctx.data);
        let offset_in = Matrix::from_vec(1, 2 * self.cfg.hidden, v);
        let p_logits = self.page_head.infer(&p_last);
        let o_logits = self.offset_head.infer(&offset_in);
        (
            top_k_indices(p_logits.row(0), pages_k),
            top_k_indices(o_logits.row(0), offs_k),
        )
    }

    pub fn num_params(&mut self) -> usize {
        self.page_embed.num_params()
            + self.offset_embed.num_params()
            + self.page_lstm.num_params()
            + self.offset_lstm.num_params()
            + self.page_head.num_params()
            + self.offset_head.num_params()
    }
}

impl Prefetcher for Voyager {
    fn name(&self) -> String {
        "Voyager".into()
    }

    fn latency(&self) -> u64 {
        self.cfg.latency
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        let hist = &mut self.hists[(a.core as usize) % MAX_CORES];
        hist.push((self.vocab.token_of(a.page()), a.offset() as usize));
        if !hist.is_full() {
            return;
        }
        let items: Vec<(usize, usize)> = hist.items().to_vec();
        // Degree 6 as 2 pages × 3 offsets (plus OOV skips).
        let (pages, offs) = self.predict(&items, 3, 3);
        let mut issued = 0usize;
        'outer: for &pt in &pages {
            let Some(page) = self.vocab.page_of(pt) else {
                continue;
            };
            for &o in &offs {
                out.push((page << BLOCK_BITS) | o as u64);
                issued += 1;
                if issued >= self.cfg.degree {
                    break 'outer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(page: u64, offset: u64) -> MemRecord {
        MemRecord {
            pc: 0x400000,
            vaddr: page * 4096 + offset * 64,
            core: 0,
            is_write: false,
            phase: 0,
            gap: 1,
            dep: false,
        }
    }

    /// Cyclic page pattern 10→11→17→10… with fixed offsets per page.
    fn cyclic_trace(n: usize) -> Vec<MemRecord> {
        let pat = [(10u64, 5u64), (11, 9), (17, 33)];
        (0..n).map(|i| rec(pat[i % 3].0, pat[i % 3].1)).collect()
    }

    fn quick_cfg() -> (VoyagerConfig, TrainCfg) {
        (
            VoyagerConfig {
                page_vocab: 32,
                page_embed: 8,
                offset_embed: 4,
                hidden: 16,
                degree: 4,
                latency: 0,
            },
            TrainCfg {
                history: 6,
                max_samples: 300,
                epochs: 4,
                lr: 5e-3,
                seed: 2,
            },
        )
    }

    #[test]
    fn learns_cyclic_page_pattern() {
        let trace = cyclic_trace(600);
        let (cfg, tc) = quick_cfg();
        let model = Voyager::train(&trace, cfg, &tc);
        assert!(model.final_loss < 1.0, "loss {}", model.final_loss);
        // History ending at page 17 → next page 10, offset 5.
        let v = &model.vocab;
        let hist: Vec<(usize, usize)> = [
            (10u64, 5usize),
            (11, 9),
            (17, 33),
            (10, 5),
            (11, 9),
            (17, 33),
        ]
        .iter()
        .map(|&(p, o)| (v.token_of(p), o))
        .collect();
        let (pages, offs) = model.predict(&hist, 1, 1);
        assert_eq!(v.page_of(pages[0]), Some(10));
        assert_eq!(offs[0], 5);
    }

    #[test]
    fn online_interface_emits_bounded_prefetches() {
        let trace = cyclic_trace(400);
        let (cfg, tc) = quick_cfg();
        let mut model = Voyager::train(&trace, cfg, &tc);
        let mut out = Vec::new();
        for r in &trace[..30] {
            out.clear();
            model.on_access(
                &LlcAccess {
                    pc: r.pc,
                    block: r.block(),
                    core: 0,
                    is_write: false,
                    hit: false,
                    cycle: 0,
                },
                &mut out,
            );
        }
        assert!(!out.is_empty());
        assert!(out.len() <= 4);
    }

    #[test]
    fn param_count_reported() {
        let trace = cyclic_trace(200);
        let (cfg, tc) = quick_cfg();
        let mut model = Voyager::train(&trace, cfg, &tc);
        assert!(model.num_params() > 1000);
    }
}
