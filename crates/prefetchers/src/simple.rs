//! Sanity-check baselines: next-line and PC-localized stride prefetchers.
//! Not part of the paper's comparison set, but invaluable for validating
//! the simulator (any reasonable prefetcher must beat `none` on streaming
//! phases) and as floor references in the ablation harness.

use mpgraph_sim::{LlcAccess, Prefetcher};
use std::collections::HashMap;

/// Prefetches the next `degree` sequential lines.
pub struct NextLine {
    pub degree: usize,
}

impl NextLine {
    pub fn new(degree: usize) -> Self {
        NextLine { degree }
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> String {
        "next-line".into()
    }
    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        out.extend((1..=self.degree as u64).map(|d| a.block + d));
    }
}

/// Classic PC-localized stride prefetcher with 2-bit-confidence-style
/// training: a PC's stride must repeat twice before prefetching starts.
pub struct Stride {
    pub degree: usize,
    table: HashMap<u64, StrideEntry>,
    capacity: usize,
}

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_block: u64,
    stride: i64,
    confidence: u8,
}

impl Stride {
    pub fn new(degree: usize) -> Self {
        Stride {
            degree,
            table: HashMap::new(),
            capacity: 4096,
        }
    }
}

impl Prefetcher for Stride {
    fn name(&self) -> String {
        "stride".into()
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        if self.table.len() >= self.capacity && !self.table.contains_key(&a.pc) {
            self.table.clear();
        }
        let e = self.table.entry(a.pc).or_insert(StrideEntry {
            last_block: a.block,
            stride: 0,
            confidence: 0,
        });
        let observed = a.block as i64 - e.last_block as i64;
        if observed != 0 {
            if observed == e.stride {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.stride = observed;
                e.confidence = 0;
            }
            e.last_block = a.block;
        }
        if e.confidence >= 2 && e.stride != 0 {
            let stride = e.stride;
            for k in 1..=self.degree as i64 {
                let t = a.block as i64 + k * stride;
                if t >= 0 {
                    out.push(t as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(pc: u64, block: u64) -> LlcAccess {
        LlcAccess {
            pc,
            block,
            core: 0,
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn next_line_prefetches_degree_lines() {
        let mut p = NextLine::new(3);
        let mut out = Vec::new();
        p.on_access(&access(1, 100), &mut out);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    fn stride_needs_confidence() {
        let mut p = Stride::new(2);
        let mut out = Vec::new();
        p.on_access(&access(1, 100), &mut out);
        assert!(out.is_empty());
        p.on_access(&access(1, 110), &mut out); // stride 10 observed
        assert!(out.is_empty());
        p.on_access(&access(1, 120), &mut out); // confirmed once
        assert!(out.is_empty());
        p.on_access(&access(1, 130), &mut out); // confidence reaches 2
        assert_eq!(out, vec![140, 150]);
    }

    #[test]
    fn stride_resets_on_pattern_change() {
        let mut p = Stride::new(1);
        let mut out = Vec::new();
        for b in [100u64, 110, 120, 130] {
            out.clear();
            p.on_access(&access(1, b), &mut out);
        }
        assert!(!out.is_empty());
        out.clear();
        p.on_access(&access(1, 95), &mut out); // break the stride
        assert!(out.is_empty());
    }

    #[test]
    fn strides_are_per_pc() {
        let mut p = Stride::new(1);
        let mut out = Vec::new();
        // PC 1 strides by +2, PC 2 by -3; both must learn independently.
        for i in 0..5i64 {
            out.clear();
            p.on_access(&access(1, (100 + i * 2) as u64), &mut out);
            out.clear();
            p.on_access(&access(2, (500 - i * 3) as u64), &mut out);
        }
        out.clear();
        p.on_access(&access(1, 110), &mut out);
        assert_eq!(out, vec![112]);
        out.clear();
        p.on_access(&access(2, 485), &mut out);
        assert_eq!(out, vec![482]);
    }
}
