//! Property tests for the register-tiled matmul kernels: at random shapes
//! — including empty matrices and sizes that are not multiples of the
//! 4-wide tile — every tiled kernel and its `_into` variant must agree
//! with the naive `_ref` loops within 1e-5, and the parallel-iterator
//! shim must reproduce sequential results exactly.

use mpgraph_ml::tensor::{rng, Matrix};
use proptest::prelude::*;
use rayon::prelude::*;

const TOL: f32 = 1e-5;

/// Random matrix with entries in roughly ±1 (xavier keeps products small
/// enough that TOL is meaningful at these shapes).
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut r = rng(seed);
    Matrix::xavier(rows, cols, &mut r)
}

/// A buffer pre-filled with garbage, to prove the `_into` kernels fully
/// overwrite their output rather than accumulating into stale contents.
fn dirty(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, vec![-7.25e6; rows * cols])
}

fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!((got.rows, got.cols), (want.rows, want.cols), "{what} shape");
    for (i, (g, w)) in got.data.iter().zip(want.data.iter()).enumerate() {
        assert!(
            (g - w).abs() <= TOL,
            "{what}[{i}]: tiled {g} vs reference {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Shape ranges deliberately straddle the 4-wide tile: 0 (empty), 1-3
    // (remainder-only), 4/8 (tile-exact), 5-18 (tile + remainder).
    #[test]
    fn matmul_matches_reference(
        m in 0usize..19,
        k in 0usize..19,
        n in 0usize..19,
        seed in 0u64..1_000_000,
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let want = a.matmul_ref(&b);
        assert_close(&a.matmul(&b), &want, "matmul");
        let mut out = dirty(m, n);
        a.matmul_into(&b, &mut out);
        assert_close(&out, &want, "matmul_into");
    }

    #[test]
    fn matmul_bt_matches_reference(
        m in 0usize..19,
        k in 0usize..19,
        n in 0usize..19,
        seed in 0u64..1_000_000,
    ) {
        let a = mat(m, k, seed);
        let b = mat(n, k, seed.wrapping_add(2));
        let want = a.matmul_bt_ref(&b);
        assert_close(&a.matmul_bt(&b), &want, "matmul_bt");
        let mut out = dirty(m, n);
        a.matmul_bt_into(&b, &mut out);
        assert_close(&out, &want, "matmul_bt_into");
    }

    #[test]
    fn matmul_at_matches_reference(
        m in 0usize..19,
        k in 0usize..19,
        n in 0usize..19,
        seed in 0u64..1_000_000,
    ) {
        let a = mat(k, m, seed);
        let b = mat(k, n, seed.wrapping_add(3));
        let want = a.matmul_at_ref(&b);
        assert_close(&a.matmul_at(&b), &want, "matmul_at");
        let mut out = dirty(m, n);
        a.matmul_at_into(&b, &mut out);
        assert_close(&out, &want, "matmul_at_into");
    }

    /// The three transpose variants must agree with each other through
    /// explicit transposes, not just with their own reference loops.
    #[test]
    fn transpose_variants_are_consistent(
        m in 0usize..13,
        k in 0usize..13,
        n in 0usize..13,
        seed in 0u64..1_000_000,
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(4));
        let want = a.matmul(&b);
        assert_close(&a.matmul_bt(&b.transpose()), &want, "bt vs matmul");
        assert_close(&a.transpose().matmul_at(&b), &want, "at vs matmul");
    }

    /// Parallel map over matrix rows must return results bit-identical to
    /// the sequential loop, in the same order — the guarantee the training
    /// fan-out and CSTP lanes rely on.
    #[test]
    fn par_iter_row_sums_match_sequential_bitwise(
        m in 0usize..33,
        k in 1usize..19,
        seed in 0u64..1_000_000,
    ) {
        let a = mat(m, k, seed);
        let rows: Vec<&[f32]> = (0..m).map(|i| a.row(i)).collect();
        let sequential: Vec<f32> = rows
            .iter()
            .map(|r| r.iter().fold(0.0f32, |s, v| s + v * v))
            .collect();
        let parallel: Vec<f32> = rows
            .par_iter()
            .map(|r| r.iter().fold(0.0f32, |s, v| s + v * v))
            .collect();
        let seq_bits: Vec<u32> = sequential.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u32> = parallel.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(seq_bits, par_bits);
    }
}
