//! Property-based gradient checks: for random layer shapes and random
//! inputs, the analytic input gradient must match central finite
//! differences. This is the strongest single invariant a hand-written
//! backprop library can carry.

use mpgraph_ml::layers::{LayerNorm, Linear, Sigmoid};
use mpgraph_ml::lstm::Lstm;
use mpgraph_ml::tensor::{rng, Matrix};
use mpgraph_ml::transformer::TransformerLayer;
use mpgraph_ml::SelfAttention;
use proptest::prelude::*;

/// L = sum(f(x) ⊙ w); returns |numeric - analytic| max over sampled coords.
fn check(
    x: &Matrix,
    w: &Matrix,
    dx: &Matrix,
    mut f: impl FnMut(&Matrix) -> Matrix,
    coords: &[usize],
) -> f32 {
    let eps = 1e-2f32;
    let loss = |m: &Matrix, f: &mut dyn FnMut(&Matrix) -> Matrix| -> f32 {
        f(m).data
            .iter()
            .zip(w.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    };
    let mut worst = 0.0f32;
    for &i in coords {
        let mut xp = x.clone();
        xp.data[i] += eps;
        let mut xm = x.clone();
        xm.data[i] -= eps;
        let num = (loss(&xp, &mut f) - loss(&xm, &mut f)) / (2.0 * eps);
        worst = worst.max((num - dx.data[i]).abs());
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn linear_grad(seed in 0u64..1000, rows in 1usize..4, din in 1usize..6, dout in 1usize..6) {
        let mut r = rng(seed);
        let mut l = Linear::new(din, dout, &mut r);
        let x = Matrix::xavier(rows, din, &mut r);
        let w = Matrix::xavier(rows, dout, &mut r);
        let _ = l.forward(&x);
        let dx = l.backward(&w);
        let l2 = l.clone();
        let coords: Vec<usize> = (0..x.data.len()).collect();
        let worst = check(&x, &w, &dx, |m| l2.infer(m), &coords);
        prop_assert!(worst < 2e-2, "worst {}", worst);
    }

    #[test]
    fn sigmoid_grad(seed in 0u64..1000, n in 1usize..8) {
        let mut r = rng(seed);
        let x = Matrix::xavier(1, n, &mut r);
        let w = Matrix::xavier(1, n, &mut r);
        let mut s = Sigmoid::default();
        let _ = s.forward(&x);
        let dx = s.backward(&w);
        let coords: Vec<usize> = (0..n).collect();
        let worst = check(&x, &w, &dx, |m| Sigmoid::infer(m), &coords);
        prop_assert!(worst < 1e-2, "worst {}", worst);
    }

    #[test]
    fn layernorm_grad(seed in 0u64..1000, rows in 1usize..3, dim in 2usize..7) {
        let mut r = rng(seed);
        let mut ln = LayerNorm::new(dim);
        // random gain/bias to exercise the full backward
        ln.gamma.w = Matrix::xavier(1, dim, &mut r);
        ln.beta.w = Matrix::xavier(1, dim, &mut r);
        let x = Matrix::xavier(rows, dim, &mut r);
        let w = Matrix::xavier(rows, dim, &mut r);
        let _ = ln.forward(&x);
        let dx = ln.backward(&w);
        let ln2 = ln.clone();
        let coords: Vec<usize> = (0..x.data.len()).collect();
        let worst = check(&x, &w, &dx, |m| ln2.infer(m), &coords);
        prop_assert!(worst < 6e-2, "worst {}", worst);
    }

    #[test]
    fn attention_grad(seed in 0u64..1000, s in 2usize..5, din in 2usize..5, dh in 1usize..4) {
        let mut r = rng(seed);
        let mut a = SelfAttention::new(din, dh, &mut r);
        let x = Matrix::xavier(s, din, &mut r);
        let w = Matrix::xavier(s, dh, &mut r);
        let _ = a.forward(&x);
        let dx = a.backward(&w);
        let coords: Vec<usize> = (0..x.data.len()).step_by(2).collect();
        let worst = check(&x, &w, &dx, |m| a.infer(m), &coords);
        prop_assert!(worst < 5e-2, "worst {}", worst);
    }

    #[test]
    fn lstm_grad(seed in 0u64..1000, s in 1usize..4, din in 1usize..4, h in 1usize..4) {
        let mut r = rng(seed);
        let mut l = Lstm::new(din, h, &mut r);
        let x = Matrix::xavier(s, din, &mut r);
        let w = Matrix::xavier(s, h, &mut r);
        let _ = l.forward(&x);
        let dx = l.backward(&w);
        let coords: Vec<usize> = (0..x.data.len()).collect();
        let worst = check(&x, &w, &dx, |m| l.infer(m), &coords);
        prop_assert!(worst < 3e-2, "worst {}", worst);
    }

    #[test]
    fn transformer_grad(seed in 0u64..500, s in 2usize..4) {
        // LayerNorm + ReLU kinks make pointwise f32 finite differences
        // noisy; require directional agreement (cosine similarity) of the
        // full gradient vectors instead.
        let mut r = rng(seed);
        let dim = 4;
        let mut t = TransformerLayer::new(dim, 2, &mut r);
        let x = Matrix::xavier(s, dim, &mut r);
        let w = Matrix::xavier(s, dim, &mut r);
        let _ = t.forward(&x);
        let dx = t.backward(&w);
        let eps = 1e-2f32;
        let loss = |m: &Matrix| -> f32 {
            t.infer(m).data.iter().zip(w.data.iter()).map(|(a, b)| a * b).sum()
        };
        let mut numeric = vec![0.0f32; x.data.len()];
        for (i, n) in numeric.iter_mut().enumerate() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            *n = (loss(&xp) - loss(&xm)) / (2.0 * eps);
        }
        let dot: f32 = numeric.iter().zip(dx.data.iter()).map(|(a, b)| a * b).sum();
        let na: f32 = numeric.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = dx.data.iter().map(|v| v * v).sum::<f32>().sqrt();
        if na > 1e-3 && nb > 1e-3 {
            let cos = dot / (na * nb);
            prop_assert!(cos > 0.95, "cosine {}", cos);
        }
    }
}
