//! Scratch-buffer arena for allocation-free inference.
//!
//! Every `infer` call in the seed implementation allocated roughly a dozen
//! intermediate matrices; at prefetcher rates (one inference per L2 access)
//! the allocator became a measurable part of the per-prediction latency. A
//! [`ScratchArena`] is a free-list of `f32` buffers keyed by length: layers
//! `take` intermediates from it and `give` them back, so after the first
//! inference (warmup) the steady state performs no heap allocation at all.
//!
//! The arena is deliberately *not* stored inside models: models stay `Sync`
//! and shareable across threads, and each caller (the prefetcher hot path, a
//! bench thread, an evaluation worker) owns its own arena, passed down as
//! `&mut` through the `infer_in` methods. Buffer reuse is LIFO, so the most
//! recently released buffer — the one most likely still in cache — is handed
//! out first.

use crate::tensor::{positional_encoding, Matrix};
use std::collections::HashMap;

/// Pool of reusable scratch buffers plus a cache of positional-encoding
/// constants. See the module docs for the ownership model.
#[derive(Debug, Default)]
pub struct ScratchArena {
    pools: HashMap<usize, Vec<Vec<f32>>>,
    pools_i8: HashMap<usize, Vec<Vec<i8>>>,
    pools_i16: HashMap<usize, Vec<Vec<i16>>>,
    pe_cache: HashMap<(usize, usize), Matrix>,
    hits: u64,
    misses: u64,
}

impl ScratchArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zeroed `rows × cols` matrix, reusing a previously
    /// released buffer of the same length when one is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        match self.pools.get_mut(&len).and_then(Vec::pop) {
            Some(mut data) => {
                self.hits += 1;
                data.fill(0.0);
                Matrix { rows, cols, data }
            }
            None => {
                self.misses += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a matrix's buffer to the pool for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.pools.entry(m.data.len()).or_default().push(m.data);
    }

    /// Hands out a zeroed `i8` buffer of `len` elements — scratch for the
    /// int8 inference path's quantized activations. Counted in the same
    /// hit/miss stats as the `f32` pool.
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        match self.pools_i8.get_mut(&len).and_then(Vec::pop) {
            Some(mut data) => {
                self.hits += 1;
                data.fill(0);
                data
            }
            None => {
                self.misses += 1;
                vec![0i8; len]
            }
        }
    }

    /// Returns an `i8` buffer to the pool for reuse.
    pub fn give_i8(&mut self, data: Vec<i8>) {
        self.pools_i8.entry(data.len()).or_default().push(data);
    }

    /// Hands out a zeroed `i16` buffer — scratch for sign-extended int8
    /// activation rows feeding the widened multiply-add kernels.
    pub fn take_i16(&mut self, len: usize) -> Vec<i16> {
        match self.pools_i16.get_mut(&len).and_then(Vec::pop) {
            Some(mut data) => {
                self.hits += 1;
                data.fill(0);
                data
            }
            None => {
                self.misses += 1;
                vec![0i16; len]
            }
        }
    }

    /// Returns an `i16` buffer to the pool for reuse.
    pub fn give_i16(&mut self, data: Vec<i16>) {
        self.pools_i16.entry(data.len()).or_default().push(data);
    }

    /// Adds the sinusoidal positional encoding for `m`'s shape to `m`,
    /// computing and caching the constant on first use.
    pub fn add_positional(&mut self, m: &mut Matrix) {
        let key = (m.rows, m.cols);
        let pe = self
            .pe_cache
            .entry(key)
            .or_insert_with(|| positional_encoding(key.0, key.1));
        m.add_assign(pe);
    }

    /// Adds the `[seq_len, cols]` positional encoding to each of the
    /// `m.rows / seq_len` sequences stacked in `m` — the batched
    /// counterpart of [`ScratchArena::add_positional`]. Each sequence gets
    /// its own position ramp starting at 0, not one ramp across the whole
    /// concatenated batch, so the result is bit-identical to encoding the
    /// sequences separately.
    pub fn add_positional_per_seq(&mut self, m: &mut Matrix, seq_len: usize) {
        assert!(
            seq_len > 0 && m.rows.is_multiple_of(seq_len),
            "rows must tile by seq_len"
        );
        let key = (seq_len, m.cols);
        let pe = self
            .pe_cache
            .entry(key)
            .or_insert_with(|| positional_encoding(key.0, key.1));
        for b in 0..m.rows / seq_len {
            for t in 0..seq_len {
                let r = b * seq_len + t;
                let dst = &mut m.data[r * m.cols..(r + 1) * m.cols];
                for (a, &p) in dst.iter_mut().zip(pe.row(t).iter()) {
                    *a += p;
                }
            }
        }
    }

    /// `(hits, misses)` — a steady-state hot loop should only ever grow
    /// `hits` after warmup.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_buffers_after_warmup() {
        let mut s = ScratchArena::new();
        let a = s.take(3, 4);
        s.give(a);
        let b = s.take(4, 3); // same length, different shape: still reusable
        assert_eq!((b.rows, b.cols), (4, 3));
        let (hits, misses) = s.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let mut s = ScratchArena::new();
        let mut a = s.take(2, 2);
        a.data.fill(7.0);
        s.give(a);
        let b = s.take(2, 2);
        assert!(b.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn positional_encoding_is_cached_and_correct() {
        let mut s = ScratchArena::new();
        let mut a = Matrix::zeros(5, 8);
        s.add_positional(&mut a);
        let expected = positional_encoding(5, 8);
        assert_eq!(a.data, expected.data);
        // Second call must add the same constant again (not recompute wrongly).
        s.add_positional(&mut a);
        for (v, e) in a.data.iter().zip(expected.data.iter()) {
            assert!((v - 2.0 * e).abs() < 1e-6);
        }
    }

    #[test]
    fn i8_pool_reuses_and_zeroes() {
        let mut s = ScratchArena::new();
        let mut a = s.take_i8(16);
        a.fill(7);
        s.give_i8(a);
        let b = s.take_i8(16);
        assert!(b.iter().all(|&v| v == 0));
        let (hits, misses) = s.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn i16_pool_reuses_and_zeroes() {
        let mut s = ScratchArena::new();
        let mut a = s.take_i16(16);
        a.fill(-7);
        s.give_i16(a);
        let b = s.take_i16(16);
        assert!(b.iter().all(|&v| v == 0));
        let (hits, misses) = s.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut s = ScratchArena::new();
        for _ in 0..10 {
            let a = s.take(4, 4);
            let b = s.take(4, 2);
            s.give(a);
            s.give(b);
        }
        let (_, misses) = s.stats();
        assert_eq!(misses, 2, "only the first round may allocate");
    }
}
