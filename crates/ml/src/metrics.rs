//! Evaluation metrics used across the paper's tables: multi-label F1-score
//! (Table 6), accuracy-at-k (Table 7), and the precision/recall/F1 triple
//! of the phase-detection evaluation (Table 4).

/// Precision, recall, F1 from raw counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Prf {
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
        }
    }
}

/// Micro-averaged multi-label F1: `predictions` and `targets` are parallel
/// bitmaps (one `Vec<bool>` per sample).
pub fn multilabel_f1(predictions: &[Vec<bool>], targets: &[Vec<bool>]) -> Prf {
    assert_eq!(predictions.len(), targets.len());
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (p, t) in predictions.iter().zip(targets.iter()) {
        assert_eq!(p.len(), t.len());
        for (&pi, &ti) in p.iter().zip(t.iter()) {
            match (pi, ti) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    Prf::from_counts(tp, fp, fn_)
}

/// Accuracy-at-k as defined by Hashemi et al. and used in Table 7: a
/// prediction is correct if the predicted item occurs anywhere in the next
/// `k` ground-truth items. `predicted[i]` is checked against
/// `future_windows[i]` (the next-k items after sample i).
pub fn accuracy_at_k(predicted: &[u64], future_windows: &[Vec<u64>]) -> f64 {
    assert_eq!(predicted.len(), future_windows.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(future_windows.iter())
        .filter(|(p, w)| w.contains(p))
        .count();
    hits as f64 / predicted.len() as f64
}

/// Indices of the `k` largest values in `scores`, descending.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_from_counts() {
        let p = Prf::from_counts(8, 2, 2);
        assert!((p.precision - 0.8).abs() < 1e-12);
        assert!((p.recall - 0.8).abs() < 1e-12);
        assert!((p.f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn prf_handles_degenerate_cases() {
        assert_eq!(Prf::from_counts(0, 0, 0), Prf::default());
        let p = Prf::from_counts(0, 5, 0);
        assert_eq!(p.precision, 0.0);
        assert_eq!(p.f1, 0.0);
    }

    #[test]
    fn multilabel_f1_perfect_and_empty() {
        let t = vec![vec![true, false, true], vec![false, true, false]];
        let perfect = multilabel_f1(&t, &t);
        assert!((perfect.f1 - 1.0).abs() < 1e-12);
        let none = vec![vec![false; 3]; 2];
        let zero = multilabel_f1(&none, &t);
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn multilabel_f1_partial() {
        let pred = vec![vec![true, true, false]];
        let targ = vec![vec![true, false, true]];
        // tp=1, fp=1, fn=1 → P=R=0.5 → F1=0.5.
        let p = multilabel_f1(&pred, &targ);
        assert!((p.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_at_k_counts_window_hits() {
        let pred = vec![5, 9, 3];
        let windows = vec![vec![1, 2, 5], vec![4, 4, 4], vec![3]];
        let acc = accuracy_at_k(&pred, &windows);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 10).len(), 4);
    }
}
