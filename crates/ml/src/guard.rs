//! Training-loop resilience: weight checkpointing with NaN/divergence
//! rollback.
//!
//! Small-model training is usually stable, but a hostile trace (corrupted
//! records, adversarial address patterns) or an aggressive learning rate
//! can blow a loss up to `inf`/`NaN` mid-run — and one non-finite update
//! poisons every weight it touches. A [`TrainGuard`] snapshots the guarded
//! modules' parameters every `checkpoint_interval` steps; when the caller
//! reports a non-finite (or diverging) loss, the guard restores the last
//! snapshot, halves the learning rate, and lets training continue from
//! known-good weights. After `max_rollbacks` restores the guard reports
//! itself exhausted so the caller can stop wasting epochs.

use crate::layers::Module;

/// Deep copy of one module's parameter state (weights + Adam moments).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    tensors: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)>, // (w, m, v) per Param
}

/// Captures the current parameters of `module`.
pub fn snapshot(module: &mut dyn Module) -> Snapshot {
    let mut tensors = Vec::new();
    module.for_each_param(&mut |p| {
        tensors.push((p.w.data.clone(), p.m.clone(), p.v.clone()));
    });
    Snapshot { tensors }
}

/// Re-captures `module` into an existing snapshot, reusing its buffers when
/// shapes match. Training loops checkpoint every few steps; copying into the
/// previous snapshot's allocations makes that steady state allocation-free.
/// Falls back to a fresh [`snapshot`] if the layout changed.
pub fn snapshot_into(module: &mut dyn Module, snap: &mut Snapshot) {
    let mut i = 0usize;
    let mut ok = true;
    module.for_each_param(&mut |p| {
        match snap.tensors.get_mut(i) {
            Some((w, m, v)) if ok && w.len() == p.w.data.len() => {
                w.copy_from_slice(&p.w.data);
                m.copy_from_slice(&p.m);
                v.copy_from_slice(&p.v);
            }
            _ => ok = false,
        }
        i += 1;
    });
    if !ok || i != snap.tensors.len() {
        *snap = snapshot(module);
    }
}

/// Restores `module`'s parameters from `snap`. Returns `false` (leaving the
/// module untouched beyond already-matching tensors) if the snapshot's
/// shape does not match the module.
pub fn restore(module: &mut dyn Module, snap: &Snapshot) -> bool {
    // Validate first: count and lengths must match.
    let mut lens = Vec::new();
    module.for_each_param(&mut |p| lens.push(p.w.data.len()));
    if lens.len() != snap.tensors.len()
        || lens
            .iter()
            .zip(snap.tensors.iter())
            .any(|(&l, (w, _, _))| l != w.len())
    {
        return false;
    }
    let mut i = 0usize;
    module.for_each_param(&mut |p| {
        let (w, m, v) = &snap.tensors[i];
        p.w.data.copy_from_slice(w);
        p.m.copy_from_slice(m);
        p.v.copy_from_slice(v);
        p.g.data.fill(0.0);
        i += 1;
    });
    true
}

/// What [`TrainGuard::observe`] decided about the step just taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardAction {
    /// Loss is sane; training proceeds.
    Continue,
    /// Loss was non-finite or diverging: weights were restored to the last
    /// checkpoint and the learning rate halved to `new_lr`.
    RolledBack { new_lr: f32 },
    /// Rollback budget exhausted; weights were restored one final time but
    /// the caller should stop training this model.
    Exhausted,
}

/// NaN/divergence watchdog for one family of modules trained together.
#[derive(Debug, Clone)]
pub struct TrainGuard {
    /// Steps between checkpoints.
    pub checkpoint_interval: usize,
    /// Rollbacks allowed before the guard declares the run unsalvageable.
    pub max_rollbacks: u32,
    /// A finite loss above this absolute value counts as divergence.
    pub divergence_limit: f32,
    steps: usize,
    since_checkpoint: usize,
    pub rollbacks: u32,
    snaps: Vec<Snapshot>,
}

impl TrainGuard {
    pub fn new(checkpoint_interval: usize) -> Self {
        TrainGuard {
            checkpoint_interval: checkpoint_interval.max(1),
            max_rollbacks: 8,
            divergence_limit: 1e6,
            steps: 0,
            since_checkpoint: usize::MAX, // force a checkpoint on first observe
            rollbacks: 0,
            snaps: Vec::new(),
        }
    }

    /// Whether the rollback budget is spent.
    pub fn exhausted(&self) -> bool {
        self.rollbacks >= self.max_rollbacks
    }

    /// Steps observed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    fn checkpoint(&mut self, modules: &mut [&mut dyn Module]) {
        if self.snaps.len() == modules.len() {
            for (m, s) in modules.iter_mut().zip(self.snaps.iter_mut()) {
                snapshot_into(*m, s);
            }
        } else {
            self.snaps = modules.iter_mut().map(|m| snapshot(*m)).collect();
        }
        self.since_checkpoint = 0;
    }

    fn rollback(&mut self, modules: &mut [&mut dyn Module]) {
        for (m, s) in modules.iter_mut().zip(self.snaps.iter()) {
            restore(*m, s);
        }
    }

    /// Reports the loss of the step just applied to `modules`, with `lr` as
    /// the live learning rate (halved in place on rollback). Checkpoints on
    /// schedule when the loss is sane; restores and halves `lr` when it is
    /// not.
    pub fn observe(
        &mut self,
        loss: f32,
        modules: &mut [&mut dyn Module],
        lr: &mut f32,
    ) -> GuardAction {
        self.steps += 1;
        let bad = !loss.is_finite() || loss.abs() > self.divergence_limit;
        if bad {
            if self.snaps.is_empty() {
                // Nothing to restore (first-step blowup): halve and go on.
                *lr *= 0.5;
                self.rollbacks += 1;
            } else {
                self.rollback(modules);
                *lr *= 0.5;
                self.rollbacks += 1;
            }
            return if self.exhausted() {
                GuardAction::Exhausted
            } else {
                GuardAction::RolledBack { new_lr: *lr }
            };
        }
        self.since_checkpoint = self.since_checkpoint.saturating_add(1);
        if self.since_checkpoint >= self.checkpoint_interval {
            self.checkpoint(modules);
        }
        GuardAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::tensor::{rng, Matrix};

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut r = rng(1);
        let mut l = Linear::new(3, 2, &mut r);
        let before = l.w.w.data.clone();
        let snap = snapshot(&mut l);
        for x in l.w.w.data.iter_mut() {
            *x = f32::NAN;
        }
        assert!(restore(&mut l, &snap));
        assert_eq!(l.w.w.data, before);
        assert!(l.w.w.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn snapshot_into_matches_fresh_snapshot() {
        let mut r = rng(7);
        let mut l = Linear::new(3, 2, &mut r);
        let mut snap = snapshot(&mut l);
        l.w.w.data[0] = 42.0;
        snapshot_into(&mut l, &mut snap);
        let fresh = snapshot(&mut l);
        assert_eq!(snap.tensors, fresh.tensors);
        // A layout change falls back to rebuilding.
        let mut big = Linear::new(5, 5, &mut r);
        snapshot_into(&mut big, &mut snap);
        assert_eq!(snap.tensors, snapshot(&mut big).tensors);
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let mut r = rng(2);
        let mut small = Linear::new(2, 2, &mut r);
        let mut big = Linear::new(4, 4, &mut r);
        let snap = snapshot(&mut small);
        assert!(!restore(&mut big, &snap));
    }

    #[test]
    fn nan_loss_rolls_back_and_halves_lr() {
        let mut r = rng(3);
        let mut l = Linear::new(2, 2, &mut r);
        let mut guard = TrainGuard::new(1);
        let mut lr = 0.1f32;
        // Healthy step: checkpoints.
        assert_eq!(
            guard.observe(0.5, &mut [&mut l], &mut lr),
            GuardAction::Continue
        );
        let good = l.w.w.data.clone();
        // Poison the weights, then report a NaN loss.
        for x in l.w.w.data.iter_mut() {
            *x = f32::INFINITY;
        }
        let action = guard.observe(f32::NAN, &mut [&mut l], &mut lr);
        assert_eq!(action, GuardAction::RolledBack { new_lr: 0.05 });
        assert_eq!(l.w.w.data, good, "weights not restored");
        assert_eq!(lr, 0.05);
        assert_eq!(guard.rollbacks, 1);
    }

    #[test]
    fn divergence_counts_as_bad() {
        let mut r = rng(4);
        let mut l = Linear::new(2, 2, &mut r);
        let mut guard = TrainGuard::new(1);
        let mut lr = 0.1f32;
        guard.observe(1.0, &mut [&mut l], &mut lr);
        let action = guard.observe(1e9, &mut [&mut l], &mut lr);
        assert!(matches!(action, GuardAction::RolledBack { .. }));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut r = rng(5);
        let mut l = Linear::new(2, 2, &mut r);
        let mut guard = TrainGuard::new(1);
        guard.max_rollbacks = 3;
        let mut lr = 0.1f32;
        guard.observe(1.0, &mut [&mut l], &mut lr);
        let mut last = GuardAction::Continue;
        for _ in 0..3 {
            last = guard.observe(f32::NAN, &mut [&mut l], &mut lr);
        }
        assert_eq!(last, GuardAction::Exhausted);
        assert!(guard.exhausted());
        // lr halved three times.
        assert!((lr - 0.0125).abs() < 1e-6);
    }

    #[test]
    fn checkpoints_follow_the_interval() {
        let mut r = rng(6);
        let mut l = Linear::new(2, 2, &mut r);
        let mut guard = TrainGuard::new(4);
        let mut lr = 0.1f32;
        // First observe always checkpoints; mutate, then three more sane
        // steps (no checkpoint yet), then a NaN: restore goes to the state
        // at step 1, not the latest.
        guard.observe(1.0, &mut [&mut l], &mut lr);
        let at_checkpoint = l.w.w.data.clone();
        l.w.w.data[0] += 1.0;
        for _ in 0..2 {
            guard.observe(1.0, &mut [&mut l], &mut lr);
        }
        guard.observe(f32::NAN, &mut [&mut l], &mut lr);
        assert_eq!(l.w.w.data, at_checkpoint);
        let _ = Matrix::zeros(1, 1);
    }
}
