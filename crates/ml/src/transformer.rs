//! Transformer encoder layer (Eq. 9-10): multi-head self-attention and a
//! point-wise feed-forward network, each wrapped in a residual connection
//! and layer normalization (post-norm, as in the original architecture the
//! paper cites).

use crate::arena::ScratchArena;
use crate::attention::MultiHeadAttention;
use crate::layers::{LayerNorm, Linear, Module, Param, Relu};
use crate::tensor::Matrix;
use rand_chacha::ChaCha8Rng;

/// Point-wise feed-forward network `FFN(x) = max(0, x W1 + b1) W2 + b2`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    pub fc1: Linear,
    pub fc2: Linear,
    relu: Relu,
}

impl FeedForward {
    pub fn new(dim: usize, hidden: usize, rng: &mut ChaCha8Rng) -> Self {
        FeedForward {
            fc1: Linear::new(dim, hidden, rng),
            fc2: Linear::new(hidden, dim, rng),
            relu: Relu::default(),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let h = self.fc1.forward(x);
        let h = self.relu.forward(&h);
        self.fc2.forward(&h)
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.fc2.infer(&Relu::infer(&self.fc1.infer(x)))
    }

    /// Inference-only forward through arena-owned scratch buffers.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let mut h = self.fc1.infer_in(x, s);
        Relu::infer_inplace(&mut h);
        let y = self.fc2.infer_in(&h, s);
        s.give(h);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let dh = self.fc2.backward(dy);
        let dh = self.relu.backward(&dh);
        self.fc1.backward(&dh)
    }
}

impl Module for FeedForward {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.for_each_param(f);
        self.fc2.for_each_param(f);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.fc1.for_each_param_ref(f);
        self.fc2.for_each_param_ref(f);
    }
}

/// One Transformer encoder layer:
/// `y = LN2(h + FFN(h))`, `h = LN1(x + MSA(x))`.
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    pub msa: MultiHeadAttention,
    pub ffn: FeedForward,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
}

impl TransformerLayer {
    /// `dim` must divide by `heads`; the FFN hidden size is `2 × dim`.
    pub fn new(dim: usize, heads: usize, rng: &mut ChaCha8Rng) -> Self {
        TransformerLayer {
            msa: MultiHeadAttention::new(dim, heads, rng),
            ffn: FeedForward::new(dim, 2 * dim, rng),
            ln1: LayerNorm::new(dim),
            ln2: LayerNorm::new(dim),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = self.msa.forward(x);
        h.add_assign(x);
        let h = self.ln1.forward(&h);
        let mut y = self.ffn.forward(&h);
        y.add_assign(&h);
        self.ln2.forward(&y)
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.msa.infer(x);
        h.add_assign(x);
        let h = self.ln1.infer(&h);
        let mut y = self.ffn.infer(&h);
        y.add_assign(&h);
        self.ln2.infer(&y)
    }

    /// Inference-only forward through arena-owned scratch buffers.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let mut h = self.msa.infer_in(x, s);
        h.add_assign(x);
        self.ln1.infer_inplace(&mut h);
        let mut y = self.ffn.infer_in(&h, s);
        y.add_assign(&h);
        self.ln2.infer_inplace(&mut y);
        s.give(h);
        y
    }

    /// Batched inference over `batch` stacked sequences: attention is
    /// confined per sequence (see
    /// [`MultiHeadAttention::infer_batch_in`]); the FFN and layer norms
    /// are row-wise, so they fuse across the whole stack for free.
    /// Bit-identical to per-sequence [`TransformerLayer::infer_in`].
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        let mut h = self.msa.infer_batch_in(x, batch, s);
        h.add_assign(x);
        self.ln1.infer_inplace(&mut h);
        let mut y = self.ffn.infer_in(&h, s);
        y.add_assign(&h);
        self.ln2.infer_inplace(&mut y);
        s.give(h);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let d = self.ln2.backward(dy);
        // y = ffn(h) + h
        let mut dh = self.ffn.backward(&d);
        dh.add_assign(&d);
        let d = self.ln1.backward(&dh);
        // h = msa(x) + x
        let mut dx = self.msa.backward(&d);
        dx.add_assign(&d);
        dx
    }
}

impl Module for TransformerLayer {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.msa.for_each_param(f);
        self.ffn.for_each_param(f);
        self.ln1.for_each_param(f);
        self.ln2.for_each_param(f);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.msa.for_each_param_ref(f);
        self.ffn.for_each_param_ref(f);
        self.ln1.for_each_param_ref(f);
        self.ln2.for_each_param_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;

    #[test]
    fn feed_forward_shapes() {
        let mut r = rng(1);
        let mut ffn = FeedForward::new(8, 16, &mut r);
        let x = Matrix::xavier(5, 8, &mut r);
        let y = ffn.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 8));
    }

    #[test]
    fn transformer_layer_preserves_shape() {
        let mut r = rng(2);
        let mut t = TransformerLayer::new(8, 2, &mut r);
        let x = Matrix::xavier(4, 8, &mut r);
        let y = t.forward(&x);
        assert_eq!((y.rows, y.cols), (4, 8));
        // Output is layer-normalized per row.
        for row in 0..4 {
            let mean: f32 = y.row(row).iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 0.2, "post-LN mean {mean}");
        }
    }

    #[test]
    fn transformer_gradient_matches_finite_difference() {
        let mut r = rng(3);
        let mut t = TransformerLayer::new(4, 2, &mut r);
        let x = Matrix::xavier(3, 4, &mut r);
        let w = Matrix::xavier(3, 4, &mut r);
        let _ = t.forward(&x);
        let dx = t.backward(&w);
        let loss = |m: &Matrix| -> f32 {
            t.infer(m)
                .data
                .iter()
                .zip(w.data.iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for i in [0usize, 2, 5, 9, 11] {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 0.1,
                "idx {i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut r = rng(4);
        let mut t = TransformerLayer::new(8, 4, &mut r);
        let x = Matrix::xavier(3, 8, &mut r);
        let a = t.forward(&x);
        let b = t.infer(&x);
        for (p, q) in a.data.iter().zip(b.data.iter()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn arena_infer_is_bit_identical_and_allocation_free() {
        let mut r = rng(7);
        let t = TransformerLayer::new(8, 4, &mut r);
        let x = Matrix::xavier(3, 8, &mut r);
        let baseline = t.infer(&x);
        let mut s = crate::arena::ScratchArena::new();
        // Warmup round.
        let w = t.infer_in(&x, &mut s);
        assert_eq!(w.data, baseline.data, "arena path must be bit-identical");
        s.give(w);
        let (_, misses_after_warmup) = s.stats();
        for _ in 0..5 {
            let y = t.infer_in(&x, &mut s);
            assert_eq!(y.data, baseline.data);
            s.give(y);
        }
        let (_, misses) = s.stats();
        assert_eq!(
            misses, misses_after_warmup,
            "steady state must not allocate"
        );
    }

    #[test]
    fn ffn_gradient_matches_finite_difference() {
        let mut r = rng(5);
        let mut ffn = FeedForward::new(4, 8, &mut r);
        let x = Matrix::xavier(2, 4, &mut r);
        let w = Matrix::xavier(2, 4, &mut r);
        let _ = ffn.forward(&x);
        let dx = ffn.backward(&w);
        let eps = 1e-2f32;
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let f = |m: &Matrix| -> f32 {
                ffn.infer(m)
                    .data
                    .iter()
                    .zip(w.data.iter())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 5e-2,
                "idx {i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn param_count_is_consistent() {
        let mut r = rng(6);
        let t = TransformerLayer::new(8, 2, &mut r);
        // MSA: 2 heads × 3 × (8×4) + Wo 64 = 192 + 64 = 256.
        // FFN: 8×16 + 16 + 16×8 + 8 = 280. LN ×2: 32.
        assert_eq!(t.num_params(), 256 + 280 + 32);
    }
}
