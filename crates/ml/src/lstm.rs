//! LSTM layer with full backpropagation through time — the backbone of the
//! paper's baselines (Hashemi et al.'s Delta-LSTM and Voyager's two-model
//! predictor) and of the LSTM rows in Tables 6-7.

use crate::arena::ScratchArena;
use crate::layers::{Module, Param};
use crate::tensor::Matrix;
use rand_chacha::ChaCha8Rng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Single-layer LSTM. Gate order in the packed weight matrices: input,
/// forget, cell, output.
#[derive(Debug, Clone)]
pub struct Lstm {
    pub w_ih: Param, // [in, 4h]
    pub w_hh: Param, // [h, 4h]
    pub b: Param,    // [1, 4h]
    in_dim: usize,
    hidden: usize,
    cache: Vec<StepCache>,
}

impl Lstm {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut ChaCha8Rng) -> Self {
        let mut b = Param::zeros(1, 4 * hidden);
        // Forget-gate bias init to 1: standard trick for gradient flow.
        for j in hidden..2 * hidden {
            b.w.data[j] = 1.0;
        }
        Lstm {
            w_ih: Param::xavier(in_dim, 4 * hidden, rng),
            w_hh: Param::xavier(hidden, 4 * hidden, rng),
            b,
            in_dim,
            hidden,
            cache: Vec::new(),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Packed gate pre-activations `z = b + x W_ih + h_prev W_hh`.
    ///
    /// The input-side saxpy keeps its zero-skip: delta-history features are
    /// sparse 0/1 bitmaps, so skipping zero inputs wins despite the branch.
    /// The recurrent side is dense after the first timestep and runs
    /// branch-free so it vectorizes.
    fn gates_into(&self, x: &[f32], h_prev: &[f32], z: &mut [f32]) {
        z.copy_from_slice(&self.b.w.data);
        for (k, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.w_ih.w.row(k);
            for (zv, &wv) in z.iter_mut().zip(row.iter()) {
                *zv += xv * wv;
            }
        }
        for (k, &hv) in h_prev.iter().enumerate() {
            let row = self.w_hh.w.row(k);
            for (zv, &wv) in z.iter_mut().zip(row.iter()) {
                *zv += hv * wv;
            }
        }
    }

    fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> (StepCache, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let mut z = vec![0.0; 4 * h];
        self.gates_into(x, h_prev, &mut z);
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for j in 0..h {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[h + j]);
            g[j] = z[2 * h + j].tanh();
            o[j] = sigmoid(z[3 * h + j]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for j in 0..h {
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            tanh_c[j] = c[j].tanh();
            h_new[j] = o[j] * tanh_c[j];
        }
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (cache, h_new, c)
    }

    /// Runs the sequence `x` ([S, in_dim]) from zero state; returns the
    /// hidden states [S, hidden]. Caches for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        self.cache.clear();
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Matrix::zeros(x.rows, self.hidden);
        for t in 0..x.rows {
            let (cache, h_new, c_new) = self.step(x.row(t), &h, &c);
            out.row_mut(t).copy_from_slice(&h_new);
            self.cache.push(cache);
            h = h_new;
            c = c_new;
        }
        out
    }

    /// Inference without caching.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Matrix::zeros(x.rows, self.hidden);
        for t in 0..x.rows {
            let (_cache, h_new, c_new) = self.step(x.row(t), &h, &c);
            out.row_mut(t).copy_from_slice(&h_new);
            h = h_new;
            c = c_new;
        }
        out
    }

    /// Inference through arena-owned buffers: the recurrence updates the
    /// hidden and cell state in place, so the steady state allocates
    /// nothing. Bit-identical to [`Lstm::infer`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        let hd = self.hidden;
        let mut out = s.take(x.rows, hd);
        let mut hm = s.take(1, hd);
        let mut cm = s.take(1, hd);
        let mut zm = s.take(1, 4 * hd);
        for t in 0..x.rows {
            // h_prev is fully folded into z before h is overwritten, and
            // c[j] only reads its own slot, so in-place update is exact.
            let (h_prev, z) = (&hm.data, &mut zm.data);
            self.gates_into(x.row(t), h_prev, z);
            for j in 0..hd {
                let i = sigmoid(z[j]);
                let f = sigmoid(z[hd + j]);
                let g = z[2 * hd + j].tanh();
                let o = sigmoid(z[3 * hd + j]);
                let c = f * cm.data[j] + i * g;
                cm.data[j] = c;
                hm.data[j] = o * c.tanh();
            }
            out.row_mut(t).copy_from_slice(&hm.data);
        }
        s.give(hm);
        s.give(cm);
        s.give(zm);
        out
    }

    /// Batched inference over `batch` stacked sequences (`x` is
    /// `[batch * seq, in_dim]`, each sequence contiguous): every sequence
    /// runs its own recurrence from zero state, advanced in lock-step so
    /// the gate weights stream through cache once per timestep instead of
    /// once per sequence. Bit-identical to per-sequence [`Lstm::infer_in`].
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        assert!(
            batch > 0 && x.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.rows / batch;
        let hd = self.hidden;
        let mut out = s.take(x.rows, hd);
        let mut hm = s.take(batch, hd);
        let mut cm = s.take(batch, hd);
        let mut zm = s.take(1, 4 * hd);
        for t in 0..seq {
            for b in 0..batch {
                self.gates_into(x.row(b * seq + t), hm.row(b), &mut zm.data);
                let z = &zm.data;
                for j in 0..hd {
                    let i = sigmoid(z[j]);
                    let f = sigmoid(z[hd + j]);
                    let g = z[2 * hd + j].tanh();
                    let o = sigmoid(z[3 * hd + j]);
                    let c = f * cm.at(b, j) + i * g;
                    *cm.at_mut(b, j) = c;
                    *hm.at_mut(b, j) = o * c.tanh();
                }
                out.row_mut(b * seq + t).copy_from_slice(hm.row(b));
            }
        }
        s.give(hm);
        s.give(cm);
        s.give(zm);
        out
    }

    /// BPTT over the cached sequence. `d_out` is [S, hidden]; returns
    /// gradient w.r.t. the inputs [S, in_dim].
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let h = self.hidden;
        let s = self.cache.len();
        assert_eq!(d_out.rows, s);
        let mut dx_all = Matrix::zeros(s, self.in_dim);
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        for t in (0..s).rev() {
            let cache = &self.cache[t];
            // Total gradient into h_t.
            let mut dh: Vec<f32> = d_out.row(t).to_vec();
            for (a, b) in dh.iter_mut().zip(dh_next.iter()) {
                *a += b;
            }
            // h = o * tanh(c)
            let mut dz = vec![0.0f32; 4 * h];
            let mut dc = vec![0.0f32; h];
            for j in 0..h {
                let do_ = dh[j] * cache.tanh_c[j];
                dc[j] = dh[j] * cache.o[j] * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]) + dc_next[j];
                let di = dc[j] * cache.g[j];
                let df = dc[j] * cache.c_prev[j];
                let dg = dc[j] * cache.i[j];
                dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
                dz[h + j] = df * cache.f[j] * (1.0 - cache.f[j]);
                dz[2 * h + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
                dz[3 * h + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
            }
            // Parameter grads: dW_ih += x^T dz ; dW_hh += h_prev^T dz ; db += dz.
            for (k, &xv) in cache.x.iter().enumerate() {
                if xv != 0.0 {
                    let row = self.w_ih.g.row_mut(k);
                    for (gv, &dv) in row.iter_mut().zip(dz.iter()) {
                        *gv += xv * dv;
                    }
                }
            }
            for (k, &hv) in cache.h_prev.iter().enumerate() {
                if hv != 0.0 {
                    let row = self.w_hh.g.row_mut(k);
                    for (gv, &dv) in row.iter_mut().zip(dz.iter()) {
                        *gv += hv * dv;
                    }
                }
            }
            for (gv, &dv) in self.b.g.data.iter_mut().zip(dz.iter()) {
                *gv += dv;
            }
            // Input and recurrent grads: dx = dz W_ih^T ; dh_prev = dz W_hh^T.
            let dxr = dx_all.row_mut(t);
            for (k, dxv) in dxr.iter_mut().enumerate() {
                let row = self.w_ih.w.row(k);
                *dxv = dz.iter().zip(row.iter()).map(|(a, b)| a * b).sum();
            }
            for (k, dhv) in dh_next.iter_mut().enumerate() {
                let row = self.w_hh.w.row(k);
                *dhv = dz.iter().zip(row.iter()).map(|(a, b)| a * b).sum();
            }
            // dc_prev = dc * f
            for j in 0..h {
                dc_next[j] = dc[j] * cache.f[j];
            }
        }
        dx_all
    }
}

impl Module for Lstm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_ih);
        f(&mut self.w_hh);
        f(&mut self.b);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w_ih);
        f(&self.w_hh);
        f(&self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;

    #[test]
    fn forward_shapes_and_bounds() {
        let mut r = rng(1);
        let mut l = Lstm::new(3, 5, &mut r);
        let x = Matrix::xavier(7, 3, &mut r);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (7, 5));
        // h = o*tanh(c) ∈ (-1, 1).
        assert!(y.data.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn infer_matches_forward() {
        let mut r = rng(2);
        let mut l = Lstm::new(4, 6, &mut r);
        let x = Matrix::xavier(5, 4, &mut r);
        let a = l.forward(&x);
        let b = l.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_infer_matches_infer_bit_exactly() {
        let mut r = rng(8);
        let l = Lstm::new(4, 6, &mut r);
        let x = Matrix::xavier(5, 4, &mut r);
        let baseline = l.infer(&x);
        let mut s = crate::arena::ScratchArena::new();
        for _ in 0..3 {
            let y = l.infer_in(&x, &mut s);
            assert_eq!(y.data, baseline.data);
            s.give(y);
        }
        let (_, misses) = s.stats();
        assert_eq!(misses, 4, "only the warmup round may allocate");
    }

    #[test]
    fn state_carries_across_time() {
        // Same input at each step should give different outputs early in the
        // sequence (state accumulates).
        let mut r = rng(3);
        let mut l = Lstm::new(2, 4, &mut r);
        let x = Matrix::from_vec(3, 2, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let y = l.forward(&x);
        assert_ne!(y.row(0), y.row(1));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut r = rng(4);
        let mut l = Lstm::new(3, 4, &mut r);
        let x = Matrix::xavier(4, 3, &mut r);
        let w = Matrix::xavier(4, 4, &mut r);
        let _ = l.forward(&x);
        let dx = l.backward(&w);
        let eps = 1e-2f32;
        let loss = |m: &Matrix| -> f32 {
            l.infer(m)
                .data
                .iter()
                .zip(w.data.iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 2e-2,
                "idx {i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut r = rng(5);
        let mut l = Lstm::new(2, 3, &mut r);
        let x = Matrix::xavier(3, 2, &mut r);
        let w = Matrix::xavier(3, 3, &mut r);
        let _ = l.forward(&x);
        let _ = l.backward(&w);
        let eps = 1e-2f32;
        let loss = |m: &Lstm| -> f32 {
            m.infer(&x)
                .data
                .iter()
                .zip(w.data.iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        for (pi, pj) in [(0usize, 0usize), (1, 5), (0, 11)] {
            let mut lp = l.clone();
            *lp.w_ih.w.at_mut(pi, pj) += eps;
            let mut lm = l.clone();
            *lm.w_ih.w.at_mut(pi, pj) -= eps;
            let num = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            let analytic = l.w_ih.g.at(pi, pj);
            assert!(
                (num - analytic).abs() < 2e-2,
                "w_ih[{pi}][{pj}]: {num} vs {analytic}"
            );
        }
    }

    #[test]
    fn lstm_can_learn_a_toy_pattern() {
        // Learn to output the previous input sign: y_t = sign-ish of x_{t-1}.
        use crate::optim::Adam;
        let mut r = rng(6);
        let mut l = Lstm::new(1, 8, &mut r);
        let mut head = crate::layers::Linear::new(8, 1, &mut r);
        let mut opt = Adam::new(0.02);
        let seq: Vec<f32> = (0..20)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let x = Matrix::from_vec(seq.len(), 1, seq.clone());
        // Target: shifted input.
        let mut target = vec![0.0f32];
        target.extend_from_slice(&seq[..seq.len() - 1]);
        let mut last_loss = f32::INFINITY;
        for _ in 0..150 {
            l.zero_grad();
            head.zero_grad();
            let h = l.forward(&x);
            let y = head.forward(&h);
            let mut d = Matrix::zeros(y.rows, 1);
            let mut loss = 0.0;
            for t in 0..y.rows {
                let e = y.data[t] - target[t];
                loss += 0.5 * e * e;
                d.data[t] = e;
            }
            let dh = head.backward(&d);
            let _ = l.backward(&dh);
            opt.step(&mut l);
            opt.step(&mut head);
            last_loss = loss;
        }
        assert!(last_loss < 1.0, "loss did not drop: {last_loss}");
    }

    #[test]
    fn param_count() {
        let mut r = rng(7);
        let l = Lstm::new(10, 20, &mut r);
        assert_eq!(l.num_params(), 10 * 80 + 20 * 80 + 80);
    }
}
