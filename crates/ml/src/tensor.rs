//! Minimal dense 2-D tensor (row-major `f32` matrix) with the operations
//! the neural-network layers need: matmul in the three orientations used by
//! backprop, elementwise arithmetic, row-wise softmax, and random init.
//!
//! Model dimensions in the paper are tiny (Table 5: attention dim 64,
//! Transformer dim 128, history T = 9), so all working sets fit in L1/L2 and
//! the kernels optimize for register reuse rather than cache blocking: each
//! matmul orientation has a register-tiled fast path plus an `_into` variant
//! that writes to a caller-owned buffer (see [`crate::arena::ScratchArena`]),
//! and a naive `_ref` twin that serves as ground truth for property tests
//! and as the calibration baseline for the perf runner.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier-uniform initialization in ±sqrt(6/(fan_in+fan_out)).
    pub fn xavier(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`: `[m,k] × [k,n] → [m,n]`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into a caller-owned buffer (no allocation).
    ///
    /// Register-tiled: 4 output rows × 4 reduction steps per inner iteration,
    /// so each output row is loaded/stored once per four k-steps and each B
    /// panel load is reused across four rows. The dense kernel deliberately
    /// has no zero-skip branch: skipping `a == 0.0` silently changed results
    /// for `-0.0`/NaN operands and defeated vectorization.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul out shape"
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.data.fill(0.0);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let mut i = 0;
        while i + 4 <= m {
            let a_block = &self.data[i * k..(i + 4) * k];
            let (ar0, rest) = a_block.split_at(k);
            let (ar1, rest) = rest.split_at(k);
            let (ar2, ar3) = rest.split_at(k);
            let o_block = &mut out.data[i * n..(i + 4) * n];
            let (o0, rest) = o_block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let mut kk = 0;
            while kk + 4 <= k {
                let (a00, a01, a02, a03) = (ar0[kk], ar0[kk + 1], ar0[kk + 2], ar0[kk + 3]);
                let (a10, a11, a12, a13) = (ar1[kk], ar1[kk + 1], ar1[kk + 2], ar1[kk + 3]);
                let (a20, a21, a22, a23) = (ar2[kk], ar2[kk + 1], ar2[kk + 2], ar2[kk + 3]);
                let (a30, a31, a32, a33) = (ar3[kk], ar3[kk + 1], ar3[kk + 2], ar3[kk + 3]);
                let panel = &other.data[kk * n..(kk + 4) * n];
                let (b0, rest) = panel.split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for j in 0..n {
                    let (p0, p1, p2, p3) = (b0[j], b1[j], b2[j], b3[j]);
                    o0[j] += a00 * p0 + a01 * p1 + a02 * p2 + a03 * p3;
                    o1[j] += a10 * p0 + a11 * p1 + a12 * p2 + a13 * p3;
                    o2[j] += a20 * p0 + a21 * p1 + a22 * p2 + a23 * p3;
                    o3[j] += a30 * p0 + a31 * p1 + a32 * p2 + a33 * p3;
                }
                kk += 4;
            }
            while kk < k {
                let (a0, a1, a2, a3) = (ar0[kk], ar1[kk], ar2[kk], ar3[kk]);
                let b0 = &other.data[kk * n..(kk + 1) * n];
                for j in 0..n {
                    o0[j] += a0 * b0[j];
                    o1[j] += a1 * b0[j];
                    o2[j] += a2 * b0[j];
                    o3[j] += a3 * b0[j];
                }
                kk += 1;
            }
            i += 4;
        }
        while i < m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o0 = &mut out.data[i * n..(i + 1) * n];
            let mut kk = 0;
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let panel = &other.data[kk * n..(kk + 4) * n];
                let (b0, rest) = panel.split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for j in 0..n {
                    o0[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                kk += 4;
            }
            while kk < k {
                let a0 = a_row[kk];
                let b0 = &other.data[kk * n..(kk + 1) * n];
                for j in 0..n {
                    o0[j] += a0 * b0[j];
                }
                kk += 1;
            }
            i += 1;
        }
    }

    /// `self @ other^T`: `[m,k] × [n,k] → [m,n]`. Used for `dX = dY @ W^T`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_bt_into(other, &mut out);
        out
    }

    /// `self @ other^T` written into a caller-owned buffer (no allocation).
    /// Both operands are traversed along contiguous rows, so each output
    /// element is a dot product; four independent accumulators expose
    /// instruction-level parallelism that a strictly-ordered sum hides.
    pub fn matmul_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_bt shape");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_bt out shape"
        );
        let (m, n) = (self.rows, other.rows);
        for i in 0..m {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o = dot4(a_row, other.row(j));
            }
        }
    }

    /// `self^T @ other`: `[k,m] × [k,n] → [m,n]`. Used for `dW = X^T @ dY`.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_into(other, &mut out);
        out
    }

    /// `self^T @ other` written into a caller-owned buffer (no allocation).
    /// Rank-1 update form, unrolled four reduction rows at a time so each
    /// output row is touched once per four k-steps.
    pub fn matmul_at_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_at shape");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_at out shape"
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        out.data.fill(0.0);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let mut kk = 0;
        while kk + 4 <= k {
            let quad = &self.data[kk * m..(kk + 4) * m];
            let (ar0, rest) = quad.split_at(m);
            let (ar1, rest) = rest.split_at(m);
            let (ar2, ar3) = rest.split_at(m);
            let panel = &other.data[kk * n..(kk + 4) * n];
            let (b0, rest) = panel.split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, b3) = rest.split_at(n);
            for i in 0..m {
                let (a0, a1, a2, a3) = (ar0[i], ar1[i], ar2[i], ar3[i]);
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    o_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
            }
            kk += 4;
        }
        while kk < k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    o_row[j] += a * b_row[j];
                }
            }
            kk += 1;
        }
    }

    /// Naive `ikj` reference for `matmul` — the seed's kernel minus its
    /// zero-skip branch. Ground truth for the property tests and the
    /// calibration baseline for the perf runner; identical to the tiled
    /// kernel up to f32 summation order.
    pub fn matmul_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Naive reference for `matmul_bt` (strictly sequential dot products).
    pub fn matmul_bt_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt shape");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Naive reference for `matmul_at`.
    pub fn matmul_at_ref(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at shape");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *a += b;
            }
        }
    }

    /// Row-wise numerically-stable softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// Row-wise numerically-stable softmax, computed in place (no
    /// allocation; used by the arena-backed inference path).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Backward through row-wise softmax: given `y = softmax(x)` and
    /// `dL/dy`, returns `dL/dx = y ⊙ (dy - (dy·y) 1)` per row.
    pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(y.rows, dy.rows);
        assert_eq!(y.cols, dy.cols);
        let mut dx = Matrix::zeros(y.rows, y.cols);
        for r in 0..y.rows {
            let yr = y.row(r);
            let dyr = dy.row(r);
            let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
            for c in 0..y.cols {
                dx.data[r * y.cols + c] = yr[c] * (dyr[c] - dot);
            }
        }
        dx
    }

    /// Frobenius norm (tests / gradient clipping).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates two matrices with equal `cols` along rows.
    pub fn vcat(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.cols);
        let mut data = Vec::with_capacity((a.rows + b.rows) * a.cols);
        data.extend_from_slice(&a.data);
        data.extend_from_slice(&b.data);
        Matrix::from_vec(a.rows + b.rows, a.cols, data)
    }

    /// Splits along rows at `r`, inverse of [`Matrix::vcat`].
    pub fn vsplit(&self, r: usize) -> (Matrix, Matrix) {
        assert!(r <= self.rows);
        let top = Matrix::from_vec(r, self.cols, self.data[..r * self.cols].to_vec());
        let bot = Matrix::from_vec(
            self.rows - r,
            self.cols,
            self.data[r * self.cols..].to_vec(),
        );
        (top, bot)
    }
}

/// Dot product with four independent accumulators. The partial sums are
/// combined in a fixed order, so results are deterministic run-to-run (they
/// differ from a strictly sequential sum only by f32 rounding).
#[inline]
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = [0.0f32; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        s[0] += x[0] * y[0];
        s[1] += x[1] * y[1];
        s[2] += x[2] * y[2];
        s[3] += x[3] * y[3];
    }
    let mut t = (s[0] + s[1]) + (s[2] + s[3]);
    for (x, y) in ra.iter().zip(rb.iter()) {
        t += x * y;
    }
    t
}

/// Deterministic RNG used throughout model init.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Standard sinusoidal positional encoding `[rows, dim]` (Vaswani et al.):
/// `PE[p, 2i] = sin(p / 10000^(2i/d))`, `PE[p, 2i+1] = cos(...)`. Being a
/// constant addition, it needs no backward pass — gradients flow through
/// unchanged. Sequence models built on pure attention are permutation-
/// invariant without it and cannot represent order.
pub fn positional_encoding(rows: usize, dim: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, dim);
    for p in 0..rows {
        for i in 0..dim {
            let angle = p as f32 / 10000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            m.data[p * dim + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut r = rng(1);
        let a = Matrix::xavier(4, 5, &mut r);
        let b = Matrix::xavier(3, 5, &mut r);
        let direct = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in direct.data.iter().zip(explicit.data.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut r = rng(2);
        let a = Matrix::xavier(5, 4, &mut r);
        let b = Matrix::xavier(5, 3, &mut r);
        let direct = a.matmul_at(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.data.iter().zip(explicit.data.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logit → larger probability.
        assert!(s.at(0, 2) > s.at(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]).softmax_rows();
        let b = Matrix::from_vec(1, 3, vec![101., 102., 103.]).softmax_rows();
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.05]);
        let dy = Matrix::from_vec(1, 4, vec![0.2, -0.1, 0.4, 0.9]);
        let y = x.softmax_rows();
        let dx = Matrix::softmax_rows_backward(&y, &dy);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let f = |m: &Matrix| -> f32 {
                m.softmax_rows()
                    .data
                    .iter()
                    .zip(dy.data.iter())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 1e-3,
                "i={i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn vcat_vsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(1, 2, vec![5., 6.]);
        let c = Matrix::vcat(&a, &b);
        assert_eq!(c.rows, 3);
        let (x, y) = c.vsplit(2);
        assert_eq!(x, a);
        assert_eq!(y, b);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut r = rng(3);
        let a = Matrix::xavier(3, 7, &mut r);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut r = rng(4);
        let a = Matrix::xavier(10, 10, &mut r);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(a.norm() > 0.1);
    }

    #[test]
    #[should_panic(expected = "matmul shape")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn tiled_kernels_match_reference_on_odd_shapes() {
        // 2×4 register tile: exercise every remainder combination.
        let mut r = rng(11);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (2, 4, 4),
            (9, 64, 64),
            (5, 6, 3),
        ] {
            let a = Matrix::xavier(m, k, &mut r);
            let b = Matrix::xavier(k, n, &mut r);
            let fast = a.matmul(&b);
            let slow = a.matmul_ref(&b);
            for (x, y) in fast.data.iter().zip(slow.data.iter()) {
                assert!((x - y).abs() < 1e-5, "({m},{k},{n}): {x} vs {y}");
            }
            let bt = Matrix::xavier(n, k, &mut r);
            for (x, y) in a
                .matmul_bt(&bt)
                .data
                .iter()
                .zip(a.matmul_bt_ref(&bt).data.iter())
            {
                assert!((x - y).abs() < 1e-5);
            }
            let at = Matrix::xavier(m, n, &mut r);
            let ta = Matrix::xavier(m, k, &mut r);
            for (x, y) in ta
                .matmul_at(&at)
                .data
                .iter()
                .zip(ta.matmul_at_ref(&at).data.iter())
            {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let mut r = rng(12);
        let a = Matrix::xavier(3, 6, &mut r);
        let b = Matrix::xavier(6, 4, &mut r);
        // Dirty buffer must be fully overwritten.
        let mut out = Matrix::from_vec(3, 4, vec![f32::NAN; 12]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data, a.matmul(&b).data);
        let bt = Matrix::xavier(4, 6, &mut r);
        let mut out2 = Matrix::from_vec(3, 4, vec![7.0; 12]);
        a.matmul_bt_into(&bt, &mut out2);
        assert_eq!(out2.data, a.matmul_bt(&bt).data);
        let at = Matrix::xavier(3, 5, &mut r);
        let mut out3 = Matrix::from_vec(6, 5, vec![-1.0; 30]);
        a.matmul_at_into(&at, &mut out3);
        assert_eq!(out3.data, a.matmul_at(&at).data);
    }

    #[test]
    fn empty_matrices_multiply_to_empty() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        assert_eq!(a.matmul(&b).data.len(), 0);
        let c = Matrix::zeros(2, 0);
        let d = Matrix::zeros(0, 4);
        let e = c.matmul(&d); // inner dim 0 → all zeros
        assert_eq!((e.rows, e.cols), (2, 4));
        assert!(e.data.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn dense_kernel_propagates_nan_through_zero() {
        // The old kernel skipped a == 0.0, which silently turned
        // 0 × NaN into 0 instead of NaN.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(a.matmul(&b).data[0].is_nan());
        let at = Matrix::from_vec(1, 1, vec![0.0]);
        let bn = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(at.matmul_at(&bn).data[0].is_nan());
    }

    #[test]
    fn softmax_inplace_matches_allocating() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let mut inplace = m.clone();
        inplace.softmax_rows_inplace();
        assert_eq!(inplace.data, m.softmax_rows().data);
    }

    #[test]
    fn add_bias_adds_rowwise() {
        let mut a = Matrix::zeros(2, 3);
        a.add_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }
}
