//! Minimal dense 2-D tensor (row-major `f32` matrix) with the operations
//! the neural-network layers need: matmul in the three orientations used by
//! backprop, elementwise arithmetic, row-wise softmax, and random init.
//!
//! Model dimensions in the paper are tiny (Table 5: attention dim 64,
//! Transformer dim 128, history T = 9), so a cache-friendly `ikj` matmul on
//! contiguous rows is all the performance this workload needs.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier-uniform initialization in ±sqrt(6/(fan_in+fan_out)).
    pub fn xavier(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`: [m,k] × [k,n] → [m,n].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T`: [m,k] × [n,k] → [m,n]. Used for `dX = dY @ W^T`.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt shape");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// `self^T @ other`: [k,m] × [k,n] → [m,n]. Used for `dW = X^T @ dY`.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at shape");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *a += b;
            }
        }
    }

    /// Row-wise numerically-stable softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Backward through row-wise softmax: given `y = softmax(x)` and
    /// `dL/dy`, returns `dL/dx = y ⊙ (dy - (dy·y) 1)` per row.
    pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(y.rows, dy.rows);
        assert_eq!(y.cols, dy.cols);
        let mut dx = Matrix::zeros(y.rows, y.cols);
        for r in 0..y.rows {
            let yr = y.row(r);
            let dyr = dy.row(r);
            let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
            for c in 0..y.cols {
                dx.data[r * y.cols + c] = yr[c] * (dyr[c] - dot);
            }
        }
        dx
    }

    /// Frobenius norm (tests / gradient clipping).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates two matrices with equal `cols` along rows.
    pub fn vcat(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.cols);
        let mut data = Vec::with_capacity((a.rows + b.rows) * a.cols);
        data.extend_from_slice(&a.data);
        data.extend_from_slice(&b.data);
        Matrix::from_vec(a.rows + b.rows, a.cols, data)
    }

    /// Splits along rows at `r`, inverse of [`Matrix::vcat`].
    pub fn vsplit(&self, r: usize) -> (Matrix, Matrix) {
        assert!(r <= self.rows);
        let top = Matrix::from_vec(r, self.cols, self.data[..r * self.cols].to_vec());
        let bot = Matrix::from_vec(
            self.rows - r,
            self.cols,
            self.data[r * self.cols..].to_vec(),
        );
        (top, bot)
    }
}

/// Deterministic RNG used throughout model init.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Standard sinusoidal positional encoding `[rows, dim]` (Vaswani et al.):
/// `PE[p, 2i] = sin(p / 10000^(2i/d))`, `PE[p, 2i+1] = cos(...)`. Being a
/// constant addition, it needs no backward pass — gradients flow through
/// unchanged. Sequence models built on pure attention are permutation-
/// invariant without it and cannot represent order.
pub fn positional_encoding(rows: usize, dim: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, dim);
    for p in 0..rows {
        for i in 0..dim {
            let angle = p as f32 / 10000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            m.data[p * dim + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut r = rng(1);
        let a = Matrix::xavier(4, 5, &mut r);
        let b = Matrix::xavier(3, 5, &mut r);
        let direct = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in direct.data.iter().zip(explicit.data.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut r = rng(2);
        let a = Matrix::xavier(5, 4, &mut r);
        let b = Matrix::xavier(5, 3, &mut r);
        let direct = a.matmul_at(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.data.iter().zip(explicit.data.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logit → larger probability.
        assert!(s.at(0, 2) > s.at(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]).softmax_rows();
        let b = Matrix::from_vec(1, 3, vec![101., 102., 103.]).softmax_rows();
        for (x, y) in a.data.iter().zip(b.data.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.05]);
        let dy = Matrix::from_vec(1, 4, vec![0.2, -0.1, 0.4, 0.9]);
        let y = x.softmax_rows();
        let dx = Matrix::softmax_rows_backward(&y, &dy);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let f = |m: &Matrix| -> f32 {
                m.softmax_rows()
                    .data
                    .iter()
                    .zip(dy.data.iter())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 1e-3,
                "i={i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn vcat_vsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(1, 2, vec![5., 6.]);
        let c = Matrix::vcat(&a, &b);
        assert_eq!(c.rows, 3);
        let (x, y) = c.vsplit(2);
        assert_eq!(x, a);
        assert_eq!(y, b);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut r = rng(3);
        let a = Matrix::xavier(3, 7, &mut r);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut r = rng(4);
        let a = Matrix::xavier(10, 10, &mut r);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(a.norm() > 0.1);
    }

    #[test]
    #[should_panic(expected = "matmul shape")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_bias_adds_rowwise() {
        let mut a = Matrix::zeros(2, 3);
        a.add_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }
}
