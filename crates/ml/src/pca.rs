//! Principal Component Analysis via covariance eigendecomposition (cyclic
//! Jacobi rotations). Used by the Figure 2 motivation harness: projecting
//! windows of memory accesses / PCs onto their top three components shows
//! the per-phase clustering the paper builds on.

use crate::tensor::Matrix;

/// Result of a PCA fit.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Feature means subtracted before projection.
    pub mean: Vec<f32>,
    /// Principal axes, one per row, sorted by descending eigenvalue.
    pub components: Matrix,
    /// Variance explained by each component.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits `k` components to `data` ([n_samples, n_features]).
    pub fn fit(data: &Matrix, k: usize) -> Pca {
        let (n, d) = (data.rows, data.cols);
        assert!(n > 1, "need at least two samples");
        assert!(k <= d, "k > feature count");
        let mut mean = vec![0.0f32; d];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(data.row(r).iter()) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f32;
        }
        // Covariance (d × d), double precision accumulate for stability.
        let mut cov = vec![0.0f64; d * d];
        for r in 0..n {
            let row = data.row(r);
            for i in 0..d {
                let xi = (row[i] - mean[i]) as f64;
                for j in i..d {
                    cov[i * d + j] += xi * (row[j] - mean[j]) as f64;
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov[i * d + j] / (n - 1) as f64;
                cov[i * d + j] = v;
                cov[j * d + i] = v;
            }
        }
        let (eigvals, eigvecs) = jacobi_eigen(&mut cov, d);
        // Sort by descending eigenvalue.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigvals[b].total_cmp(&eigvals[a]));
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for (out_r, &src) in order.iter().take(k).enumerate() {
            for c in 0..d {
                components.data[out_r * d + c] = eigvecs[c * d + src] as f32;
            }
            explained.push(eigvals[src].max(0.0) as f32);
        }
        Pca {
            mean,
            components,
            explained_variance: explained,
        }
    }

    /// Projects samples onto the fitted components → [n_samples, k].
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let k = self.components.rows;
        let d = self.components.cols;
        assert_eq!(data.cols, d);
        let mut out = Matrix::zeros(data.rows, k);
        for r in 0..data.rows {
            let row = data.row(r);
            for c in 0..k {
                let comp = self.components.row(c);
                let mut acc = 0.0f32;
                for i in 0..d {
                    acc += (row[i] - self.mean[i]) * comp[i];
                }
                out.data[r * k + c] = acc;
            }
        }
        out
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (column-major
/// eigenvectors). Returns (eigenvalues, eigenvectors).
fn jacobi_eigen(a: &mut [f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = vec![0.0f64; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    for _sweep in 0..64 {
        let mut off = 0.0f64;
        for i in 0..d {
            for j in (i + 1)..d {
                off += a[i * d + j] * a[i * d + j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;
    use rand::Rng;

    #[test]
    fn recovers_dominant_direction() {
        // Points along y = 2x with small noise: first component ≈ (1,2)/√5.
        let mut r = rng(1);
        let mut data = Matrix::zeros(200, 2);
        for i in 0..200 {
            let t: f32 = r.gen_range(-1.0..1.0);
            data.data[i * 2] = t + r.gen_range(-0.01f32..0.01);
            data.data[i * 2 + 1] = 2.0 * t + r.gen_range(-0.01f32..0.01);
        }
        let pca = Pca::fit(&data, 2);
        let c = pca.components.row(0);
        let expect = [1.0 / 5.0f32.sqrt(), 2.0 / 5.0f32.sqrt()];
        let dot = (c[0] * expect[0] + c[1] * expect[1]).abs();
        assert!(dot > 0.999, "dot {dot}, component {c:?}");
        assert!(pca.explained_variance[0] > 10.0 * pca.explained_variance[1]);
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_vec(4, 2, vec![1., 1., 3., 3., 1., 3., 3., 1.]);
        let pca = Pca::fit(&data, 2);
        let t = pca.transform(&data);
        // Projected means are ~0.
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| t.at(r, c)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let mut r = rng(2);
        let data = Matrix::xavier(100, 5, &mut r);
        let pca = Pca::fit(&data, 5);
        for i in 0..5 {
            for j in 0..5 {
                let dot: f32 = pca
                    .components
                    .row(i)
                    .iter()
                    .zip(pca.components.row(j).iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn separated_clusters_stay_separated() {
        // Two blobs far apart along feature 0: their projections on PC1
        // must separate cleanly (the Figure 2 use case).
        let mut r = rng(3);
        let mut data = Matrix::zeros(100, 3);
        for i in 0..100 {
            let base = if i < 50 { 0.0 } else { 10.0 };
            data.data[i * 3] = base + r.gen_range(-0.5f32..0.5);
            data.data[i * 3 + 1] = r.gen_range(-0.5..0.5);
            data.data[i * 3 + 2] = r.gen_range(-0.5..0.5);
        }
        let pca = Pca::fit(&data, 1);
        let t = pca.transform(&data);
        let a: f32 = (0..50).map(|i| t.data[i]).sum::<f32>() / 50.0;
        let b: f32 = (50..100).map(|i| t.data[i]).sum::<f32>() / 50.0;
        assert!((a - b).abs() > 5.0, "cluster means {a} {b}");
    }

    #[test]
    #[should_panic(expected = "k > feature count")]
    fn too_many_components_panics() {
        let data = Matrix::zeros(10, 2);
        let _ = Pca::fit(&data, 3);
    }
}
