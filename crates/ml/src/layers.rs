//! Trainable layers with explicit forward/backward passes.
//!
//! Every layer owns its [`Param`]s (weights + gradient + Adam moments) and
//! caches whatever activations its backward pass needs. Models are composed
//! by calling the layers in order and backpropagating in reverse — no tape,
//! no dynamic graph: the model shapes in this project are small and fixed,
//! so explicit composition is simpler and faster.

use crate::arena::ScratchArena;
use crate::tensor::Matrix;
use rand_chacha::ChaCha8Rng;

/// One trainable tensor together with its gradient accumulator and Adam
/// moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    pub w: Matrix,
    pub g: Matrix,
    /// Adam first moment.
    pub m: Vec<f32>,
    /// Adam second moment.
    pub v: Vec<f32>,
}

impl Param {
    pub fn new(w: Matrix) -> Self {
        let n = w.data.len();
        Param {
            g: Matrix::zeros(w.rows, w.cols),
            m: vec![0.0; n],
            v: vec![0.0; n],
            w,
        }
    }

    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::zeros(rows, cols))
    }

    pub fn xavier(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Self {
        Self::new(Matrix::xavier(rows, cols, rng))
    }

    pub fn len(&self) -> usize {
        self.w.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.data.is_empty()
    }
}

/// Anything that owns trainable parameters.
pub trait Module {
    /// Visits every parameter (for the optimizer / introspection).
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Read-only parameter visit, in the same order as
    /// [`Module::for_each_param`] — for introspection (param counts,
    /// storage accounting, quantization snapshots) that must not demand
    /// `&mut` access.
    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param));

    /// Zeroes all gradient accumulators.
    fn zero_grad(&mut self) {
        self.for_each_param(&mut |p| p.g.data.fill(0.0));
    }

    /// Total trainable parameter count (Table 8's "Param" column).
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.for_each_param_ref(&mut |p| n += p.len());
        n
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Param,
    pub b: Param,
    cache_x: Option<Matrix>,
}

impl Linear {
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut ChaCha8Rng) -> Self {
        Linear {
            w: Param::xavier(in_dim, out_dim, rng),
            b: Param::zeros(1, out_dim),
            cache_x: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.w);
        y.add_bias(&self.b.w.data);
        self.cache_x = Some(x.clone());
        y
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w.w);
        y.add_bias(&self.b.w.data);
        y
    }

    /// Inference-only forward into an arena-owned buffer (no allocation
    /// after warmup). The caller is responsible for `give`-ing the result
    /// back once it is done with it.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let mut y = s.take(x.rows, self.w.w.cols);
        x.matmul_into(&self.w.w, &mut y);
        y.add_bias(&self.b.w.data);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        self.w.g.add_assign(&x.matmul_at(dy));
        for r in 0..dy.rows {
            for c in 0..dy.cols {
                self.b.g.data[c] += dy.at(r, c);
            }
        }
        dy.matmul_bt(&self.w.w)
    }
}

impl Module for Linear {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Token-id → vector lookup table.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: Param,
    cache_tokens: Vec<usize>,
}

impl Embedding {
    pub fn new(vocab: usize, dim: usize, rng: &mut ChaCha8Rng) -> Self {
        Embedding {
            table: Param::xavier(vocab, dim, rng),
            cache_tokens: Vec::new(),
        }
    }

    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        self.cache_tokens = tokens.to_vec();
        self.infer(tokens)
    }

    pub fn infer(&self, tokens: &[usize]) -> Matrix {
        let dim = self.table.w.cols;
        let mut out = Matrix::zeros(tokens.len(), dim);
        self.lookup_into(tokens, &mut out);
        out
    }

    /// Inference-only lookup into an arena-owned buffer.
    pub fn infer_in(&self, tokens: &[usize], s: &mut ScratchArena) -> Matrix {
        let mut out = s.take(tokens.len(), self.table.w.cols);
        self.lookup_into(tokens, &mut out);
        out
    }

    fn lookup_into(&self, tokens: &[usize], out: &mut Matrix) {
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.table.w.rows, "token {t} out of vocab");
            out.row_mut(i).copy_from_slice(self.table.w.row(t));
        }
    }

    /// Adds the embedding row for `token` to every row of `m` — the
    /// broadcast form AMMA-PI uses to mix a phase embedding into a fused
    /// sequence without materializing the repeated-token matrix.
    pub fn add_row_broadcast(&self, token: usize, m: &mut Matrix) {
        assert!(token < self.table.w.rows, "token {token} out of vocab");
        let row = self.table.w.row(token);
        assert_eq!(row.len(), m.cols, "embedding dim mismatch");
        for r in 0..m.rows {
            for (a, b) in m.row_mut(r).iter_mut().zip(row.iter()) {
                *a += b;
            }
        }
    }

    pub fn backward(&mut self, dy: &Matrix) {
        let dim = self.table.w.cols;
        for (i, &t) in self.cache_tokens.iter().enumerate() {
            let g = &mut self.table.g.data[t * dim..(t + 1) * dim];
            for (gv, dv) in g.iter_mut().zip(dy.row(i).iter()) {
                *gv += dv;
            }
        }
    }
}

impl Module for Embedding {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// ReLU with cached mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.mask = x.data.iter().map(|&v| v > 0.0).collect();
        let mut y = x.clone();
        for v in y.data.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    pub fn infer(x: &Matrix) -> Matrix {
        let mut y = x.clone();
        Self::infer_inplace(&mut y);
        y
    }

    /// In-place ReLU for the allocation-free inference path.
    pub fn infer_inplace(x: &mut Matrix) {
        for v in x.data.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    pub fn backward(&self, dy: &Matrix) -> Matrix {
        let mut dx = dy.clone();
        for (v, &m) in dx.data.iter_mut().zip(self.mask.iter()) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }
}

/// Elementwise logistic sigmoid with cached output.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    y: Option<Matrix>,
}

impl Sigmoid {
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = Self::infer(x);
        self.y = Some(y.clone());
        y
    }

    pub fn infer(x: &Matrix) -> Matrix {
        let mut y = x.clone();
        Self::infer_inplace(&mut y);
        y
    }

    /// In-place sigmoid for the allocation-free inference path.
    pub fn infer_inplace(x: &mut Matrix) {
        for v in x.data.iter_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
    }

    pub fn backward(&self, dy: &Matrix) -> Matrix {
        let y = self.y.as_ref().expect("forward before backward");
        let mut dx = dy.clone();
        for (d, &s) in dx.data.iter_mut().zip(y.data.iter()) {
            *d *= s * (1.0 - s);
        }
        dx
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Row-wise layer normalization with learnable gain/bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    eps: f32,
    cache: Option<(Matrix, Vec<f32>, Vec<f32>)>, // (normalized x̂, mean, inv_std)
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::from_vec(1, dim, vec![1.0; dim])),
            beta: Param::zeros(1, dim),
            eps: 1e-5,
            cache: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let d = x.cols;
        let mut xhat = Matrix::zeros(x.rows, d);
        let mut means = Vec::with_capacity(x.rows);
        let mut inv_stds = Vec::with_capacity(x.rows);
        for r in 0..x.rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                xhat.data[r * d + c] = (v - mean) * inv;
            }
            means.push(mean);
            inv_stds.push(inv);
        }
        let mut y = xhat.clone();
        for r in 0..y.rows {
            for c in 0..d {
                y.data[r * d + c] = y.data[r * d + c] * self.gamma.w.data[c] + self.beta.w.data[c];
            }
        }
        self.cache = Some((xhat, means, inv_stds));
        y
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        self.infer_inplace(&mut y);
        y
    }

    /// In-place layer norm: row statistics are computed before the row is
    /// overwritten, so normalizing in place is exact (allocation-free
    /// inference path).
    pub fn infer_inplace(&self, x: &mut Matrix) {
        let d = x.cols;
        for r in 0..x.rows {
            let row = x.row_mut(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) * inv * self.gamma.w.data[c] + self.beta.w.data[c];
            }
        }
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, _means, inv_stds) = self.cache.as_ref().expect("forward before backward");
        let d = dy.cols as f32;
        let cols = dy.cols;
        let mut dx = Matrix::zeros(dy.rows, cols);
        for (r, &inv) in inv_stds.iter().enumerate() {
            // Accumulate parameter grads.
            for c in 0..cols {
                self.gamma.g.data[c] += dy.at(r, c) * xhat.at(r, c);
                self.beta.g.data[c] += dy.at(r, c);
            }
            // dxhat = dy * gamma
            let dxhat: Vec<f32> = (0..cols)
                .map(|c| dy.at(r, c) * self.gamma.w.data[c])
                .collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat
                .iter()
                .zip(xhat.row(r).iter())
                .map(|(a, b)| a * b)
                .sum();
            for (c, &dxh) in dxhat.iter().enumerate() {
                dx.data[r * cols + c] =
                    inv / d * (d * dxh - sum_dxhat - xhat.at(r, c) * sum_dxhat_xhat);
            }
        }
        dx
    }
}

impl Module for LayerNorm {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;

    /// Generic finite-difference gradient check on a scalar loss
    /// `L = sum(forward(x) ⊙ w)` for a random weighting `w`.
    fn check_input_grad(
        x: &Matrix,
        mut fwd: impl FnMut(&Matrix) -> Matrix,
        dx: &Matrix,
        weights: &Matrix,
        tol: f32,
    ) {
        let eps = 1e-2f32;
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let lp: f32 = fwd(&xp)
                .data
                .iter()
                .zip(weights.data.iter())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = fwd(&xm)
                .data
                .iter()
                .zip(weights.data.iter())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < tol,
                "idx {i}: numeric {num} vs analytic {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn linear_forward_known() {
        let mut r = rng(1);
        let mut l = Linear::new(2, 2, &mut r);
        l.w.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        l.b.w = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let y = l.forward(&Matrix::from_vec(1, 2, vec![1., 1.]));
        assert_eq!(y.data, vec![4.5, 5.5]);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut r = rng(2);
        let mut l = Linear::new(3, 2, &mut r);
        let x = Matrix::xavier(4, 3, &mut r);
        let w = Matrix::xavier(4, 2, &mut r); // loss weighting
        let _y = l.forward(&x);
        let dx = l.backward(&w);
        let l2 = l.clone();
        check_input_grad(&x, |xx| l2.infer(xx), &dx, &w, 2e-2);
        // Weight gradient check on one entry.
        let eps = 1e-2f32;
        let (wi, wj) = (1, 0);
        let mut lp = l.clone();
        *lp.w.w.at_mut(wi, wj) += eps;
        let mut lm = l.clone();
        *lm.w.w.at_mut(wi, wj) -= eps;
        let f = |m: &Linear| -> f32 {
            m.infer(&x)
                .data
                .iter()
                .zip(w.data.iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let num = (f(&lp) - f(&lm)) / (2.0 * eps);
        assert!((num - l.w.g.at(wi, wj)).abs() < 2e-2);
    }

    #[test]
    fn embedding_lookup_and_backward() {
        let mut r = rng(3);
        let mut e = Embedding::new(10, 4, &mut r);
        let y = e.forward(&[3, 3, 7]);
        assert_eq!(y.rows, 3);
        assert_eq!(y.row(0), y.row(1));
        let mut dy = Matrix::zeros(3, 4);
        dy.data.fill(1.0);
        e.backward(&dy);
        // Token 3 appears twice: gradient 2.0 per element; token 7 once.
        assert!(e.table.g.row(3).iter().all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(e.table.g.row(7).iter().all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(e.table.g.row(0).iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_rejects_oov() {
        let mut r = rng(4);
        let e = Embedding::new(4, 2, &mut r);
        let _ = e.infer(&[4]);
    }

    #[test]
    fn relu_masks_negative() {
        let mut relu = Relu::default();
        let y = relu.forward(&Matrix::from_vec(1, 4, vec![-1., 0., 2., -3.]));
        assert_eq!(y.data, vec![0., 0., 2., 0.]);
        let dx = relu.backward(&Matrix::from_vec(1, 4, vec![1., 1., 1., 1.]));
        assert_eq!(dx.data, vec![0., 0., 1., 0.]);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let x = Matrix::from_vec(1, 3, vec![-0.5, 0.2, 1.3]);
        let w = Matrix::from_vec(1, 3, vec![0.7, -0.4, 0.9]);
        let mut s = Sigmoid::default();
        let _ = s.forward(&x);
        let dx = s.backward(&w);
        check_input_grad(&x, |xx| Sigmoid::infer(xx), &dx, &w, 1e-3);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut ln = LayerNorm::new(8);
        let mut r = rng(5);
        let x = Matrix::xavier(3, 8, &mut r);
        let y = ln.forward(&x);
        for row in 0..3 {
            let mean: f32 = y.row(row).iter().sum::<f32>() / 8.0;
            let var: f32 = y.row(row).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_difference() {
        let mut ln = LayerNorm::new(5);
        let mut r = rng(6);
        // Non-trivial gamma/beta.
        ln.gamma.w = Matrix::from_vec(1, 5, vec![1.1, 0.9, 1.3, 0.7, 1.0]);
        ln.beta.w = Matrix::from_vec(1, 5, vec![0.1, -0.2, 0.0, 0.3, -0.1]);
        let x = Matrix::xavier(2, 5, &mut r);
        let w = Matrix::xavier(2, 5, &mut r);
        let _ = ln.forward(&x);
        let dx = ln.backward(&w);
        let ln2 = ln.clone();
        check_input_grad(&x, |xx| ln2.infer(xx), &dx, &w, 3e-2);
    }

    #[test]
    fn module_param_counts() {
        let mut r = rng(7);
        let l = Linear::new(10, 20, &mut r);
        assert_eq!(l.num_params(), 10 * 20 + 20);
        let e = Embedding::new(100, 8, &mut r);
        assert_eq!(e.num_params(), 800);
        let ln = LayerNorm::new(16);
        assert_eq!(ln.num_params(), 32);
    }

    #[test]
    fn zero_grad_clears() {
        let mut r = rng(8);
        let mut l = Linear::new(2, 2, &mut r);
        let x = Matrix::from_vec(1, 2, vec![1., 2.]);
        let _ = l.forward(&x);
        let _ = l.backward(&Matrix::from_vec(1, 2, vec![1., 1.]));
        assert!(l.w.g.norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.w.g.norm(), 0.0);
    }
}
