//! Scaled dot-product attention (Eq. 7 of the paper) in single-head and
//! multi-head (Eq. 9) forms, with full backward passes.

use crate::arena::ScratchArena;
use crate::layers::{Module, Param};
use crate::tensor::Matrix;
use rand_chacha::ChaCha8Rng;

/// Single-head self-attention: `Y = softmax(Q K^T / sqrt(d)) V` with
/// `Q = X Wq`, `K = X Wk`, `V = X Wv`. This is the "self-attention layer"
/// AMMA applies to each input modality.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    pub wq: Param,
    pub wk: Param,
    pub wv: Param,
    head_dim: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix, // post-softmax weights
}

impl SelfAttention {
    pub fn new(in_dim: usize, head_dim: usize, rng: &mut ChaCha8Rng) -> Self {
        SelfAttention {
            wq: Param::xavier(in_dim, head_dim, rng),
            wk: Param::xavier(in_dim, head_dim, rng),
            wv: Param::xavier(in_dim, head_dim, rng),
            head_dim,
            cache: None,
        }
    }

    pub fn out_dim(&self) -> usize {
        self.head_dim
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let q = x.matmul(&self.wq.w);
        let k = x.matmul(&self.wk.w);
        let v = x.matmul(&self.wv.w);
        let mut scores = q.matmul_bt(&k);
        scores.scale(1.0 / (self.head_dim as f32).sqrt());
        let attn = scores.softmax_rows();
        let y = attn.matmul(&v);
        self.cache = Some(AttnCache {
            x: x.clone(),
            q,
            k,
            v,
            attn,
        });
        y
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let q = x.matmul(&self.wq.w);
        let k = x.matmul(&self.wk.w);
        let v = x.matmul(&self.wv.w);
        let mut scores = q.matmul_bt(&k);
        scores.scale(1.0 / (self.head_dim as f32).sqrt());
        scores.softmax_rows().matmul(&v)
    }

    /// Inference-only forward through arena-owned scratch buffers; the
    /// returned matrix should be `give`-n back by the caller.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let mut q = s.take(rows, self.head_dim);
        let mut k = s.take(rows, self.head_dim);
        let mut v = s.take(rows, self.head_dim);
        x.matmul_into(&self.wq.w, &mut q);
        x.matmul_into(&self.wk.w, &mut k);
        x.matmul_into(&self.wv.w, &mut v);
        let mut scores = s.take(rows, rows);
        q.matmul_bt_into(&k, &mut scores);
        scores.scale(1.0 / (self.head_dim as f32).sqrt());
        scores.softmax_rows_inplace();
        let mut y = s.take(rows, self.head_dim);
        scores.matmul_into(&v, &mut y);
        s.give(q);
        s.give(k);
        s.give(v);
        s.give(scores);
        y
    }

    /// Batched inference over `batch` stacked sequences: `x` is
    /// `[batch * seq, in_dim]` with each sequence occupying a contiguous
    /// block of rows. The Q/K/V projections — shared by every row — run as
    /// single fused matmuls over the whole stack; attention itself is
    /// confined to each sequence's own `[seq, seq]` score block, so the
    /// output is bit-identical to [`SelfAttention::infer_in`] run on each
    /// sequence separately.
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        assert!(
            batch > 0 && x.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.rows / batch;
        let rows = x.rows;
        let hd = self.head_dim;
        let mut q = s.take(rows, hd);
        let mut k = s.take(rows, hd);
        let mut v = s.take(rows, hd);
        x.matmul_into(&self.wq.w, &mut q);
        x.matmul_into(&self.wk.w, &mut k);
        x.matmul_into(&self.wv.w, &mut v);
        let mut y = s.take(rows, hd);
        let mut qb = s.take(seq, hd);
        let mut kb = s.take(seq, hd);
        let mut vb = s.take(seq, hd);
        let mut yb = s.take(seq, hd);
        let mut scores = s.take(seq, seq);
        for b in 0..batch {
            let span = b * seq * hd..(b + 1) * seq * hd;
            qb.data.copy_from_slice(&q.data[span.clone()]);
            kb.data.copy_from_slice(&k.data[span.clone()]);
            vb.data.copy_from_slice(&v.data[span.clone()]);
            qb.matmul_bt_into(&kb, &mut scores);
            scores.scale(1.0 / (hd as f32).sqrt());
            scores.softmax_rows_inplace();
            scores.matmul_into(&vb, &mut yb);
            y.data[span].copy_from_slice(&yb.data);
        }
        s.give(qb);
        s.give(kb);
        s.give(vb);
        s.give(yb);
        s.give(scores);
        s.give(q);
        s.give(k);
        s.give(v);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let c = self.cache.as_ref().expect("forward before backward");
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Y = A V
        let d_attn = dy.matmul_bt(&c.v);
        let dv = c.attn.matmul_at(dy);
        // A = softmax(S)
        let mut ds = Matrix::softmax_rows_backward(&c.attn, &d_attn);
        ds.scale(scale);
        // S = Q K^T (scaled already folded into ds)
        let dq = ds.matmul(&c.k);
        let dk = ds.matmul_at(&c.q);
        // Parameter grads.
        self.wq.g.add_assign(&c.x.matmul_at(&dq));
        self.wk.g.add_assign(&c.x.matmul_at(&dk));
        self.wv.g.add_assign(&c.x.matmul_at(&dv));
        // Input grad.
        let mut dx = dq.matmul_bt(&self.wq.w);
        dx.add_assign(&dk.matmul_bt(&self.wk.w));
        dx.add_assign(&dv.matmul_bt(&self.wv.w));
        dx
    }
}

impl Module for SelfAttention {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wq);
        f(&mut self.wk);
        f(&mut self.wv);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.wq);
        f(&self.wk);
        f(&self.wv);
    }
}

/// Multi-head self-attention (Eq. 9): H parallel heads of dimension
/// `dim / heads`, concatenated and projected by `Wo`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    pub heads: Vec<SelfAttention>,
    pub wo: Param,
    dim: usize,
    cache_concat: Option<Matrix>,
}

impl MultiHeadAttention {
    pub fn new(dim: usize, num_heads: usize, rng: &mut ChaCha8Rng) -> Self {
        assert!(dim.is_multiple_of(num_heads), "dim must divide by heads");
        let head_dim = dim / num_heads;
        MultiHeadAttention {
            heads: (0..num_heads)
                .map(|_| SelfAttention::new(dim, head_dim, rng))
                .collect(),
            wo: Param::xavier(dim, dim, rng),
            dim,
            cache_concat: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let concat = self.concat(x, true);
        concat.matmul(&self.wo.w)
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let s = x.rows;
        let mut concat = Matrix::zeros(s, self.dim);
        let head_dim = self.dim / self.heads.len();
        for (h, head) in self.heads.iter().enumerate() {
            let y = head.infer(x);
            for r in 0..s {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
        }
        concat.matmul(&self.wo.w)
    }

    /// Inference-only forward through arena-owned scratch buffers.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let head_dim = self.dim / self.heads.len();
        let mut concat = s.take(rows, self.dim);
        for (h, head) in self.heads.iter().enumerate() {
            let y = head.infer_in(x, s);
            for r in 0..rows {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
            s.give(y);
        }
        let mut out = s.take(rows, self.wo.w.cols);
        concat.matmul_into(&self.wo.w, &mut out);
        s.give(concat);
        out
    }

    /// Batched inference over `batch` stacked sequences; see
    /// [`SelfAttention::infer_batch_in`]. Bit-identical to per-sequence
    /// [`MultiHeadAttention::infer_in`].
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let head_dim = self.dim / self.heads.len();
        let mut concat = s.take(rows, self.dim);
        for (h, head) in self.heads.iter().enumerate() {
            let y = head.infer_batch_in(x, batch, s);
            for r in 0..rows {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
            s.give(y);
        }
        let mut out = s.take(rows, self.wo.w.cols);
        concat.matmul_into(&self.wo.w, &mut out);
        s.give(concat);
        out
    }

    fn concat(&mut self, x: &Matrix, train: bool) -> Matrix {
        let s = x.rows;
        let head_dim = self.dim / self.heads.len();
        let mut concat = Matrix::zeros(s, self.dim);
        for h in 0..self.heads.len() {
            let y = if train {
                self.heads[h].forward(x)
            } else {
                self.heads[h].infer(x)
            };
            for r in 0..s {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
        }
        self.cache_concat = Some(concat.clone());
        concat
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let concat = self.cache_concat.as_ref().expect("forward before backward");
        self.wo.g.add_assign(&concat.matmul_at(dy));
        let d_concat = dy.matmul_bt(&self.wo.w);
        let head_dim = self.dim / self.heads.len();
        let mut dx: Option<Matrix> = None;
        for (h, head) in self.heads.iter_mut().enumerate() {
            let mut d_head = Matrix::zeros(d_concat.rows, head_dim);
            for r in 0..d_concat.rows {
                d_head
                    .row_mut(r)
                    .copy_from_slice(&d_concat.row(r)[h * head_dim..(h + 1) * head_dim]);
            }
            let g = head.backward(&d_head);
            match &mut dx {
                None => dx = Some(g),
                Some(acc) => acc.add_assign(&g),
            }
        }
        dx.expect("at least one head")
    }
}

impl Module for MultiHeadAttention {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for h in &mut self.heads {
            h.for_each_param(f);
        }
        f(&mut self.wo);
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        for h in &self.heads {
            h.for_each_param_ref(f);
        }
        f(&self.wo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;

    fn weighted_sum(y: &Matrix, w: &Matrix) -> f32 {
        y.data.iter().zip(w.data.iter()).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn self_attention_shapes() {
        let mut r = rng(1);
        let mut a = SelfAttention::new(8, 4, &mut r);
        let x = Matrix::xavier(5, 8, &mut r);
        let y = a.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 4));
        assert_eq!(a.out_dim(), 4);
    }

    #[test]
    fn self_attention_rows_are_convex_combinations() {
        // With Wv = identity-ish small test: attention output of row r is a
        // convex combination of V rows, so it is bounded by V's extremes.
        let mut r = rng(2);
        let mut a = SelfAttention::new(4, 4, &mut r);
        // Force Wv = I to check convexity directly on X-projected values.
        a.wv.w = Matrix::from_vec(
            4,
            4,
            (0..16)
                .map(|i| if i % 5 == 0 { 1.0 } else { 0.0 })
                .collect(),
        );
        let x = Matrix::xavier(6, 4, &mut r);
        let y = a.forward(&x);
        for c in 0..4 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for row in 0..6 {
                lo = lo.min(x.at(row, c));
                hi = hi.max(x.at(row, c));
            }
            for row in 0..6 {
                assert!(y.at(row, c) >= lo - 1e-5 && y.at(row, c) <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn self_attention_input_gradient_matches_finite_difference() {
        let mut r = rng(3);
        let mut a = SelfAttention::new(4, 3, &mut r);
        let x = Matrix::xavier(3, 4, &mut r);
        let w = Matrix::xavier(3, 3, &mut r);
        let _ = a.forward(&x);
        let dx = a.backward(&w);
        let eps = 1e-2f32;
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num =
                (weighted_sum(&a.infer(&xp), &w) - weighted_sum(&a.infer(&xm), &w)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 3e-2,
                "idx {i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn self_attention_weight_gradient_matches_finite_difference() {
        let mut r = rng(4);
        let mut a = SelfAttention::new(3, 2, &mut r);
        let x = Matrix::xavier(4, 3, &mut r);
        let w = Matrix::xavier(4, 2, &mut r);
        let _ = a.forward(&x);
        let _ = a.backward(&w);
        let eps = 1e-2f32;
        for (pi, get) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let mut ap = a.clone();
            let mut am = a.clone();
            // Perturb wq[pi][get].
            *ap.wq.w.at_mut(pi, get) += eps;
            *am.wq.w.at_mut(pi, get) -= eps;
            let num =
                (weighted_sum(&ap.infer(&x), &w) - weighted_sum(&am.infer(&x), &w)) / (2.0 * eps);
            let analytic = a.wq.g.at(pi, get);
            assert!(
                (num - analytic).abs() < 3e-2,
                "wq[{pi}][{get}]: {num} vs {analytic}"
            );
        }
    }

    #[test]
    fn multi_head_shapes_and_params() {
        let mut r = rng(5);
        let mut mha = MultiHeadAttention::new(8, 4, &mut r);
        let x = Matrix::xavier(6, 8, &mut r);
        let y = mha.forward(&x);
        assert_eq!((y.rows, y.cols), (6, 8));
        // 4 heads × 3 matrices × 8×2 + Wo 8×8.
        assert_eq!(mha.num_params(), 4 * 3 * 16 + 64);
    }

    #[test]
    fn multi_head_gradient_matches_finite_difference() {
        let mut r = rng(6);
        let mut mha = MultiHeadAttention::new(4, 2, &mut r);
        let x = Matrix::xavier(3, 4, &mut r);
        let w = Matrix::xavier(3, 4, &mut r);
        let _ = mha.forward(&x);
        let dx = mha.backward(&w);
        let eps = 1e-2f32;
        for i in [0usize, 3, 7, 11] {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (weighted_sum(&mha.infer(&xp), &w) - weighted_sum(&mha.infer(&xm), &w))
                / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 3e-2,
                "idx {i}: {num} vs {}",
                dx.data[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn multi_head_rejects_indivisible_dims() {
        let mut r = rng(7);
        let _ = MultiHeadAttention::new(6, 4, &mut r);
    }
}
