//! # mpgraph-ml
//!
//! From-scratch neural-network substrate for the MPGraph reproduction:
//! dense tensors, trainable layers with explicit backward passes (Linear,
//! Embedding, LayerNorm, activations), scaled dot-product and multi-head
//! attention, Transformer encoder layers, an LSTM with BPTT (for the
//! paper's baselines), Adam/SGD optimizers, the losses the two predictors
//! train with, knowledge-distillation and int8-quantization utilities for
//! §6.1, PCA for the Figure 2 motivation study, and the evaluation metrics
//! of Tables 4, 6 and 7.
//!
//! Model sizes in the paper are small (Table 5: dims 64-128, history 9), so
//! full-precision CPU training is fast and exactly reproducible: every
//! random choice flows from a caller-provided [`tensor::rng`] seed.
//!
//! ```
//! use mpgraph_ml::layers::{Linear, Module};
//! use mpgraph_ml::optim::Adam;
//! use mpgraph_ml::tensor::{rng, Matrix};
//!
//! // Fit y = 3x with one dense layer.
//! let mut r = rng(0);
//! let mut layer = Linear::new(1, 1, &mut r);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..200 {
//!     let x = Matrix::from_vec(4, 1, vec![-1.0, 0.5, 1.0, 2.0]);
//!     let y = layer.forward(&x);
//!     let mut d = Matrix::zeros(4, 1);
//!     for i in 0..4 { d.data[i] = (y.data[i] - 3.0 * x.data[i]) / 4.0; }
//!     layer.backward(&d);
//!     opt.step(&mut layer);
//! }
//! assert!((layer.w.w.data[0] - 3.0).abs() < 0.1);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod arena;
pub mod attention;
pub mod guard;
pub mod layers;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod optim;
pub mod pca;
pub mod qinfer;
pub mod quant;
pub mod tensor;
pub mod transformer;

pub use arena::ScratchArena;
pub use attention::{MultiHeadAttention, SelfAttention};
pub use guard::{GuardAction, TrainGuard};
pub use layers::{Embedding, LayerNorm, Linear, Module, Param, Relu, Sigmoid};
pub use loss::{bce_with_logits, distillation_loss, softmax_cross_entropy};
pub use lstm::Lstm;
pub use metrics::{accuracy_at_k, multilabel_f1, top_k_indices, Prf};
pub use optim::{Adam, Sgd};
pub use pca::Pca;
pub use qinfer::{
    QuantFeedForward, QuantLstm, QuantMultiHeadAttention, QuantSelfAttention, QuantTransformerLayer,
};
pub use quant::{float_storage_bytes, quantize_module, QuantizedLinear, QuantizedTensor};
pub use tensor::{rng, Matrix};
pub use transformer::{FeedForward, TransformerLayer};
