//! Optimizers: Adam (used for all model training in the reproduction) and
//! plain SGD (tests and ablations).

use crate::layers::{Module, Param};

/// Adam optimizer (Kingma & Ba). Moment buffers live inside each [`Param`],
/// so one `Adam` instance can drive any number of modules; the timestep is
/// kept per-optimizer as is conventional.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Optional global gradient-norm clip (0 disables).
    pub clip: f32,
    t: i32,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
            t: 0,
        }
    }

    /// Applies one update to every parameter of `module` and zeroes the
    /// gradients afterwards.
    pub fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let t = self.t;
        let (lr, b1, b2, eps, clip) = (self.lr, self.beta1, self.beta2, self.eps, self.clip);
        // Bias corrections.
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        module.for_each_param(&mut |p: &mut Param| {
            // Per-parameter-tensor clipping keeps exploding LSTM grads sane.
            if clip > 0.0 {
                let norm = p.g.norm();
                if norm > clip {
                    p.g.scale(clip / norm);
                }
            }
            for i in 0..p.w.data.len() {
                let g = p.g.data[i];
                p.m[i] = b1 * p.m[i] + (1.0 - b1) * g;
                p.v[i] = b2 * p.v[i] + (1.0 - b2) * g * g;
                let mhat = p.m[i] / bc1;
                let vhat = p.v[i] / bc2;
                p.w.data[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.g.data.fill(0.0);
        });
    }
}

/// Plain SGD with optional momentum (stored in the Adam `m` buffer).
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0 }
    }

    pub fn step(&mut self, module: &mut dyn Module) {
        let (lr, mom) = (self.lr, self.momentum);
        module.for_each_param(&mut |p: &mut Param| {
            for i in 0..p.w.data.len() {
                let g = p.g.data[i];
                if mom > 0.0 {
                    p.m[i] = mom * p.m[i] + g;
                    p.w.data[i] -= lr * p.m[i];
                } else {
                    p.w.data[i] -= lr * g;
                }
            }
            p.g.data.fill(0.0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::tensor::{rng, Matrix};

    /// Fits y = 2x + 1 with a 1×1 linear layer.
    fn fit(opt_is_adam: bool) -> (f32, f32) {
        let mut r = rng(1);
        let mut l = Linear::new(1, 1, &mut r);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let mut adam = Adam::new(0.05);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..400 {
            let x = Matrix::from_vec(xs.len(), 1, xs.clone());
            let y = l.forward(&x);
            let mut d = Matrix::zeros(y.rows, 1);
            for i in 0..y.rows {
                let target = 2.0 * xs[i] + 1.0;
                d.data[i] = (y.data[i] - target) / y.rows as f32;
            }
            let _ = l.backward(&d);
            if opt_is_adam {
                adam.step(&mut l);
            } else {
                sgd.step(&mut l);
            }
        }
        (l.w.w.data[0], l.b.w.data[0])
    }

    #[test]
    fn adam_fits_linear_regression() {
        let (w, b) = fit(true);
        assert!((w - 2.0).abs() < 0.05, "w {w}");
        assert!((b - 1.0).abs() < 0.05, "b {b}");
    }

    #[test]
    fn sgd_fits_linear_regression() {
        let (w, b) = fit(false);
        assert!((w - 2.0).abs() < 0.05, "w {w}");
        assert!((b - 1.0).abs() < 0.05, "b {b}");
    }

    #[test]
    fn adam_zeroes_gradients_after_step() {
        let mut r = rng(2);
        let mut l = Linear::new(2, 2, &mut r);
        let _ = l.forward(&Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        let _ = l.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut l);
        assert_eq!(l.w.g.norm(), 0.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut r = rng(3);
        let mut l = Linear::new(2, 2, &mut r);
        let before = l.w.w.clone();
        let _ = l.forward(&Matrix::from_vec(1, 2, vec![1e6, -1e6]));
        let _ = l.backward(&Matrix::from_vec(1, 2, vec![1e6, 1e6]));
        let mut opt = Adam::new(0.01);
        opt.step(&mut l);
        // Adam's per-coordinate update is bounded by ~lr regardless of the
        // raw gradient magnitude; clipping keeps moments finite.
        for (a, b) in l.w.w.data.iter().zip(before.data.iter()) {
            assert!((a - b).abs() < 0.1, "update too large: {} -> {}", b, a);
            assert!(a.is_finite());
        }
    }
}
