//! Int8 inference mirrors of the f32 model stack.
//!
//! Each `Quant*` struct is an inference-only snapshot of its f32
//! counterpart: every weight-side matmul (Q/K/V/output projections, FFN
//! layers, LSTM gate matrices) runs through [`QuantizedLinear`]'s
//! i8×i8→i32 path with per-output-channel scales, while everything that is
//! *not* a weight product — softmax, LayerNorm, residual adds, the
//! attention score (`Q Kᵀ`) and mix (`A V`) products between activations,
//! sigmoids/tanh — stays f32, exactly as the f32 `infer_in` path computes
//! it. The control flow of each `infer_in`/`infer_batch_in` mirrors the
//! float implementation line for line so the two paths differ only by
//! quantization error, never by structure.

use crate::arena::ScratchArena;
use crate::attention::{MultiHeadAttention, SelfAttention};
use crate::layers::LayerNorm;
use crate::lstm::Lstm;
use crate::quant::{dot_i16, quantize_row, widen_i8_into, QuantizedLinear};
use crate::tensor::Matrix;
use crate::transformer::{FeedForward, TransformerLayer};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Int8 single-head self-attention: the three projections are quantized,
/// the score/softmax/mix pipeline stays f32 (activation×activation).
#[derive(Debug, Clone)]
pub struct QuantSelfAttention {
    pub wq: QuantizedLinear,
    pub wk: QuantizedLinear,
    pub wv: QuantizedLinear,
    head_dim: usize,
}

impl QuantSelfAttention {
    pub fn from_attention(a: &SelfAttention) -> Self {
        QuantSelfAttention {
            wq: QuantizedLinear::from_weight(&a.wq.w, None),
            wk: QuantizedLinear::from_weight(&a.wk.w, None),
            wv: QuantizedLinear::from_weight(&a.wv.w, None),
            head_dim: a.out_dim(),
        }
    }

    pub fn out_dim(&self) -> usize {
        self.head_dim
    }

    pub fn storage_bytes(&self) -> usize {
        self.wq.storage_bytes() + self.wk.storage_bytes() + self.wv.storage_bytes()
    }

    /// Mirrors [`SelfAttention::infer_in`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let q = self.wq.infer_in(x, s);
        let k = self.wk.infer_in(x, s);
        let v = self.wv.infer_in(x, s);
        let mut scores = s.take(rows, rows);
        q.matmul_bt_into(&k, &mut scores);
        scores.scale(1.0 / (self.head_dim as f32).sqrt());
        scores.softmax_rows_inplace();
        let mut y = s.take(rows, self.head_dim);
        scores.matmul_into(&v, &mut y);
        s.give(q);
        s.give(k);
        s.give(v);
        s.give(scores);
        y
    }

    /// Mirrors [`SelfAttention::infer_batch_in`]: fused projections over
    /// the whole stack, per-sequence `[seq, seq]` attention blocks.
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        assert!(
            batch > 0 && x.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.rows / batch;
        let rows = x.rows;
        let hd = self.head_dim;
        let q = self.wq.infer_in(x, s);
        let k = self.wk.infer_in(x, s);
        let v = self.wv.infer_in(x, s);
        let mut y = s.take(rows, hd);
        let mut qb = s.take(seq, hd);
        let mut kb = s.take(seq, hd);
        let mut vb = s.take(seq, hd);
        let mut yb = s.take(seq, hd);
        let mut scores = s.take(seq, seq);
        for b in 0..batch {
            let span = b * seq * hd..(b + 1) * seq * hd;
            qb.data.copy_from_slice(&q.data[span.clone()]);
            kb.data.copy_from_slice(&k.data[span.clone()]);
            vb.data.copy_from_slice(&v.data[span.clone()]);
            qb.matmul_bt_into(&kb, &mut scores);
            scores.scale(1.0 / (hd as f32).sqrt());
            scores.softmax_rows_inplace();
            scores.matmul_into(&vb, &mut yb);
            y.data[span].copy_from_slice(&yb.data);
        }
        s.give(qb);
        s.give(kb);
        s.give(vb);
        s.give(yb);
        s.give(scores);
        s.give(q);
        s.give(k);
        s.give(v);
        y
    }
}

/// Int8 multi-head attention: quantized heads plus a quantized output
/// projection `Wo`.
#[derive(Debug, Clone)]
pub struct QuantMultiHeadAttention {
    pub heads: Vec<QuantSelfAttention>,
    pub wo: QuantizedLinear,
    dim: usize,
}

impl QuantMultiHeadAttention {
    pub fn from_attention(m: &MultiHeadAttention) -> Self {
        QuantMultiHeadAttention {
            heads: m
                .heads
                .iter()
                .map(QuantSelfAttention::from_attention)
                .collect(),
            wo: QuantizedLinear::from_weight(&m.wo.w, None),
            dim: m.wo.w.rows,
        }
    }

    pub fn storage_bytes(&self) -> usize {
        self.heads
            .iter()
            .map(QuantSelfAttention::storage_bytes)
            .sum::<usize>()
            + self.wo.storage_bytes()
    }

    /// Mirrors [`MultiHeadAttention::infer_in`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let head_dim = self.dim / self.heads.len();
        let mut concat = s.take(rows, self.dim);
        for (h, head) in self.heads.iter().enumerate() {
            let y = head.infer_in(x, s);
            for r in 0..rows {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
            s.give(y);
        }
        let out = self.wo.infer_in(&concat, s);
        s.give(concat);
        out
    }

    /// Mirrors [`MultiHeadAttention::infer_batch_in`].
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        let rows = x.rows;
        let head_dim = self.dim / self.heads.len();
        let mut concat = s.take(rows, self.dim);
        for (h, head) in self.heads.iter().enumerate() {
            let y = head.infer_batch_in(x, batch, s);
            for r in 0..rows {
                concat.row_mut(r)[h * head_dim..(h + 1) * head_dim].copy_from_slice(y.row(r));
            }
            s.give(y);
        }
        let out = self.wo.infer_in(&concat, s);
        s.give(concat);
        out
    }
}

/// Int8 point-wise feed-forward network.
#[derive(Debug, Clone)]
pub struct QuantFeedForward {
    pub fc1: QuantizedLinear,
    pub fc2: QuantizedLinear,
}

impl QuantFeedForward {
    pub fn from_ffn(f: &FeedForward) -> Self {
        QuantFeedForward {
            fc1: QuantizedLinear::from_linear(&f.fc1),
            fc2: QuantizedLinear::from_linear(&f.fc2),
        }
    }

    pub fn storage_bytes(&self) -> usize {
        self.fc1.storage_bytes() + self.fc2.storage_bytes()
    }

    /// Mirrors [`FeedForward::infer_in`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let mut h = self.fc1.infer_in(x, s);
        crate::layers::Relu::infer_inplace(&mut h);
        let y = self.fc2.infer_in(&h, s);
        s.give(h);
        y
    }
}

/// Int8 Transformer encoder layer. The layer norms carry f32 gain/bias
/// (they are vectors, not matrices — quantizing them saves nothing and
/// costs accuracy), cloned from the source layer.
#[derive(Debug, Clone)]
pub struct QuantTransformerLayer {
    pub msa: QuantMultiHeadAttention,
    pub ffn: QuantFeedForward,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
}

impl QuantTransformerLayer {
    pub fn from_layer(t: &TransformerLayer) -> Self {
        QuantTransformerLayer {
            msa: QuantMultiHeadAttention::from_attention(&t.msa),
            ffn: QuantFeedForward::from_ffn(&t.ffn),
            ln1: t.ln1.clone(),
            ln2: t.ln2.clone(),
        }
    }

    pub fn storage_bytes(&self) -> usize {
        // LayerNorm gain/bias stay f32: 2 vectors × 2 norms × 4 bytes.
        let ln = 2 * 2 * 4 * self.ln1.gamma.w.cols;
        self.msa.storage_bytes() + self.ffn.storage_bytes() + ln
    }

    /// Mirrors [`TransformerLayer::infer_in`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        let mut h = self.msa.infer_in(x, s);
        h.add_assign(x);
        self.ln1.infer_inplace(&mut h);
        let mut y = self.ffn.infer_in(&h, s);
        y.add_assign(&h);
        self.ln2.infer_inplace(&mut y);
        s.give(h);
        y
    }

    /// Mirrors [`TransformerLayer::infer_batch_in`].
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        let mut h = self.msa.infer_batch_in(x, batch, s);
        h.add_assign(x);
        self.ln1.infer_inplace(&mut h);
        let mut y = self.ffn.infer_in(&h, s);
        y.add_assign(&h);
        self.ln2.infer_inplace(&mut y);
        s.give(h);
        y
    }
}

/// Int8 LSTM: both gate matrices quantized per output unit (each of the
/// `4h` packed gate columns gets its own scale); the recurrence, gate
/// nonlinearities, and cell state stay f32. The hidden state is
/// re-quantized each timestep — it changes every step, so this is the
/// "on-the-fly activation quantization" the int8 path is built on.
#[derive(Debug, Clone)]
pub struct QuantLstm {
    q_ih: QuantizedLinear, // [4h, in] channel-major
    q_hh: QuantizedLinear, // [4h, h] channel-major
    bias: Vec<f32>,
    in_dim: usize,
    hidden: usize,
}

impl QuantLstm {
    pub fn from_lstm(l: &Lstm) -> Self {
        QuantLstm {
            q_ih: QuantizedLinear::from_weight(&l.w_ih.w, None),
            q_hh: QuantizedLinear::from_weight(&l.w_hh.w, None),
            bias: l.b.w.data.clone(),
            in_dim: l.w_ih.w.rows,
            hidden: l.hidden_dim(),
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    pub fn storage_bytes(&self) -> usize {
        self.q_ih.storage_bytes() + self.q_hh.storage_bytes() + 4 * self.bias.len()
    }

    /// Packed gate pre-activations from quantized inputs:
    /// `z_j = b_j + (qx · qw_ih[j]) sx s_ih[j] + (qh · qw_hh[j]) sh s_hh[j]`.
    /// Takes the activation rows already widened to i16 (once per timestep)
    /// so each gate dot runs against the pre-widened weight mirrors.
    fn gates_quant(&self, xw: &[i16], sx: f32, hw: &[i16], sh: f32, z: &mut [f32]) {
        let (in_dim, hd) = (self.in_dim, self.hidden);
        for (j, zv) in z.iter_mut().enumerate() {
            let ih = dot_i16(xw, &self.q_ih.qw16[j * in_dim..(j + 1) * in_dim]);
            let hh = dot_i16(hw, &self.q_hh.qw16[j * hd..(j + 1) * hd]);
            *zv = self.bias[j]
                + ih as f32 * (sx * self.q_ih.scales[j])
                + hh as f32 * (sh * self.q_hh.scales[j]);
        }
    }

    /// Mirrors [`Lstm::infer_in`].
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        let hd = self.hidden;
        let mut out = s.take(x.rows, hd);
        let mut hm = s.take(1, hd);
        let mut cm = s.take(1, hd);
        let mut zm = s.take(1, 4 * hd);
        let mut qx = s.take_i8(self.in_dim);
        let mut qh = s.take_i8(hd);
        let mut xw = s.take_i16(self.in_dim);
        let mut hw = s.take_i16(hd);
        for t in 0..x.rows {
            let sx = quantize_row(x.row(t), &mut qx);
            let sh = quantize_row(&hm.data, &mut qh);
            widen_i8_into(&qx, &mut xw);
            widen_i8_into(&qh, &mut hw);
            self.gates_quant(&xw, sx, &hw, sh, &mut zm.data);
            let z = &zm.data;
            for j in 0..hd {
                let i = sigmoid(z[j]);
                let f = sigmoid(z[hd + j]);
                let g = z[2 * hd + j].tanh();
                let o = sigmoid(z[3 * hd + j]);
                let c = f * cm.data[j] + i * g;
                cm.data[j] = c;
                hm.data[j] = o * c.tanh();
            }
            out.row_mut(t).copy_from_slice(&hm.data);
        }
        s.give(hm);
        s.give(cm);
        s.give(zm);
        s.give_i8(qx);
        s.give_i8(qh);
        s.give_i16(xw);
        s.give_i16(hw);
        out
    }

    /// Mirrors [`Lstm::infer_batch_in`]: lock-step recurrence across
    /// `batch` stacked sequences.
    pub fn infer_batch_in(&self, x: &Matrix, batch: usize, s: &mut ScratchArena) -> Matrix {
        assert_eq!(x.cols, self.in_dim);
        assert!(
            batch > 0 && x.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.rows / batch;
        let hd = self.hidden;
        let mut out = s.take(x.rows, hd);
        let mut hm = s.take(batch, hd);
        let mut cm = s.take(batch, hd);
        let mut zm = s.take(1, 4 * hd);
        let mut qx = s.take_i8(self.in_dim);
        let mut qh = s.take_i8(hd);
        let mut xw = s.take_i16(self.in_dim);
        let mut hw = s.take_i16(hd);
        for t in 0..seq {
            for b in 0..batch {
                let sx = quantize_row(x.row(b * seq + t), &mut qx);
                let sh = quantize_row(hm.row(b), &mut qh);
                widen_i8_into(&qx, &mut xw);
                widen_i8_into(&qh, &mut hw);
                self.gates_quant(&xw, sx, &hw, sh, &mut zm.data);
                let z = &zm.data;
                for j in 0..hd {
                    let i = sigmoid(z[j]);
                    let f = sigmoid(z[hd + j]);
                    let g = z[2 * hd + j].tanh();
                    let o = sigmoid(z[3 * hd + j]);
                    let c = f * cm.at(b, j) + i * g;
                    *cm.at_mut(b, j) = c;
                    *hm.at_mut(b, j) = o * c.tanh();
                }
                out.row_mut(b * seq + t).copy_from_slice(hm.row(b));
            }
        }
        s.give(hm);
        s.give(cm);
        s.give(zm);
        s.give_i8(qx);
        s.give_i8(qh);
        s.give_i16(xw);
        s.give_i16(hw);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::rng;

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn quant_attention_tracks_f32() {
        let mut r = rng(31);
        let a = SelfAttention::new(16, 8, &mut r);
        let qa = QuantSelfAttention::from_attention(&a);
        let x = Matrix::xavier(9, 16, &mut r);
        let mut s = ScratchArena::new();
        let exact = a.infer(&x);
        let quant = qa.infer_in(&x, &mut s);
        // Attention outputs are convex mixes of projected rows; int8 error
        // stays well under the activation magnitude.
        assert!(
            max_abs_diff(&exact.data, &quant.data) < 0.05,
            "diff {}",
            max_abs_diff(&exact.data, &quant.data)
        );
    }

    #[test]
    fn quant_transformer_tracks_f32() {
        let mut r = rng(32);
        let t = TransformerLayer::new(16, 4, &mut r);
        let qt = QuantTransformerLayer::from_layer(&t);
        let x = Matrix::xavier(9, 16, &mut r);
        let mut s = ScratchArena::new();
        let exact = t.infer(&x);
        let quant = qt.infer_in(&x, &mut s);
        // Post-LN activations are O(1); the residual+LN structure keeps
        // quantization error from compounding.
        assert!(
            max_abs_diff(&exact.data, &quant.data) < 0.35,
            "diff {}",
            max_abs_diff(&exact.data, &quant.data)
        );
    }

    #[test]
    fn quant_lstm_tracks_f32() {
        let mut r = rng(33);
        let l = Lstm::new(12, 16, &mut r);
        let ql = QuantLstm::from_lstm(&l);
        let x = Matrix::xavier(9, 12, &mut r);
        let mut s = ScratchArena::new();
        let exact = l.infer(&x);
        let quant = ql.infer_in(&x, &mut s);
        assert!(
            max_abs_diff(&exact.data, &quant.data) < 0.05,
            "diff {}",
            max_abs_diff(&exact.data, &quant.data)
        );
    }

    #[test]
    fn quant_batch_is_bit_identical_to_per_sequence() {
        let mut r = rng(34);
        let t = TransformerLayer::new(8, 2, &mut r);
        let qt = QuantTransformerLayer::from_layer(&t);
        let l = Lstm::new(6, 8, &mut r);
        let ql = QuantLstm::from_lstm(&l);
        let batch = 4;
        let seq = 5;
        let xs: Vec<Matrix> = (0..batch).map(|_| Matrix::xavier(seq, 8, &mut r)).collect();
        let xl: Vec<Matrix> = (0..batch).map(|_| Matrix::xavier(seq, 6, &mut r)).collect();
        let mut stack = Matrix::zeros(batch * seq, 8);
        let mut stack_l = Matrix::zeros(batch * seq, 6);
        for b in 0..batch {
            for tt in 0..seq {
                stack.row_mut(b * seq + tt).copy_from_slice(xs[b].row(tt));
                stack_l.row_mut(b * seq + tt).copy_from_slice(xl[b].row(tt));
            }
        }
        let mut s = ScratchArena::new();
        let fused = qt.infer_batch_in(&stack, batch, &mut s);
        let fused_l = ql.infer_batch_in(&stack_l, batch, &mut s);
        for b in 0..batch {
            let single = qt.infer_in(&xs[b], &mut s);
            let single_l = ql.infer_in(&xl[b], &mut s);
            for tt in 0..seq {
                assert_eq!(
                    fused.row(b * seq + tt),
                    single.row(tt),
                    "transformer batch {b} row {tt}"
                );
                assert_eq!(
                    fused_l.row(b * seq + tt),
                    single_l.row(tt),
                    "lstm batch {b} row {tt}"
                );
            }
            s.give(single);
            s.give(single_l);
        }
    }

    #[test]
    fn quant_transformer_steady_state_is_allocation_free() {
        let mut r = rng(35);
        let t = TransformerLayer::new(8, 2, &mut r);
        let qt = QuantTransformerLayer::from_layer(&t);
        let x = Matrix::xavier(5, 8, &mut r);
        let mut s = ScratchArena::new();
        let w = qt.infer_in(&x, &mut s);
        let baseline = w.data.clone();
        s.give(w);
        let (_, misses_warm) = s.stats();
        for _ in 0..5 {
            let y = qt.infer_in(&x, &mut s);
            assert_eq!(y.data, baseline);
            s.give(y);
        }
        let (_, misses) = s.stats();
        assert_eq!(misses, misses_warm, "steady state must not allocate");
    }

    #[test]
    fn quant_storage_is_under_a_third_of_f32() {
        let mut r = rng(36);
        use crate::layers::Module;
        let t = TransformerLayer::new(16, 4, &mut r);
        let qt = QuantTransformerLayer::from_layer(&t);
        let f32_bytes = t.num_params() * 4;
        assert!(
            qt.storage_bytes() * 3 < f32_bytes * 2,
            "{} vs {f32_bytes}",
            qt.storage_bytes()
        );
    }
}
