//! Loss functions with fused gradients: binary cross-entropy with logits
//! (the spatial delta predictor's multi-label loss), softmax cross-entropy
//! (the temporal page predictor's loss), and the temperature-scaled
//! knowledge-distillation loss used for model compression (§6.1).

use crate::tensor::Matrix;

/// Multi-label BCE with logits, mean over all elements.
/// Returns `(loss, dL/dlogits)` with the fused, numerically stable form
/// `dL/dz = (sigmoid(z) - y) / N`.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(logits.rows, targets.rows);
    assert_eq!(logits.cols, targets.cols);
    let n = logits.data.len() as f32;
    let mut grad = Matrix::zeros(logits.rows, logits.cols);
    let mut loss = 0.0f32;
    for i in 0..logits.data.len() {
        let z = logits.data[i];
        let y = targets.data[i];
        // log(1 + e^-|z|) + max(z,0) - z*y, the stable BCE-with-logits form.
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        let s = 1.0 / (1.0 + (-z).exp());
        grad.data[i] = (s - y) / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy over rows against integer class targets.
/// Returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows, targets.len());
    let probs = logits.softmax_rows();
    let n = logits.rows as f32;
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols, "target {t} out of range");
        loss -= probs.at(r, t).max(1e-12).ln();
        *grad.at_mut(r, t) -= 1.0;
    }
    grad.scale(1.0 / n);
    (loss / n, grad)
}

/// Knowledge-distillation loss (Hinton et al.): KL divergence between the
/// teacher's and student's temperature-softened distributions, scaled by
/// `T²` so gradient magnitudes are comparable across temperatures.
/// `teacher_logits` are treated as constants. Returns `(loss, dL/dstudent)`.
pub fn distillation_loss(
    student_logits: &Matrix,
    teacher_logits: &Matrix,
    temperature: f32,
) -> (f32, Matrix) {
    assert_eq!(student_logits.rows, teacher_logits.rows);
    assert_eq!(student_logits.cols, teacher_logits.cols);
    let t = temperature;
    let mut soft_teacher = teacher_logits.clone();
    soft_teacher.scale(1.0 / t);
    let p = soft_teacher.softmax_rows();
    let mut soft_student = student_logits.clone();
    soft_student.scale(1.0 / t);
    let q = soft_student.softmax_rows();
    let n = student_logits.rows as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(q.rows, q.cols);
    for r in 0..q.rows {
        for c in 0..q.cols {
            let pv = p.at(r, c).max(1e-12);
            let qv = q.at(r, c).max(1e-12);
            loss += pv * (pv.ln() - qv.ln());
            // d/dz_s of T² · KL(p ‖ q(z_s/T)) = T (q - p); mean over rows.
            grad.data[r * q.cols + c] = t * (qv - pv) / n;
        }
    }
    (loss * t * t / n, grad)
}

/// Binary-vector distillation for the BCE (multi-label) head: student
/// matches the teacher's per-label sigmoid probabilities.
pub fn binary_distillation_loss(student_logits: &Matrix, teacher_logits: &Matrix) -> (f32, Matrix) {
    assert_eq!(student_logits.data.len(), teacher_logits.data.len());
    let n = student_logits.data.len() as f32;
    let mut grad = Matrix::zeros(student_logits.rows, student_logits.cols);
    let mut loss = 0.0f32;
    for i in 0..student_logits.data.len() {
        let zs = student_logits.data[i];
        let pt = 1.0 / (1.0 + (-teacher_logits.data[i]).exp());
        loss += zs.max(0.0) - zs * pt + (1.0 + (-zs.abs()).exp()).ln();
        let ps = 1.0 / (1.0 + (-zs).exp());
        grad.data[i] = (ps - pt) / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_is_minimal_at_perfect_confident_prediction() {
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let good = Matrix::from_vec(1, 3, vec![10.0, -10.0, 10.0]);
        let bad = Matrix::from_vec(1, 3, vec![-10.0, 10.0, -10.0]);
        let (lg, _) = bce_with_logits(&good, &targets);
        let (lb, _) = bce_with_logits(&bad, &targets);
        assert!(lg < 1e-3);
        assert!(lb > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let targets = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let z = Matrix::from_vec(1, 4, vec![0.5, -0.3, 1.2, 0.1]);
        let (_, g) = bce_with_logits(&z, &targets);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut zp = z.clone();
            zp.data[i] += eps;
            let mut zm = z.clone();
            zm.data[i] -= eps;
            let num =
                (bce_with_logits(&zp, &targets).0 - bce_with_logits(&zm, &targets).0) / (2.0 * eps);
            assert!((num - g.data[i]).abs() < 1e-3, "{num} vs {}", g.data[i]);
        }
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let z = Matrix::from_vec(2, 3, vec![0.2, -0.5, 1.0, 0.9, 0.1, -1.1]);
        let t = vec![2usize, 0];
        let (_, g) = softmax_cross_entropy(&z, &t);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut zp = z.clone();
            zp.data[i] += eps;
            let mut zm = z.clone();
            zm.data[i] -= eps;
            let num =
                (softmax_cross_entropy(&zp, &t).0 - softmax_cross_entropy(&zm, &t).0) / (2.0 * eps);
            assert!((num - g.data[i]).abs() < 1e-3, "{num} vs {}", g.data[i]);
        }
    }

    #[test]
    fn ce_loss_decreases_with_correct_confidence() {
        let low = Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let high = Matrix::from_vec(1, 3, vec![5.0, 0.0, 0.0]);
        let (l0, _) = softmax_cross_entropy(&low, &[0]);
        let (l1, _) = softmax_cross_entropy(&high, &[0]);
        assert!(l1 < l0);
        assert!((l0 - (3.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn kd_loss_zero_when_student_equals_teacher() {
        let t = Matrix::from_vec(1, 4, vec![1.0, -2.0, 0.5, 0.0]);
        let (loss, grad) = distillation_loss(&t, &t, 2.0);
        assert!(loss.abs() < 1e-6);
        assert!(grad.norm() < 1e-6);
    }

    #[test]
    fn kd_gradient_matches_finite_difference() {
        let teacher = Matrix::from_vec(1, 3, vec![2.0, -1.0, 0.3]);
        let student = Matrix::from_vec(1, 3, vec![0.1, 0.6, -0.4]);
        let (_, g) = distillation_loss(&student, &teacher, 3.0);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut sp = student.clone();
            sp.data[i] += eps;
            let mut sm = student.clone();
            sm.data[i] -= eps;
            let num = (distillation_loss(&sp, &teacher, 3.0).0
                - distillation_loss(&sm, &teacher, 3.0).0)
                / (2.0 * eps);
            assert!((num - g.data[i]).abs() < 1e-3, "{num} vs {}", g.data[i]);
        }
    }

    #[test]
    fn binary_kd_pulls_student_toward_teacher() {
        let teacher = Matrix::from_vec(1, 2, vec![4.0, -4.0]);
        let student = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (_, g) = binary_distillation_loss(&student, &teacher);
        // Teacher says label 0 on, label 1 off: gradient pushes logits
        // toward (+, -).
        assert!(g.data[0] < 0.0); // decrease loss by increasing logit 0
        assert!(g.data[1] > 0.0);
        let (l_same, _) = binary_distillation_loss(&teacher, &teacher);
        let (l_diff, _) = binary_distillation_loss(&student, &teacher);
        assert!(l_same < l_diff);
    }
}
