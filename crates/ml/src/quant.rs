//! Int8 symmetric weight quantization (§6.1 "Quantization"): weights are
//! stored as `i8` with a per-tensor scale, shrinking model storage 4× on top
//! of the architectural compression, at a small accuracy cost that the
//! paper (and our Figure 13 harness) measures.

use crate::layers::{Module, Param};
use crate::tensor::Matrix;

/// A quantized tensor: `w ≈ q * scale` with `q ∈ [-127, 127]`.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    pub q: Vec<i8>,
    pub scale: f32,
    pub rows: usize,
    pub cols: usize,
}

impl QuantizedTensor {
    /// Quantizes symmetric per-tensor: scale = max|w| / 127.
    pub fn quantize(w: &Matrix) -> Self {
        let max = w.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let q = w
            .data
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedTensor {
            q,
            scale,
            rows: w.rows,
            cols: w.cols,
        }
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.q.iter().map(|&v| v as f32 * self.scale).collect(),
        )
    }

    /// Storage in bytes (int8 payload + the f32 scale).
    pub fn storage_bytes(&self) -> usize {
        self.q.len() + 4
    }

    /// Worst-case absolute reconstruction error bound: scale / 2.
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Quantizes every parameter of a module in place (simulated quantization:
/// the weights are replaced by their dequantized int8 values, so inference
/// behaves exactly as int8 storage would). Returns total int8 storage bytes.
pub fn quantize_module(module: &mut dyn Module) -> usize {
    let mut bytes = 0usize;
    module.for_each_param(&mut |p: &mut Param| {
        let q = QuantizedTensor::quantize(&p.w);
        bytes += q.storage_bytes();
        p.w = q.dequantize();
    });
    bytes
}

/// Float storage bytes of a module (4 bytes per weight).
pub fn float_storage_bytes(module: &mut dyn Module) -> usize {
    module.num_params() * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::tensor::rng;

    #[test]
    fn roundtrip_error_bounded() {
        let mut r = rng(1);
        let w = Matrix::xavier(16, 16, &mut r);
        let q = QuantizedTensor::quantize(&w);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-6;
        for (a, b) in w.data.iter().zip(back.data.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let w = Matrix::zeros(3, 3);
        let q = QuantizedTensor::quantize(&w);
        assert!(q.dequantize().data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extremes_map_to_127() {
        let w = Matrix::from_vec(1, 2, vec![-2.0, 2.0]);
        let q = QuantizedTensor::quantize(&w);
        assert_eq!(q.q, vec![-127, 127]);
    }

    #[test]
    fn quantize_module_shrinks_storage_4x() {
        let mut r = rng(2);
        let mut l = Linear::new(32, 32, &mut r);
        let float_bytes = float_storage_bytes(&mut l);
        let int_bytes = quantize_module(&mut l);
        assert!(int_bytes * 3 < float_bytes, "{int_bytes} vs {float_bytes}");
    }

    #[test]
    fn quantized_linear_output_stays_close() {
        let mut r = rng(3);
        let mut l = Linear::new(8, 8, &mut r);
        let x = Matrix::xavier(4, 8, &mut r);
        let before = l.infer(&x);
        quantize_module(&mut l);
        let after = l.infer(&x);
        for (a, b) in before.data.iter().zip(after.data.iter()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }
}
