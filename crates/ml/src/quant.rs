//! Int8 symmetric quantization (§6.1 "Quantization"): weights are stored as
//! `i8` with a scale, shrinking model storage 4× on top of the architectural
//! compression, at a small accuracy cost that the paper (and our Figure 13
//! harness) measures.
//!
//! Two tiers live here:
//!
//! * [`QuantizedTensor`] — per-tensor scale, used by [`quantize_module`] for
//!   *simulated* quantization (weights replaced by their dequantized int8
//!   values, inference stays f32). This is the storage-accounting tier.
//! * [`QuantizedLinear`] plus the `matmul_i8*` kernels — per-output-channel
//!   (per-row) scales and a real i8×i8→i32 inference path: activations are
//!   quantized on the fly per row, the dot products run entirely in
//!   integers, and the f32 result is reconstructed as
//!   `acc · scale_x[row] · scale_w[channel] + bias`. Per-row weight scales
//!   mean one outlier weight no longer crushes the resolution of every
//!   other output channel.
//!
//! Products are bounded by `127·127 = 16129`, so an `i32` accumulator is
//! exact up to `k > 130 000` — far beyond any model dimension here — and
//! integer addition is associative, so the register-tiled kernels match
//! their `_ref` twins *bit-exactly* (the property tests assert `==`, not a
//! tolerance).

use crate::arena::ScratchArena;
use crate::layers::{Linear, Module, Param};
use crate::tensor::Matrix;

/// Symmetric quantization scale for a tensor with magnitude `max`, with the
/// edge cases fixed:
///
/// * `max == 0` → scale 1.0 (all q = 0; any positive scale works);
/// * subnormal `max` (< ~1.8e-43) makes `max / 127` round to 0.0, and
///   dividing by that scale would produce ±inf clamped to ±127 garbage —
///   guarded the same way (all values quantize to 0, which is within any
///   reasonable error bound of values that small);
/// * the returned scale is driven to a fixed point of requantization
///   (`scale == (127·scale)/127` in f32), so dequantize → quantize
///   reproduces the same `(q, scale)` pair exactly — [`quantize_module`]
///   applied twice is a bit-exact no-op.
fn stable_scale(max: f32) -> f32 {
    let mut scale = max / 127.0;
    if scale == 0.0 {
        return 1.0;
    }
    // max|q| is 127 after quantization, so requantization sees a new max of
    // fl(127·scale) and derives fl(fl(127·scale)/127). Iterate that map to
    // a fixed point (monotone, converges within a couple of 1-ulp steps;
    // the bound is just a safety net).
    for _ in 0..8 {
        let next = (127.0 * scale) / 127.0;
        if next == scale {
            break;
        }
        scale = next;
    }
    scale
}

/// Quantizes `src` against `scale` into `dst`.
fn quantize_into(src: &[f32], scale: f32, dst: &mut [i8]) {
    for (d, &v) in dst.iter_mut().zip(src.iter()) {
        *d = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
}

/// On-the-fly activation quantization for one row; returns the row scale.
/// Zero and subnormal rows quantize to all-zero with scale 0.0, making the
/// dequantized product exactly 0.0 — which is also the exact f32 result for
/// a zero row.
pub fn quantize_row(src: &[f32], dst: &mut [i8]) -> f32 {
    let max = src.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
    let scale = max / 127.0;
    if scale == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    quantize_into(src, scale, dst);
    scale
}

/// A quantized tensor: `w ≈ q * scale` with `q ∈ [-127, 127]`.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    pub q: Vec<i8>,
    pub scale: f32,
    pub rows: usize,
    pub cols: usize,
}

impl QuantizedTensor {
    /// Quantizes symmetric per-tensor: scale = max|w| / 127 (see
    /// `stable_scale` for the zero/subnormal/idempotency guards).
    pub fn quantize(w: &Matrix) -> Self {
        let max = w.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = stable_scale(max);
        let mut q = vec![0i8; w.data.len()];
        quantize_into(&w.data, scale, &mut q);
        QuantizedTensor {
            q,
            scale,
            rows: w.rows,
            cols: w.cols,
        }
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.q.iter().map(|&v| v as f32 * self.scale).collect(),
        )
    }

    /// Storage in bytes: int8 payload + the f32 scale + the two u32 shape
    /// fields a deployed blob needs to reconstruct the matrix. (The seed
    /// omitted the shape metadata, flattering every compression ratio.)
    pub fn storage_bytes(&self) -> usize {
        self.q.len() + 4 + 2 * 4
    }

    /// Worst-case absolute reconstruction error bound: scale / 2.
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Quantizes every parameter of a module in place (simulated quantization:
/// the weights are replaced by their dequantized int8 values, so inference
/// behaves exactly as int8 storage would). Returns total int8 storage bytes.
/// Applying this twice is a bit-exact no-op (see `stable_scale`).
pub fn quantize_module(module: &mut dyn Module) -> usize {
    let mut bytes = 0usize;
    module.for_each_param(&mut |p: &mut Param| {
        let q = QuantizedTensor::quantize(&p.w);
        bytes += q.storage_bytes();
        p.w = q.dequantize();
    });
    bytes
}

/// Float storage bytes of a module (4 bytes per weight).
pub fn float_storage_bytes(module: &dyn Module) -> usize {
    module.num_params() * 4
}

// ---------------------------------------------------------------------------
// i8 × i8 → i32 kernels
// ---------------------------------------------------------------------------

/// Integer dot product over i8 operands with exact i32 accumulation.
///
/// Deliberately a plain iterator reduction, *not* a manual unroll: integer
/// addition is associative, so LLVM is free to vectorize the whole
/// reduction however it likes — a hand-tiled version (the f32 `dot4`
/// pattern, which exists only to pin FP summation order) pins the integer
/// order too and blocks that, measuring ~4× slower. Products are computed
/// in i16 (exact: |i8×i8| ≤ 127² < 2¹⁵) so the multiply stays 16-bit wide.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x as i16 * y as i16) as i32)
        .sum()
}

/// Dot product of pre-widened i16 operands (each holding an i8 value) with
/// exact i32 accumulation — the serve-path hot dot. With both sides already
/// sign-extended, the kernel is a pure widening multiply-add that LLVM
/// lowers to `vpmaddwd` (32 products per instruction on AVX-512); widening
/// inside the loop instead costs ~35% at AMMA shapes.
#[inline]
pub fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum()
}

/// Sign-extends an i8 slice into an i16 slice (panics on length mismatch).
#[inline]
pub fn widen_i8_into(src: &[i8], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len(), "widen_i8 shape");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = s as i16;
    }
}

/// `a [m,k] @ b [k,n] → out [m,n]`, all row-major i8 with exact i32
/// accumulation. Register-tiled like the f32 `matmul_into`: 4 output rows ×
/// 4 k-steps per inner iteration.
pub fn matmul_i8_into(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "matmul_i8 a shape");
    assert_eq!(b.len(), k * n, "matmul_i8 b shape");
    assert_eq!(out.len(), m * n, "matmul_i8 out shape");
    out.fill(0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let mut i = 0;
    while i + 4 <= m {
        let a_block = &a[i * k..(i + 4) * k];
        let (ar0, rest) = a_block.split_at(k);
        let (ar1, rest) = rest.split_at(k);
        let (ar2, ar3) = rest.split_at(k);
        let o_block = &mut out[i * n..(i + 4) * n];
        let (o0, rest) = o_block.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut kk = 0;
        while kk + 4 <= k {
            let (a00, a01, a02, a03) = (
                ar0[kk] as i16,
                ar0[kk + 1] as i16,
                ar0[kk + 2] as i16,
                ar0[kk + 3] as i16,
            );
            let (a10, a11, a12, a13) = (
                ar1[kk] as i16,
                ar1[kk + 1] as i16,
                ar1[kk + 2] as i16,
                ar1[kk + 3] as i16,
            );
            let (a20, a21, a22, a23) = (
                ar2[kk] as i16,
                ar2[kk + 1] as i16,
                ar2[kk + 2] as i16,
                ar2[kk + 3] as i16,
            );
            let (a30, a31, a32, a33) = (
                ar3[kk] as i16,
                ar3[kk + 1] as i16,
                ar3[kk + 2] as i16,
                ar3[kk + 3] as i16,
            );
            let panel = &b[kk * n..(kk + 4) * n];
            let (b0, rest) = panel.split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, b3) = rest.split_at(n);
            // Products in i16 (exact for i8 operands) so the j-loop
            // vectorizes with 16-bit multiplies instead of scalar i32 ones.
            for j in 0..n {
                let (p0, p1, p2, p3) = (b0[j] as i16, b1[j] as i16, b2[j] as i16, b3[j] as i16);
                o0[j] +=
                    (a00 * p0) as i32 + (a01 * p1) as i32 + (a02 * p2) as i32 + (a03 * p3) as i32;
                o1[j] +=
                    (a10 * p0) as i32 + (a11 * p1) as i32 + (a12 * p2) as i32 + (a13 * p3) as i32;
                o2[j] +=
                    (a20 * p0) as i32 + (a21 * p1) as i32 + (a22 * p2) as i32 + (a23 * p3) as i32;
                o3[j] +=
                    (a30 * p0) as i32 + (a31 * p1) as i32 + (a32 * p2) as i32 + (a33 * p3) as i32;
            }
            kk += 4;
        }
        while kk < k {
            let (a0, a1, a2, a3) = (
                ar0[kk] as i16,
                ar1[kk] as i16,
                ar2[kk] as i16,
                ar3[kk] as i16,
            );
            let b0 = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                let p = b0[j] as i16;
                o0[j] += (a0 * p) as i32;
                o1[j] += (a1 * p) as i32;
                o2[j] += (a2 * p) as i32;
                o3[j] += (a3 * p) as i32;
            }
            kk += 1;
        }
        i += 4;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let o0 = &mut out[i * n..(i + 1) * n];
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (
                a_row[kk] as i16,
                a_row[kk + 1] as i16,
                a_row[kk + 2] as i16,
                a_row[kk + 3] as i16,
            );
            let panel = &b[kk * n..(kk + 4) * n];
            let (b0, rest) = panel.split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, b3) = rest.split_at(n);
            for j in 0..n {
                o0[j] += (a0 * b0[j] as i16) as i32
                    + (a1 * b1[j] as i16) as i32
                    + (a2 * b2[j] as i16) as i32
                    + (a3 * b3[j] as i16) as i32;
            }
            kk += 4;
        }
        while kk < k {
            let a0 = a_row[kk] as i16;
            let b0 = &b[kk * n..(kk + 1) * n];
            for j in 0..n {
                o0[j] += (a0 * b0[j] as i16) as i32;
            }
            kk += 1;
        }
        i += 1;
    }
}

/// Naive `ikj` reference for [`matmul_i8_into`]; bit-exact equal.
pub fn matmul_i8_ref(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "matmul_i8 a shape");
    assert_eq!(b.len(), k * n, "matmul_i8 b shape");
    assert_eq!(out.len(), m * n, "matmul_i8 out shape");
    out.fill(0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j] as i32;
            }
        }
    }
}

/// `a [m,k] @ b^T` with `b` stored `[n,k]` row-major — the orientation the
/// quantized inference path uses (weights live transposed, one output
/// channel per contiguous row). Each output element is one [`dot_i8`].
/// Unlike the f32 `matmul_bt`, whose per-element dot cannot be vectorized
/// without changing FP summation order, the integer dot reassociates
/// freely, so this orientation is where int8 wins: contiguous k-major
/// rows on both sides feed the 16-bit multiply-add directly.
pub fn matmul_i8_bt_into(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "matmul_i8_bt a shape");
    assert_eq!(b.len(), n * k, "matmul_i8_bt b shape");
    assert_eq!(out.len(), m * n, "matmul_i8_bt out shape");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            *o = dot_i8(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// Strictly sequential reference for [`matmul_i8_bt_into`]; bit-exact equal.
pub fn matmul_i8_bt_ref(a: &[i8], b: &[i8], m: usize, k: usize, n: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "matmul_i8_bt a shape");
    assert_eq!(b.len(), n * k, "matmul_i8_bt b shape");
    assert_eq!(out.len(), m * n, "matmul_i8_bt out shape");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += a[i * k + kk] as i32 * b[j * k + kk] as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

/// The serve-path bt kernel: i8 activations against weights pre-widened to
/// i16 ([`QuantizedLinear::qw16`]). Each activation row is sign-extended
/// once into `xw` (caller scratch, len ≥ `k`) and reused across all `n`
/// output channels, so the inner loop is a pure i16×i16→i32 multiply-add
/// ([`dot_i16`]) with no per-dot widening. Bit-exact equal to
/// [`matmul_i8_bt_ref`] on the un-widened weights.
pub fn matmul_i8w16_bt_into(
    a: &[i8],
    b16: &[i16],
    m: usize,
    k: usize,
    n: usize,
    xw: &mut [i16],
    out: &mut [i32],
) {
    assert_eq!(a.len(), m * k, "matmul_i8w16_bt a shape");
    assert_eq!(b16.len(), n * k, "matmul_i8w16_bt b shape");
    assert_eq!(out.len(), m * n, "matmul_i8w16_bt out shape");
    assert!(xw.len() >= k, "matmul_i8w16_bt scratch too small");
    let xw = &mut xw[..k];
    for i in 0..m {
        widen_i8_into(&a[i * k..(i + 1) * k], xw);
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            *o = dot_i16(xw, &b16[j * k..(j + 1) * k]);
        }
    }
}

// ---------------------------------------------------------------------------
// QuantizedLinear
// ---------------------------------------------------------------------------

/// A dense layer held entirely in int8: weights stored transposed
/// (`[out, in]` row-major, one output channel per row) with **per-row
/// scales**, f32 bias. Inference quantizes each activation row on the fly,
/// runs the i8×i8→i32 dot kernels, and reconstructs
/// `y[r,o] = acc · sx[r] · sw[o] + bias[o]`.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// `[out_dim, in_dim]` row-major quantized weights (transposed). This
    /// is the canonical stored form — what gets serialized/shipped and what
    /// [`QuantizedLinear::storage_bytes`] counts.
    pub qw: Vec<i8>,
    /// `qw` sign-extended to i16 — a derived decode mirror built at
    /// construction, never stored or shipped. The hot dot over pre-widened
    /// operands is a pure 16-bit multiply-add (`vpmaddwd`); widening i8
    /// rows inside the inner loop instead costs ~35% at AMMA shapes.
    pub qw16: Vec<i16>,
    /// Per-output-channel scale.
    pub scales: Vec<f32>,
    /// f32 bias, added after dequantization (zeros when the source layer
    /// had none).
    pub bias: Vec<f32>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl QuantizedLinear {
    /// Quantizes a dense layer (weights `[in, out]`, transposed here).
    pub fn from_linear(l: &Linear) -> Self {
        Self::from_weight(&l.w.w, Some(&l.b.w.data))
    }

    /// Quantizes a bare weight matrix `[in, out]` (e.g. an attention
    /// projection `Param`), transposing into channel-major layout.
    pub fn from_weight(w: &Matrix, bias: Option<&[f32]>) -> Self {
        let (in_dim, out_dim) = (w.rows, w.cols);
        let mut qw = vec![0i8; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            let mut max = 0.0f32;
            for i in 0..in_dim {
                max = max.max(w.at(i, o).abs());
            }
            let scale = stable_scale(max);
            scales[o] = scale;
            for i in 0..in_dim {
                qw[o * in_dim + i] = (w.at(i, o) / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        let bias = bias.map_or_else(|| vec![0.0; out_dim], <[f32]>::to_vec);
        let qw16 = qw.iter().map(|&v| v as i16).collect();
        QuantizedLinear {
            qw,
            qw16,
            scales,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Quantizes a matrix already laid out one output channel per row
    /// (`[out, in]` row-major) — e.g. an embedding table reused as a tied
    /// output head, where `logits = h @ table^T`.
    pub fn from_rows(w: &Matrix, bias: Option<&[f32]>) -> Self {
        let (out_dim, in_dim) = (w.rows, w.cols);
        let mut qw = vec![0i8; in_dim * out_dim];
        let mut scales = vec![0.0f32; out_dim];
        for o in 0..out_dim {
            let row = w.row(o);
            let max = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let scale = stable_scale(max);
            scales[o] = scale;
            quantize_into(row, scale, &mut qw[o * in_dim..(o + 1) * in_dim]);
        }
        let bias = bias.map_or_else(|| vec![0.0; out_dim], <[f32]>::to_vec);
        let qw16 = qw.iter().map(|&v| v as i16).collect();
        QuantizedLinear {
            qw,
            qw16,
            scales,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Deployed size: int8 weights + f32 per-row scales + f32 bias + shape.
    /// The i16 decode mirror is derived at load time and not counted — it
    /// is working memory, not model storage.
    pub fn storage_bytes(&self) -> usize {
        self.qw.len() + 4 * self.scales.len() + 4 * self.bias.len() + 2 * 4
    }

    /// Quantized forward through arena-owned scratch (the activation int8
    /// row and its widened i16 copy come from — and return to — the arena,
    /// so the steady state allocates nothing). Each row is quantized,
    /// widened once, then dotted against the pre-widened weight mirror.
    pub fn infer_in(&self, x: &Matrix, s: &mut ScratchArena) -> Matrix {
        assert_eq!(x.cols, self.in_dim, "quantized linear shape");
        let rows = x.rows;
        let mut qx = s.take_i8(self.in_dim);
        let mut xw = s.take_i16(self.in_dim);
        let mut out = s.take(rows, self.out_dim);
        for r in 0..rows {
            let sxr = quantize_row(x.row(r), &mut qx);
            widen_i8_into(&qx, &mut xw);
            let o_row = out.row_mut(r);
            for (o, ov) in o_row.iter_mut().enumerate() {
                let acc = dot_i16(&xw, &self.qw16[o * self.in_dim..(o + 1) * self.in_dim]);
                *ov = acc as f32 * (sxr * self.scales[o]) + self.bias[o];
            }
        }
        s.give_i8(qx);
        s.give_i16(xw);
        out
    }

    /// Allocating convenience wrapper around [`QuantizedLinear::infer_in`].
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut s = ScratchArena::new();
        self.infer_in(x, &mut s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::tensor::rng;

    #[test]
    fn roundtrip_error_bounded() {
        let mut r = rng(1);
        let w = Matrix::xavier(16, 16, &mut r);
        let q = QuantizedTensor::quantize(&w);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-6;
        for (a, b) in w.data.iter().zip(back.data.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let w = Matrix::zeros(3, 3);
        let q = QuantizedTensor::quantize(&w);
        assert!(q.dequantize().data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extremes_map_to_127() {
        let w = Matrix::from_vec(1, 2, vec![-2.0, 2.0]);
        let q = QuantizedTensor::quantize(&w);
        assert_eq!(q.q, vec![-127, 127]);
    }

    #[test]
    fn subnormal_weights_quantize_to_zero_not_inf() {
        // max/127 rounds to 0.0 for subnormal max; the seed then computed
        // v/0.0 = ±inf and clamped to ±127 garbage. Fixed: treated as zero.
        let tiny = 1.0e-44f32; // subnormal, tiny/127 == 0.0 in f32
        assert_eq!(tiny / 127.0, 0.0);
        let w = Matrix::from_vec(1, 3, vec![tiny, -tiny, 0.0]);
        let q = QuantizedTensor::quantize(&w);
        assert_eq!(q.q, vec![0, 0, 0], "subnormals must not clamp to ±127");
        assert!(q.dequantize().data.iter().all(|&v| v == 0.0));
        // Error bound still honest: |tiny - 0| << scale/2.
        assert!(tiny <= q.error_bound());
    }

    #[test]
    fn storage_bytes_include_shape_metadata() {
        let w = Matrix::zeros(4, 8);
        let q = QuantizedTensor::quantize(&w);
        // 32 int8 weights + 4-byte scale + two 4-byte shape fields.
        assert_eq!(q.storage_bytes(), 32 + 4 + 8);
    }

    #[test]
    fn quantize_is_idempotent_bit_exactly() {
        let mut r = rng(9);
        for seed in 0..20 {
            let w = Matrix::xavier(7, 13, &mut r);
            let q1 = QuantizedTensor::quantize(&w);
            let d1 = q1.dequantize();
            let q2 = QuantizedTensor::quantize(&d1);
            assert_eq!(q1.q, q2.q, "seed {seed}: q drifted");
            assert_eq!(
                q1.scale.to_bits(),
                q2.scale.to_bits(),
                "seed {seed}: scale drifted"
            );
            assert_eq!(d1.data, q2.dequantize().data, "seed {seed}: values drifted");
        }
    }

    #[test]
    fn quantize_module_twice_is_noop() {
        let mut r = rng(2);
        let mut l = Linear::new(16, 16, &mut r);
        let bytes1 = quantize_module(&mut l);
        let after_once: Vec<f32> = l.w.w.data.clone();
        let bytes2 = quantize_module(&mut l);
        assert_eq!(l.w.w.data, after_once, "second quantization drifted");
        assert_eq!(bytes1, bytes2);
    }

    #[test]
    fn quantize_module_shrinks_storage_4x() {
        let mut r = rng(2);
        let mut l = Linear::new(32, 32, &mut r);
        let float_bytes = float_storage_bytes(&l);
        let int_bytes = quantize_module(&mut l);
        assert!(int_bytes * 3 < float_bytes, "{int_bytes} vs {float_bytes}");
    }

    #[test]
    fn quantized_linear_output_stays_close() {
        let mut r = rng(3);
        let mut l = Linear::new(8, 8, &mut r);
        let x = Matrix::xavier(4, 8, &mut r);
        let before = l.infer(&x);
        quantize_module(&mut l);
        let after = l.infer(&x);
        for (a, b) in before.data.iter().zip(after.data.iter()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    // --- i8 kernels ---

    fn random_i8(len: usize, r: &mut rand_chacha::ChaCha8Rng) -> Vec<i8> {
        use rand::Rng;
        (0..len).map(|_| r.gen_range(-127i32..=127) as i8).collect()
    }

    #[test]
    fn i8_kernels_match_reference_bit_exactly_on_odd_shapes() {
        let mut r = rng(11);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (2, 4, 4),
            (9, 64, 64),
            (9, 128, 128),
            (5, 17, 3),
            (4, 33, 8),
            (0, 4, 4),
            (4, 0, 4),
        ] {
            let a = random_i8(m * k, &mut r);
            let b = random_i8(k * n, &mut r);
            let mut fast = vec![7i32; m * n];
            let mut slow = vec![-7i32; m * n];
            matmul_i8_into(&a, &b, m, k, n, &mut fast);
            matmul_i8_ref(&a, &b, m, k, n, &mut slow);
            assert_eq!(fast, slow, "matmul_i8 ({m},{k},{n})");
            let bt = random_i8(n * k, &mut r);
            let mut fast_bt = vec![1i32; m * n];
            let mut slow_bt = vec![2i32; m * n];
            matmul_i8_bt_into(&a, &bt, m, k, n, &mut fast_bt);
            matmul_i8_bt_ref(&a, &bt, m, k, n, &mut slow_bt);
            assert_eq!(fast_bt, slow_bt, "matmul_i8_bt ({m},{k},{n})");
            let bt16: Vec<i16> = bt.iter().map(|&v| v as i16).collect();
            let mut fast_w16 = vec![3i32; m * n];
            let mut xw = vec![0i16; k.max(1)];
            matmul_i8w16_bt_into(&a, &bt16, m, k, n, &mut xw, &mut fast_w16);
            assert_eq!(fast_w16, slow_bt, "matmul_i8w16_bt ({m},{k},{n})");
        }
    }

    #[test]
    fn i8_accumulation_is_exact_at_extremes() {
        // 127·127·k must not saturate or wrap for any realistic k.
        let k = 512usize;
        let a = vec![127i8; k];
        let b = vec![127i8; k];
        let mut out = vec![0i32; 1];
        matmul_i8_bt_into(&a, &b, 1, k, 1, &mut out);
        assert_eq!(out[0], 127 * 127 * k as i32);
        let an = vec![-127i8; k];
        matmul_i8_bt_into(&an, &b, 1, k, 1, &mut out);
        assert_eq!(out[0], -127 * 127 * k as i32);
        let b16 = vec![127i16; k];
        let mut xw = vec![0i16; k];
        matmul_i8w16_bt_into(&an, &b16, 1, k, 1, &mut xw, &mut out);
        assert_eq!(out[0], -127 * 127 * k as i32);
    }

    // --- QuantizedLinear ---

    #[test]
    fn quantized_linear_tracks_f32_linear() {
        let mut r = rng(21);
        for &(rows, in_dim, out_dim) in &[(1usize, 8usize, 8usize), (9, 64, 64), (5, 32, 16)] {
            let l = Linear::new(in_dim, out_dim, &mut r);
            let ql = QuantizedLinear::from_linear(&l);
            let x = Matrix::xavier(rows, in_dim, &mut r);
            let exact = l.infer(&x);
            let quant = ql.infer(&x);
            // Error bound: each of the k products carries at most
            // |x|max·sw/2 + |w|max·sx/2 + sw·sx/4 of quantization error;
            // with s = max/127 that is ≈ k·|x|max·|w|max/127.
            let xmax = x.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let wmax = l.w.w.data.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let bound = in_dim as f32 * xmax * wmax / 100.0;
            for (a, b) in exact.data.iter().zip(quant.data.iter()) {
                assert!(
                    (a - b).abs() <= bound,
                    "({rows},{in_dim},{out_dim}): {a} vs {b} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn per_row_scales_isolate_outlier_channels() {
        // One output channel with a 100× outlier weight: per-tensor scaling
        // would crush every other channel's resolution; per-row scaling
        // keeps them accurate.
        let mut r = rng(22);
        let mut l = Linear::new(16, 4, &mut r);
        *l.w.w.at_mut(0, 3) = 100.0; // outlier in channel 3 only
        let ql = QuantizedLinear::from_linear(&l);
        let x = Matrix::xavier(2, 16, &mut r);
        let exact = l.infer(&x);
        let quant = ql.infer(&x);
        // Channels 0..3 must stay tight despite channel 3's outlier.
        for row in 0..2 {
            for c in 0..3 {
                let (a, b) = (exact.at(row, c), quant.at(row, c));
                assert!((a - b).abs() < 0.05, "ch {c}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quantized_linear_zero_rows_give_exact_bias() {
        let mut r = rng(23);
        let l = Linear::new(8, 4, &mut r);
        let ql = QuantizedLinear::from_linear(&l);
        let x = Matrix::zeros(3, 8);
        let y = ql.infer(&x);
        for row in 0..3 {
            assert_eq!(y.row(row), &ql.bias[..], "zero row must yield bias");
        }
    }

    #[test]
    fn quantized_linear_from_rows_matches_from_weight() {
        let mut r = rng(24);
        let w = Matrix::xavier(8, 6, &mut r); // [in, out]
        let a = QuantizedLinear::from_weight(&w, None);
        let b = QuantizedLinear::from_rows(&w.transpose(), None);
        assert_eq!(a.qw, b.qw);
        assert_eq!(a.scales, b.scales);
    }

    #[test]
    fn quantized_linear_arena_steady_state_is_allocation_free() {
        let mut r = rng(25);
        let l = Linear::new(16, 16, &mut r);
        let ql = QuantizedLinear::from_linear(&l);
        let x = Matrix::xavier(4, 16, &mut r);
        let mut s = ScratchArena::new();
        let w = ql.infer_in(&x, &mut s);
        let baseline = w.data.clone();
        s.give(w);
        let (_, misses_warm) = s.stats();
        for _ in 0..5 {
            let y = ql.infer_in(&x, &mut s);
            assert_eq!(y.data, baseline);
            s.give(y);
        }
        let (_, misses) = s.stats();
        assert_eq!(misses, misses_warm, "steady state must not allocate");
    }
}
