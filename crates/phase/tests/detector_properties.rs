//! Property tests over the detectors and the evaluation machinery.

use mpgraph_phase::{
    build_training_set, evaluate_transitions, ks_statistic, ks_threshold, DecisionTree,
    DetectorStats, DtDetector, Kswin, KswinConfig, SoftDtDetector, SoftKswin, TransitionDetector,
};
use proptest::prelude::*;

/// A PC stream that cycles through `phases` distinct PC clusters, each
/// `phase_len` samples long, mimicking the framework traces' structure.
fn multi_phase_stream(phases: usize, phase_len: usize, reps: usize) -> (Vec<u64>, Vec<u8>) {
    let mut pcs = Vec::new();
    let mut labels = Vec::new();
    for rep in 0..reps {
        for p in 0..phases {
            for i in 0..phase_len {
                pcs.push(0x40_0000 + (p as u64) * 0x1000 + ((i + rep) % 7) as u64 * 4);
                labels.push(p as u8);
            }
        }
    }
    (pcs, labels)
}

/// Shared invariants for the arm→confirm latency counters: one sample per
/// confirmed detection, latencies bounded by `bound` (the detector's
/// confirmation-window size), and internal consistency of sum/max.
fn assert_latency_invariants(stats: &DetectorStats, detections: u64, bound: u64, tag: &str) {
    assert_eq!(
        stats.confirm_latency_samples, detections,
        "{tag}: one latency sample per confirmed detection"
    );
    assert!(
        stats.confirm_latency_max <= bound,
        "{tag}: max latency {} exceeds window bound {bound}",
        stats.confirm_latency_max
    );
    assert!(
        stats.confirm_latency_sum <= stats.confirm_latency_samples * stats.confirm_latency_max,
        "{tag}: sum/max inconsistent: {stats:?}"
    );
    assert!(
        stats.mean_confirm_latency() <= stats.confirm_latency_max as f64,
        "{tag}: mean above max: {stats:?}"
    );
}

proptest! {
    #[test]
    fn evaluation_counts_are_consistent(
        detections in prop::collection::vec(0usize..10_000, 0..40),
        truths in prop::collection::vec(0usize..10_000, 0..20),
        pre in 0usize..64,
        post in 0usize..512,
    ) {
        let mut d = detections.clone();
        d.sort_unstable();
        let mut t = truths.clone();
        t.sort_unstable();
        t.dedup();
        let prf = evaluate_transitions(&d, &t, pre, post);
        prop_assert!((0.0..=1.0).contains(&prf.precision));
        prop_assert!((0.0..=1.0).contains(&prf.recall));
        prop_assert!(prf.f1 <= 1.0);
        // Perfect self-match when detections == truths.
        if !t.is_empty() {
            let perfect = evaluate_transitions(&t, &t, 0, 0);
            prop_assert_eq!(perfect.f1, 1.0);
        }
    }

    #[test]
    fn widening_tolerance_never_lowers_recall(
        truths in prop::collection::vec(100usize..5000, 1..10),
        detections in prop::collection::vec(100usize..5000, 1..20),
    ) {
        let mut t = truths.clone();
        t.sort_unstable();
        t.dedup();
        let narrow = evaluate_transitions(&detections, &t, 4, 16);
        let wide = evaluate_transitions(&detections, &t, 16, 256);
        prop_assert!(wide.recall >= narrow.recall - 1e-12);
    }

    #[test]
    fn ks_threshold_is_monotone_in_alpha(r in 5usize..200) {
        // Smaller alpha (stricter test) → higher threshold.
        prop_assert!(ks_threshold(1e-6, r, r) > ks_threshold(1e-2, r, r));
    }

    #[test]
    fn detectors_never_fire_during_warmup(seed in 0u64..200) {
        // Fewer samples than the sliding window: never a detection.
        let cfg = KswinConfig { seed, ..KswinConfig::default() };
        let mut hard = Kswin::new(cfg);
        let mut soft = SoftKswin::new(cfg);
        for i in 0..cfg.window as u64 - 1 {
            prop_assert!(!hard.update(1000 + i % 7));
            prop_assert!(!soft.update(1000 + i % 7));
        }
    }

    #[test]
    fn ks_statistic_detects_disjoint_supports(
        a in prop::collection::vec(0.0f64..1.0, 5..40),
        b in prop::collection::vec(10.0f64..11.0, 5..40),
    ) {
        prop_assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    /// Arm→confirm latency counters for the KSWIN family: nonnegative (u64
    /// by construction, checked via sum/max consistency), bounded by the
    /// confirmation window, and the pending arm resets across every phase
    /// transition — a leaked arm would produce a latency spanning two
    /// phases, blowing the bound. A mid-stream `reset` must clear the
    /// pending arm too, while the lifetime aggregates survive.
    #[test]
    fn kswin_confirm_latency_bounded_and_reset(
        seed in 0u64..40,
        phase_len in 450usize..700,
        phases in 2usize..4,
    ) {
        let (pcs, _) = multi_phase_stream(phases, phase_len, 2);
        let cfg = KswinConfig { seed, alpha: 0.01, ..KswinConfig::default() };
        let mut hard = Kswin::new(cfg);
        let mut soft = SoftKswin::new(cfg);
        let mut hard_hits = 0u64;
        let mut soft_hits = 0u64;
        let mid = pcs.len() / 2;
        for (i, &pc) in pcs.iter().enumerate() {
            if i == mid {
                // Reset mid-stream: pending arms clear, aggregates survive.
                let before_h = hard.stats();
                let before_s = soft.stats();
                hard.reset();
                soft.reset();
                prop_assert_eq!(hard.stats().confirm_latency_samples,
                                before_h.confirm_latency_samples);
                prop_assert_eq!(soft.stats().confirm_latency_samples,
                                before_s.confirm_latency_samples);
            }
            hard_hits += u64::from(hard.update(pc));
            soft_hits += u64::from(soft.update(pc));
        }
        // Hard KSWIN confirms instantly: every latency is zero.
        assert_latency_invariants(&hard.stats(), hard_hits, 0, "KSWIN");
        prop_assert_eq!(hard.stats().confirm_latency_sum, 0);
        // Soft-KSWIN's counter caps the lag at the recent-window length.
        assert_latency_invariants(&soft.stats(), soft_hits, cfg.recent as u64, "Soft-KSWIN");
        prop_assert_eq!(hard.stats().resets, 1);
        prop_assert_eq!(soft.stats().resets, 1);
    }

    /// Same latency invariants for the DT family: DT confirms instantly
    /// (all-zero latencies); Soft-DT's lag is clamped by the result-queue
    /// length and its pending arm resets across transitions and resets.
    #[test]
    fn dt_confirm_latency_bounded_and_reset(
        queue_len in 2usize..64,
        phase_len in 250usize..400,
    ) {
        let (pcs, labels) = multi_phase_stream(2, phase_len, 3);
        let (xs, ys) = build_training_set(&pcs, &labels, 8, 1);
        let tree = DecisionTree::fit(&xs, &ys, 2, 6);
        let mut hard = DtDetector::new(tree.clone(), 8);
        let mut soft = SoftDtDetector::new(tree, 8, queue_len);
        let mut hard_hits = 0u64;
        let mut soft_hits = 0u64;
        let mid = pcs.len() / 2;
        for (i, &pc) in pcs.iter().enumerate() {
            if i == mid {
                let before = soft.stats();
                hard.reset();
                soft.reset();
                prop_assert_eq!(soft.stats().confirm_latency_samples,
                                before.confirm_latency_samples);
            }
            hard_hits += u64::from(hard.update(pc));
            soft_hits += u64::from(soft.update(pc));
        }
        assert_latency_invariants(&hard.stats(), hard_hits, 0, "DT");
        prop_assert_eq!(hard.stats().confirm_latency_sum, 0);
        assert_latency_invariants(&soft.stats(), soft_hits, queue_len as u64, "Soft-DT");
        prop_assert!(soft.stats().soft_arms >= soft.stats().detections);
        prop_assert_eq!(hard.stats().resets, 1);
        prop_assert_eq!(soft.stats().resets, 1);
    }
}
