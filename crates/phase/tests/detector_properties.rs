//! Property tests over the detectors and the evaluation machinery.

use mpgraph_phase::{
    evaluate_transitions, ks_statistic, ks_threshold, Kswin, KswinConfig, SoftKswin,
    TransitionDetector,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn evaluation_counts_are_consistent(
        detections in prop::collection::vec(0usize..10_000, 0..40),
        truths in prop::collection::vec(0usize..10_000, 0..20),
        pre in 0usize..64,
        post in 0usize..512,
    ) {
        let mut d = detections.clone();
        d.sort_unstable();
        let mut t = truths.clone();
        t.sort_unstable();
        t.dedup();
        let prf = evaluate_transitions(&d, &t, pre, post);
        prop_assert!((0.0..=1.0).contains(&prf.precision));
        prop_assert!((0.0..=1.0).contains(&prf.recall));
        prop_assert!(prf.f1 <= 1.0);
        // Perfect self-match when detections == truths.
        if !t.is_empty() {
            let perfect = evaluate_transitions(&t, &t, 0, 0);
            prop_assert_eq!(perfect.f1, 1.0);
        }
    }

    #[test]
    fn widening_tolerance_never_lowers_recall(
        truths in prop::collection::vec(100usize..5000, 1..10),
        detections in prop::collection::vec(100usize..5000, 1..20),
    ) {
        let mut t = truths.clone();
        t.sort_unstable();
        t.dedup();
        let narrow = evaluate_transitions(&detections, &t, 4, 16);
        let wide = evaluate_transitions(&detections, &t, 16, 256);
        prop_assert!(wide.recall >= narrow.recall - 1e-12);
    }

    #[test]
    fn ks_threshold_is_monotone_in_alpha(r in 5usize..200) {
        // Smaller alpha (stricter test) → higher threshold.
        prop_assert!(ks_threshold(1e-6, r, r) > ks_threshold(1e-2, r, r));
    }

    #[test]
    fn detectors_never_fire_during_warmup(seed in 0u64..200) {
        // Fewer samples than the sliding window: never a detection.
        let cfg = KswinConfig { seed, ..KswinConfig::default() };
        let mut hard = Kswin::new(cfg);
        let mut soft = SoftKswin::new(cfg);
        for i in 0..cfg.window as u64 - 1 {
            prop_assert!(!hard.update(1000 + i % 7));
            prop_assert!(!soft.update(1000 + i % 7));
        }
    }

    #[test]
    fn ks_statistic_detects_disjoint_supports(
        a in prop::collection::vec(0.0f64..1.0, 5..40),
        b in prop::collection::vec(10.0f64..11.0, 5..40),
    ) {
        prop_assert_eq!(ks_statistic(&a, &b), 1.0);
    }
}
