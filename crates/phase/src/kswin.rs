//! KSWIN (Raab, Heusinger, Schleif 2020): concept-drift detection by a
//! Kolmogorov–Smirnov test between a recent window and a uniformly sampled
//! history window of a sliding stream window — the unsupervised baseline of
//! Table 4, whose "hard" thresholding produces the false positives that
//! Soft-KSWIN (Algorithm 2) eliminates.
//!
//! The sliding window Ψ is a fixed-capacity ring: pushing when full
//! overwrites the oldest sample in O(1) instead of the O(window) front
//! shift of a `Vec::remove(0)`. `ks_statistic` wants contiguous slices, so
//! the recent window and the sampled history are staged into two reusable
//! scratch buffers — the steady-state update path never allocates.

use crate::detector::{DetectorStats, TransitionDetector};
use crate::ks::{ks_statistic, ks_threshold};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration shared by KSWIN and Soft-KSWIN.
#[derive(Debug, Clone, Copy)]
pub struct KswinConfig {
    /// Sliding window Ψ length.
    pub window: usize,
    /// Recent window R length (history H is sampled with the same size).
    pub recent: usize,
    /// Significance level α of the K-S test.
    pub alpha: f64,
    /// RNG seed for history sampling.
    pub seed: u64,
}

impl Default for KswinConfig {
    fn default() -> Self {
        KswinConfig {
            window: 300,
            recent: 30,
            alpha: 1e-4,
            seed: 12345,
        }
    }
}

/// Fixed-capacity ring over `f64` samples, ordered oldest → newest by
/// logical index. Pushing at capacity overwrites the oldest element.
#[derive(Debug, Clone)]
struct PsiRing {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl PsiRing {
    fn new(cap: usize) -> Self {
        PsiRing {
            buf: vec![0.0; cap],
            head: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, v: f64) {
        let cap = self.buf.len();
        if self.len < cap {
            self.buf[(self.head + self.len) % cap] = v;
            self.len += 1;
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % cap;
        }
    }

    /// Logical index 0 is the oldest sample.
    fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        self.buf[(self.head + i) % self.buf.len()]
    }

    /// Copies logical `[start, end)` into `out` (cleared first).
    fn copy_range_into(&self, start: usize, end: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((start..end).map(|i| self.get(i)));
    }

    /// Replaces the contents with `vals` (oldest first), keeping capacity.
    fn restart_from(&mut self, vals: &[f64]) {
        self.head = 0;
        self.len = 0;
        for &v in vals {
            self.push(v);
        }
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// Samples `r` points uniformly from logical `psi[0 .. limit]` into `out`.
/// Draw order matches the historical `Vec`-indexed implementation, so the
/// RNG stream (and therefore every detection) is unchanged.
fn sample_history_into(
    psi: &PsiRing,
    limit: usize,
    r: usize,
    rng: &mut ChaCha8Rng,
    out: &mut Vec<f64>,
) {
    out.clear();
    for _ in 0..r {
        out.push(psi.get(rng.gen_range(0..limit)));
    }
}

/// Plain KSWIN: reports a transition the instant `D > threshold`.
#[derive(Debug, Clone)]
pub struct Kswin {
    cfg: KswinConfig,
    psi: PsiRing,
    threshold: f64,
    rng: ChaCha8Rng,
    recent_scratch: Vec<f64>,
    history_scratch: Vec<f64>,
    stats: DetectorStats,
}

impl Kswin {
    pub fn new(cfg: KswinConfig) -> Self {
        assert!(cfg.recent * 2 <= cfg.window, "window too small for recent");
        Kswin {
            threshold: ks_threshold(cfg.alpha, cfg.recent, cfg.recent),
            psi: PsiRing::new(cfg.window),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            recent_scratch: Vec::with_capacity(cfg.recent),
            history_scratch: Vec::with_capacity(cfg.recent),
            stats: DetectorStats::default(),
            cfg,
        }
    }

    /// True while the window is still filling (no test runs yet).
    pub fn is_warming_up(&self) -> bool {
        self.psi.len() < self.cfg.window
    }
}

impl TransitionDetector for Kswin {
    fn name(&self) -> &'static str {
        "KSWIN"
    }

    fn update(&mut self, pc: u64) -> bool {
        self.stats.updates += 1;
        let value = pc as f64;
        if self.psi.len() < self.cfg.window {
            self.psi.push(value);
            return false;
        }
        self.psi.push(value); // overwrites the oldest sample
        let r = self.cfg.recent;
        let w = self.cfg.window;
        self.psi.copy_range_into(w - r, w, &mut self.recent_scratch);
        sample_history_into(
            &self.psi,
            w - r,
            r,
            &mut self.rng,
            &mut self.history_scratch,
        );
        let d = ks_statistic(&self.history_scratch, &self.recent_scratch);
        if d > self.threshold {
            // Reference behaviour: keep only the recent window and restart.
            self.psi.restart_from(&self.recent_scratch);
            self.stats.detections += 1;
            // Hard detection confirms the instant it arms.
            self.stats.record_confirm_latency(0);
            true
        } else {
            false
        }
    }

    fn reset(&mut self) {
        self.psi.clear();
        self.stats.resets += 1;
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

/// Soft-KSWIN (Algorithm 2): after a raw detection, keep sampling history
/// only from the unpolluted prefix (`Ψ[0 .. w-r-c]`), count how many of the
/// next `r` samples also detect, and declare a transition only when the
/// detection ratio exceeds `th_r` — suppressing impulse pattern shifts.
#[derive(Debug, Clone)]
pub struct SoftKswin {
    cfg: KswinConfig,
    /// Soft threshold on the detection ratio (paper default 0.5).
    pub th_r: f64,
    psi: PsiRing,
    threshold: f64,
    rng: ChaCha8Rng,
    counter: usize,
    window_detections: usize,
    /// `stats.updates` value at the moment the soft counter armed; the
    /// arm→confirm latency is measured against it when a transition is
    /// confirmed. Cleared on discard, confirm, and reset.
    armed_at_update: Option<u64>,
    recent_scratch: Vec<f64>,
    history_scratch: Vec<f64>,
    stats: DetectorStats,
}

impl SoftKswin {
    pub fn new(cfg: KswinConfig) -> Self {
        assert!(cfg.recent * 2 <= cfg.window, "window too small for recent");
        SoftKswin {
            threshold: ks_threshold(cfg.alpha, cfg.recent, cfg.recent),
            th_r: 0.5,
            psi: PsiRing::new(cfg.window),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x50F7),
            cfg,
            counter: 0,
            window_detections: 0,
            armed_at_update: None,
            recent_scratch: Vec::with_capacity(cfg.recent),
            history_scratch: Vec::with_capacity(cfg.recent),
            stats: DetectorStats::default(),
        }
    }

    /// True while the window is still filling (no test runs yet).
    pub fn is_warming_up(&self) -> bool {
        self.psi.len() < self.cfg.window
    }
}

impl TransitionDetector for SoftKswin {
    fn name(&self) -> &'static str {
        "Soft-KSWIN"
    }

    fn update(&mut self, pc: u64) -> bool {
        self.stats.updates += 1;
        let value = pc as f64;
        if self.psi.len() < self.cfg.window {
            self.psi.push(value);
            return false;
        }
        self.psi.push(value);
        let r = self.cfg.recent;
        let w = self.cfg.window;
        // Soft history: exclude the `counter` newest pre-recent samples,
        // which may already belong to the new pattern (Eq. 6).
        let limit = w.saturating_sub(r + self.counter).max(r);
        self.psi.copy_range_into(w - r, w, &mut self.recent_scratch);
        sample_history_into(
            &self.psi,
            limit,
            r,
            &mut self.rng,
            &mut self.history_scratch,
        );
        let d = ks_statistic(&self.history_scratch, &self.recent_scratch);
        let mut transition = false;
        if d > self.threshold {
            self.window_detections += 1;
            if self.counter == 0 {
                // First raw detection arms the soft counter.
                self.counter = 1;
                self.stats.soft_arms += 1;
                self.armed_at_update = Some(self.stats.updates);
            }
        }
        if self.counter > 0 {
            self.counter += 1;
            if self.counter >= r {
                if self.window_detections as f64 / self.counter as f64 > self.th_r {
                    transition = true;
                    self.stats.detections += 1;
                    if let Some(armed_at) = self.armed_at_update {
                        // Confirmation lag in stream samples; the counter
                        // caps it at the recent-window length `r`.
                        self.stats
                            .record_confirm_latency(self.stats.updates.saturating_sub(armed_at));
                    }
                    // Reset the model for future detections.
                    self.psi.restart_from(&self.recent_scratch);
                }
                self.counter = 0;
                self.window_detections = 0;
                self.armed_at_update = None;
            }
        }
        transition
    }

    fn reset(&mut self) {
        self.psi.clear();
        self.counter = 0;
        self.window_detections = 0;
        self.armed_at_update = None;
        self.stats.resets += 1;
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stream with a sharp distribution change at `change_at`.
    fn step_stream(n: usize, change_at: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i < change_at {
                    1000 + (i % 13) as u64
                } else {
                    9000 + (i % 17) as u64
                }
            })
            .collect()
    }

    /// Stream with single-sample impulses every `period` samples.
    fn impulse_stream(n: usize, period: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                if i % period == 0 {
                    50_000
                } else {
                    1000 + (i % 13) as u64
                }
            })
            .collect()
    }

    fn run(det: &mut dyn TransitionDetector, stream: &[u64]) -> Vec<usize> {
        stream
            .iter()
            .enumerate()
            .filter_map(|(i, &pc)| det.update(pc).then_some(i))
            .collect()
    }

    #[test]
    fn kswin_detects_a_real_transition() {
        let stream = step_stream(1500, 800);
        let mut k = Kswin::new(KswinConfig::default());
        let hits = run(&mut k, &stream);
        assert!(!hits.is_empty(), "no detection");
        assert!(hits[0] >= 800 && hits[0] < 900, "first hit at {}", hits[0]);
        let s = k.stats();
        assert_eq!(s.updates, 1500);
        assert_eq!(s.detections, hits.len() as u64);
        assert_eq!(s.soft_arms, 0);
    }

    #[test]
    fn soft_kswin_detects_a_real_transition() {
        let stream = step_stream(1500, 800);
        let mut k = SoftKswin::new(KswinConfig::default());
        let hits = run(&mut k, &stream);
        assert!(!hits.is_empty(), "no detection");
        // Soft detection incurs a lag of up to ~r samples (Figure 9).
        assert!(hits[0] >= 800 && hits[0] < 950, "first hit at {}", hits[0]);
        let s = k.stats();
        assert_eq!(s.updates, 1500);
        assert_eq!(s.detections, hits.len() as u64);
        assert!(s.soft_arms >= s.detections, "arms {s:?}");
    }

    #[test]
    fn soft_kswin_suppresses_impulses_better_than_kswin() {
        // No true transition: every detection is a false positive.
        let stream = impulse_stream(4000, 40);
        let mut hard = Kswin::new(KswinConfig {
            alpha: 0.01,
            ..KswinConfig::default()
        });
        let mut soft = SoftKswin::new(KswinConfig {
            alpha: 0.01,
            ..KswinConfig::default()
        });
        let fp_hard = run(&mut hard, &stream).len();
        let fp_soft = run(&mut soft, &stream).len();
        assert!(
            fp_soft <= fp_hard,
            "soft {fp_soft} > hard {fp_hard} false positives"
        );
    }

    #[test]
    fn stable_stream_produces_no_detection() {
        let stream: Vec<u64> = (0..3000).map(|i| 1000 + (i % 13) as u64).collect();
        let mut k = Kswin::new(KswinConfig::default());
        assert!(run(&mut k, &stream).is_empty());
        let mut s = SoftKswin::new(KswinConfig::default());
        assert!(run(&mut s, &stream).is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let mut k = SoftKswin::new(KswinConfig::default());
        for i in 0..500 {
            k.update(1000 + i % 7);
        }
        k.reset();
        assert!(k.psi.is_empty());
        assert!(k.is_warming_up());
        let s = k.stats();
        assert_eq!(s.updates, 500);
        assert_eq!(s.resets, 1);
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn invalid_config_panics() {
        let _ = Kswin::new(KswinConfig {
            window: 40,
            recent: 30,
            ..KswinConfig::default()
        });
    }

    // ---- equivalence guards: ring + scratch vs. the original Vec shifts ----

    /// The pre-ring KSWIN, kept verbatim as the behavioural reference.
    struct VecKswinRef {
        cfg: KswinConfig,
        psi: Vec<f64>,
        threshold: f64,
        rng: ChaCha8Rng,
    }

    impl VecKswinRef {
        fn new(cfg: KswinConfig) -> Self {
            VecKswinRef {
                threshold: ks_threshold(cfg.alpha, cfg.recent, cfg.recent),
                psi: Vec::with_capacity(cfg.window),
                rng: ChaCha8Rng::seed_from_u64(cfg.seed),
                cfg,
            }
        }

        fn sample_history(psi: &[f64], limit: usize, r: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
            (0..r).map(|_| psi[rng.gen_range(0..limit)]).collect()
        }

        fn update(&mut self, pc: u64) -> bool {
            let value = pc as f64;
            if self.psi.len() < self.cfg.window {
                self.psi.push(value);
                return false;
            }
            self.psi.remove(0);
            self.psi.push(value);
            let r = self.cfg.recent;
            let w = self.cfg.window;
            let recent = &self.psi[w - r..];
            let history = Self::sample_history(&self.psi, w - r, r, &mut self.rng);
            let d = ks_statistic(&history, recent);
            if d > self.threshold {
                self.psi = recent.to_vec();
                true
            } else {
                false
            }
        }
    }

    /// The pre-ring Soft-KSWIN, kept verbatim as the behavioural reference.
    struct VecSoftKswinRef {
        cfg: KswinConfig,
        th_r: f64,
        psi: Vec<f64>,
        threshold: f64,
        rng: ChaCha8Rng,
        counter: usize,
        detections: usize,
    }

    impl VecSoftKswinRef {
        fn new(cfg: KswinConfig) -> Self {
            VecSoftKswinRef {
                threshold: ks_threshold(cfg.alpha, cfg.recent, cfg.recent),
                th_r: 0.5,
                psi: Vec::with_capacity(cfg.window),
                rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x50F7),
                cfg,
                counter: 0,
                detections: 0,
            }
        }

        fn update(&mut self, pc: u64) -> bool {
            let value = pc as f64;
            if self.psi.len() < self.cfg.window {
                self.psi.push(value);
                return false;
            }
            self.psi.remove(0);
            self.psi.push(value);
            let r = self.cfg.recent;
            let w = self.cfg.window;
            let limit = w.saturating_sub(r + self.counter).max(r);
            let recent = &self.psi[w - r..];
            let history = VecKswinRef::sample_history(&self.psi, limit, r, &mut self.rng);
            let d = ks_statistic(&history, recent);
            let mut transition = false;
            if d > self.threshold {
                self.detections += 1;
                if self.counter == 0 {
                    self.counter = 1;
                }
            }
            if self.counter > 0 {
                self.counter += 1;
                if self.counter >= r {
                    if self.detections as f64 / self.counter as f64 > self.th_r {
                        transition = true;
                        self.psi = recent.to_vec();
                    }
                    self.counter = 0;
                    self.detections = 0;
                }
            }
            transition
        }
    }

    #[test]
    fn ring_kswin_matches_vec_reference() {
        for (stream, tag) in [
            (step_stream(2500, 900), "step"),
            (impulse_stream(2500, 40), "impulse"),
        ] {
            let cfg = KswinConfig {
                alpha: 0.01,
                ..KswinConfig::default()
            };
            let mut new = Kswin::new(cfg);
            let mut old = VecKswinRef::new(cfg);
            for (i, &pc) in stream.iter().enumerate() {
                assert_eq!(
                    new.update(pc),
                    old.update(pc),
                    "{tag}: diverged at sample {i}"
                );
            }
        }
    }

    #[test]
    fn ring_soft_kswin_matches_vec_reference() {
        for (stream, tag) in [
            (step_stream(2500, 900), "step"),
            (impulse_stream(2500, 40), "impulse"),
        ] {
            let cfg = KswinConfig {
                alpha: 0.01,
                ..KswinConfig::default()
            };
            let mut new = SoftKswin::new(cfg);
            let mut old = VecSoftKswinRef::new(cfg);
            for (i, &pc) in stream.iter().enumerate() {
                assert_eq!(
                    new.update(pc),
                    old.update(pc),
                    "{tag}: diverged at sample {i}"
                );
            }
        }
    }
}
