//! CART decision-tree classifier (Gini impurity) plus the two supervised
//! phase-transition detectors of §4.2.2: plain DT (transition whenever two
//! consecutive phase predictions differ) and Soft-DT (a result queue whose
//! head-half and tail-half modes must disagree).

use crate::detector::{DetectorStats, TransitionDetector};
use std::collections::VecDeque;

/// A trained CART classifier over dense `f32` feature vectors.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    pub num_classes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: u8,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

impl DecisionTree {
    /// Fits a tree of at most `max_depth` levels. `labels` are class ids in
    /// `0..num_classes`.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[u8],
        num_classes: usize,
        max_depth: usize,
    ) -> DecisionTree {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            num_classes,
        };
        let idx: Vec<usize> = (0..features.len()).collect();
        tree.build(features, labels, &idx, max_depth);
        tree
    }

    fn majority(&self, labels: &[u8], idx: &[usize]) -> u8 {
        let mut counts = vec![0usize; self.num_classes];
        for &i in idx {
            counts[labels[i] as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k as u8)
            .unwrap_or(0)
    }

    fn build(
        &mut self,
        features: &[Vec<f32>],
        labels: &[u8],
        idx: &[usize],
        depth: usize,
    ) -> usize {
        let mut counts = vec![0usize; self.num_classes];
        for &i in idx {
            counts[labels[i] as usize] += 1;
        }
        let node_gini = gini(&counts);
        if depth == 0 || node_gini == 0.0 || idx.len() < 4 {
            let class = self.majority(labels, idx);
            self.nodes.push(Node::Leaf { class });
            return self.nodes.len() - 1;
        }
        // Best split search: for each feature, candidate thresholds at the
        // midpoints between consecutive distinct sorted values (subsampled
        // to at most 32 candidates to bound fit time).
        let num_features = features[idx[0]].len();
        let mut best: Option<(usize, f32, f64)> = None;
        // `f` indexes the inner dimension across many outer rows, so an
        // iterator form would obscure the access pattern.
        #[allow(clippy::needless_range_loop)]
        for f in 0..num_features {
            let mut vals: Vec<f32> = idx.iter().map(|&i| features[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() / 32).max(1);
            for w in vals.windows(2).step_by(step) {
                let thr = 0.5 * (w[0] + w[1]);
                let mut lc = vec![0usize; self.num_classes];
                let mut rc = vec![0usize; self.num_classes];
                for &i in idx {
                    if features[i][f] <= thr {
                        lc[labels[i] as usize] += 1;
                    } else {
                        rc[labels[i] as usize] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln == 0 || rn == 0 {
                    continue;
                }
                let weighted = (ln as f64 * gini(&lc) + rn as f64 * gini(&rc)) / idx.len() as f64;
                if best.is_none_or(|(_, _, g)| weighted < g) {
                    best = Some((f, thr, weighted));
                }
            }
        }
        let Some((f, thr, g)) = best else {
            let class = self.majority(labels, idx);
            self.nodes.push(Node::Leaf { class });
            return self.nodes.len() - 1;
        };
        if g >= node_gini {
            let class = self.majority(labels, idx);
            self.nodes.push(Node::Leaf { class });
            return self.nodes.len() - 1;
        }
        let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| features[i][f] <= thr);
        // Reserve this node's slot, then build children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0 }); // placeholder
        let left = self.build(features, labels, &li, depth - 1);
        let right = self.build(features, labels, &ri, depth - 1);
        self.nodes[slot] = Node::Split {
            feature: f,
            threshold: thr,
            left,
            right,
        };
        slot
    }

    /// Predicts the class of one feature vector.
    pub fn predict(&self, x: &[f32]) -> u8 {
        // Root is the node pushed first for the full index set; with the
        // slot-reservation scheme that is index 0.
        let mut n = 0usize;
        loop {
            match &self.nodes[n] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    n = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (size introspection for tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Converts a window of raw PCs into the feature vector the detectors use:
/// the low bits of each PC, as `f32` (exact below 2^24 — synthetic PCs fit).
pub fn pc_features(window: &[u64]) -> Vec<f32> {
    window.iter().map(|&pc| (pc & 0xFF_FFFF) as f32).collect()
}

/// Builds a training set for the phase classifier from a labelled PC trace:
/// one sample per position, features from the trailing `window` PCs.
pub fn build_training_set(
    pcs: &[u64],
    phases: &[u8],
    window: usize,
    stride: usize,
) -> (Vec<Vec<f32>>, Vec<u8>) {
    assert_eq!(pcs.len(), phases.len());
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut i = window;
    while i < pcs.len() {
        xs.push(pc_features(&pcs[i - window..i]));
        ys.push(phases[i]);
        i += stride.max(1);
    }
    (xs, ys)
}

/// Plain DT detector: predicts the phase each sample; any change between
/// consecutive predictions is reported immediately ("hard" detection).
pub struct DtDetector {
    tree: DecisionTree,
    window: usize,
    buf: VecDeque<u64>,
    last_pred: Option<u8>,
    stats: DetectorStats,
}

impl DtDetector {
    pub fn new(tree: DecisionTree, window: usize) -> Self {
        DtDetector {
            tree,
            window,
            buf: VecDeque::new(),
            last_pred: None,
            stats: DetectorStats::default(),
        }
    }
}

impl TransitionDetector for DtDetector {
    fn name(&self) -> &'static str {
        "DT"
    }

    fn update(&mut self, pc: u64) -> bool {
        self.stats.updates += 1;
        self.buf.push_back(pc);
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
        if self.buf.len() < self.window {
            return false;
        }
        let feats = pc_features(&self.buf.iter().copied().collect::<Vec<_>>());
        let pred = self.tree.predict(&feats);
        let transition = self.last_pred.is_some_and(|p| p != pred);
        self.last_pred = Some(pred);
        if transition {
            self.stats.detections += 1;
            // Hard detection confirms the instant it arms.
            self.stats.record_confirm_latency(0);
        }
        transition
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.last_pred = None;
        self.stats.resets += 1;
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

/// Soft-DT detector: stores recent phase predictions in a result queue `Q`
/// and declares a transition only when the mode of the queue's head half
/// differs from the mode of its tail half (edge-triggered, so a sustained
/// disagreement reports once).
pub struct SoftDtDetector {
    tree: DecisionTree,
    window: usize,
    queue_len: usize,
    buf: VecDeque<u64>,
    queue: VecDeque<u8>,
    was_differing: bool,
    /// `stats.updates` value when the first queued prediction disagreeing
    /// with the head-half mode arrived; measured against at confirmation.
    /// Cleared once the disagreement evaporates, confirms, or on reset.
    armed_at_update: Option<u64>,
    stats: DetectorStats,
}

impl SoftDtDetector {
    pub fn new(tree: DecisionTree, window: usize, queue_len: usize) -> Self {
        assert!(queue_len >= 2);
        SoftDtDetector {
            tree,
            window,
            queue_len,
            buf: VecDeque::new(),
            queue: VecDeque::new(),
            was_differing: false,
            armed_at_update: None,
            stats: DetectorStats::default(),
        }
    }

    fn mode(vals: impl Iterator<Item = u8>, num_classes: usize) -> u8 {
        let mut counts = vec![0usize; num_classes];
        for v in vals {
            counts[v as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k as u8)
            .unwrap_or(0)
    }
}

impl TransitionDetector for SoftDtDetector {
    fn name(&self) -> &'static str {
        "Soft-DT"
    }

    fn update(&mut self, pc: u64) -> bool {
        self.stats.updates += 1;
        self.buf.push_back(pc);
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
        if self.buf.len() < self.window {
            return false;
        }
        let feats = pc_features(&self.buf.iter().copied().collect::<Vec<_>>());
        let pred = self.tree.predict(&feats);
        self.queue.push_back(pred);
        if self.queue.len() > self.queue_len {
            self.queue.pop_front();
        }
        if self.queue.len() < self.queue_len {
            return false;
        }
        let half = self.queue_len / 2;
        let nc = self.tree.num_classes;
        let head = Self::mode(self.queue.iter().take(half).copied(), nc);
        let tail = Self::mode(self.queue.iter().skip(half).copied(), nc);
        // Arm when the newest queued prediction first disagrees with the
        // established (head-half) mode; confirm when the tail-half *mode*
        // flips. An impulse never flips the mode, so its arm evaporates.
        if self.armed_at_update.is_none() && !self.was_differing && pred != head {
            self.armed_at_update = Some(self.stats.updates);
            self.stats.soft_arms += 1;
        }
        let differing = head != tail;
        let transition = differing && !self.was_differing;
        if transition {
            self.stats.detections += 1;
            // The queue only remembers `queue_len` predictions, so any
            // older arm evidence has left the window — clamp to that.
            let lat = self
                .armed_at_update
                .map_or(0, |at| self.stats.updates.saturating_sub(at))
                .min(self.queue_len as u64);
            self.stats.record_confirm_latency(lat);
            self.armed_at_update = None;
        } else if !differing && self.queue.iter().skip(half).all(|&v| v == head) {
            // Disagreement fully evaporated without confirming.
            self.armed_at_update = None;
        }
        self.was_differing = differing;
        transition
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.queue.clear();
        self.was_differing = false;
        self.armed_at_update = None;
        self.stats.resets += 1;
    }

    fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_pure_and_uniform() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[0, 0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tree_learns_a_threshold() {
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let ys: Vec<u8> = (0..100).map(|i| if i < 50 { 0 } else { 1 }).collect();
        let t = DecisionTree::fit(&xs, &ys, 2, 4);
        assert_eq!(t.predict(&[10.0]), 0);
        assert_eq!(t.predict(&[80.0]), 1);
    }

    #[test]
    fn tree_uses_both_features_when_needed() {
        // Three-class problem: class depends on feature 0 first, then on
        // feature 1 within the right half — requires depth 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let a = i as f32 / 30.0;
            xs.push(vec![a, 0.0]);
            ys.push(if a < 0.5 { 0u8 } else { 1 });
            xs.push(vec![a + 1.0, a]);
            ys.push(if a < 0.5 { 1 } else { 2 });
        }
        let t = DecisionTree::fit(&xs, &ys, 3, 4);
        assert_eq!(t.predict(&[0.1, 0.0]), 0);
        assert_eq!(t.predict(&[1.1, 0.1]), 1);
        assert_eq!(t.predict(&[1.9, 0.9]), 2);
        assert!(t.num_nodes() >= 5, "tree too shallow: {}", t.num_nodes());
    }

    #[test]
    fn depth_zero_gives_majority_leaf() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let ys = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        let t = DecisionTree::fit(&xs, &ys, 2, 0);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[9.0]), 0);
    }

    fn phase_stream(len_per_phase: usize, phases: usize) -> (Vec<u64>, Vec<u8>) {
        // Phase p PCs live around base p*0x1000, mimicking PcMap.
        let mut pcs = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..3 {
            for p in 0..phases {
                for i in 0..len_per_phase {
                    pcs.push(0x40_0000 + (p as u64) * 0x1000 + ((i + rep) % 7) as u64 * 4);
                    labels.push(p as u8);
                }
            }
        }
        (pcs, labels)
    }

    #[test]
    fn dt_detector_finds_phase_changes() {
        let (pcs, labels) = phase_stream(300, 2);
        let (xs, ys) = build_training_set(&pcs, &labels, 8, 1);
        let tree = DecisionTree::fit(&xs, &ys, 2, 6);
        let mut det = DtDetector::new(tree, 8);
        let hits: Vec<usize> = pcs
            .iter()
            .enumerate()
            .filter_map(|(i, &pc)| det.update(pc).then_some(i))
            .collect();
        // 3 reps × 2 phases → 5 internal transitions; detector should fire
        // near each (position ≈ 300, 600, ...).
        assert!(hits.len() >= 5, "only {} hits", hits.len());
        for target in [300usize, 600, 900, 1200, 1500] {
            assert!(
                hits.iter().any(|&h| h.abs_diff(target) <= 16),
                "no hit near {target}: {hits:?}"
            );
        }
    }

    #[test]
    fn soft_dt_fires_once_per_transition() {
        let (pcs, labels) = phase_stream(300, 2);
        let (xs, ys) = build_training_set(&pcs, &labels, 8, 1);
        let tree = DecisionTree::fit(&xs, &ys, 2, 6);
        let mut det = SoftDtDetector::new(tree, 8, 32);
        let hits: Vec<usize> = pcs
            .iter()
            .enumerate()
            .filter_map(|(i, &pc)| det.update(pc).then_some(i))
            .collect();
        assert_eq!(hits.len(), 5, "hits {hits:?}");
    }

    #[test]
    fn soft_dt_suppresses_impulse_misprediction() {
        // A stream with one-sample PC impulses from the other phase's
        // region: DT (hard) fires on them, Soft-DT must not.
        let (pcs, labels) = phase_stream(300, 2);
        let (xs, ys) = build_training_set(&pcs, &labels, 1, 1);
        let tree = DecisionTree::fit(&xs, &ys, 2, 4);
        let mut noisy = Vec::new();
        for i in 0..600usize {
            if i % 50 == 25 {
                noisy.push(0x40_1000u64); // impulse from phase 1
            } else {
                noisy.push(0x40_0000 + (i % 7) as u64 * 4); // phase 0
            }
        }
        let mut hard = DtDetector::new(tree.clone(), 1);
        let mut soft = SoftDtDetector::new(tree, 1, 32);
        let fp_hard = noisy.iter().filter(|&&pc| hard.update(pc)).count();
        let fp_soft = noisy.iter().filter(|&&pc| soft.update(pc)).count();
        assert!(fp_hard > 0, "hard DT did not fire at all");
        assert_eq!(fp_soft, 0, "soft DT fired {fp_soft} times");
    }

    #[test]
    fn reset_clears_detectors() {
        let t = DecisionTree::fit(&[vec![0.0], vec![1.0]], &[0, 1], 2, 2);
        let mut d = DtDetector::new(t.clone(), 4);
        for _ in 0..10 {
            d.update(0x40_0000);
        }
        d.reset();
        assert!(d.buf.is_empty());
        let mut s = SoftDtDetector::new(t, 4, 8);
        for _ in 0..10 {
            s.update(0x40_0000);
        }
        s.reset();
        assert!(s.queue.is_empty());
    }
}
