//! Two-sample Kolmogorov–Smirnov statistic (Eq. 2): the supremum distance
//! between the empirical CDFs of two samples.

/// Computes `D = sup_x |F_A(x) - F_B(x)|` in O(n log n).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// The rejection threshold of Eq. 5 for history size `h`, recent size `r`,
/// and significance level `alpha`.
pub fn ks_threshold(alpha: f64, h: usize, r: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0);
    (-((alpha / 2.0).ln()) * (1.0 + r as f64 / h as f64) / (2.0 * r as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 11.0, 12.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
        assert_eq!(ks_statistic(&b, &a), 1.0);
    }

    #[test]
    fn statistic_is_in_unit_interval_and_symmetric() {
        let a = vec![0.1, 0.5, 0.9, 0.2, 0.7];
        let b = vec![0.3, 0.4, 0.6, 0.65];
        let d1 = ks_statistic(&a, &b);
        let d2 = ks_statistic(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn hand_computed_example() {
        // A = {1,2}, B = {1,3}. F_A jumps to .5 at 1, 1.0 at 2.
        // F_B jumps to .5 at 1, 1.0 at 3. Max gap at x=2: |1.0 - 0.5| = 0.5.
        let d = ks_statistic(&[1.0, 2.0], &[1.0, 3.0]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shifted_distributions_detected() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 + 0.5).collect();
        assert!(ks_statistic(&a, &b) >= 0.5);
    }

    #[test]
    fn threshold_matches_eq5_special_case() {
        // h = r: threshold = sqrt(-ln(alpha/2)/r).
        let alpha = 0.01;
        let r = 30;
        let t = ks_threshold(alpha, r, r);
        let expect = (-(alpha / 2.0f64).ln() / r as f64).sqrt();
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn threshold_decreases_with_more_samples() {
        assert!(ks_threshold(0.01, 100, 100) < ks_threshold(0.01, 10, 10));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = ks_statistic(&[], &[1.0]);
    }
}
