//! Transition-detection evaluation (Table 4): matches detected transition
//! indices against ground-truth transition indices with a tolerance window
//! and computes precision / recall / F1.
//!
//! A detection matches a true transition if it falls in
//! `[t - pre_tolerance, t + post_tolerance]`; each truth matches at most
//! one detection and vice versa (greedy in stream order). Soft detectors
//! legitimately lag by up to their confirmation window (Figure 9), so the
//! post-tolerance is sized accordingly by the caller.

/// Match-based precision/recall/F1 between detections and ground truth.
pub fn evaluate_transitions(
    detections: &[usize],
    truths: &[usize],
    pre_tolerance: usize,
    post_tolerance: usize,
) -> crate::Prf {
    let mut truth_matched = vec![false; truths.len()];
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &d in detections {
        let mut matched = false;
        for (ti, &t) in truths.iter().enumerate() {
            if truth_matched[ti] {
                continue;
            }
            let lo = t.saturating_sub(pre_tolerance);
            let hi = t + post_tolerance;
            if d >= lo && d <= hi {
                truth_matched[ti] = true;
                matched = true;
                break;
            }
        }
        if matched {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let fn_ = truth_matched.iter().filter(|&&m| !m).count();
    crate::Prf::from_counts(tp, fp, fn_)
}

/// Detection lag statistics: for each matched truth, how many samples after
/// the true transition the detection fired (Figure 9's "small window of
/// lag"). Returns (mean lag, max lag) over matched pairs.
pub fn detection_lag(
    detections: &[usize],
    truths: &[usize],
    post_tolerance: usize,
) -> (f64, usize) {
    let mut lags = Vec::new();
    let mut used = vec![false; detections.len()];
    for &t in truths {
        for (di, &d) in detections.iter().enumerate() {
            if used[di] {
                continue;
            }
            if d >= t && d <= t + post_tolerance {
                lags.push(d - t);
                used[di] = true;
                break;
            }
        }
    }
    if lags.is_empty() {
        return (0.0, 0);
    }
    let mean = lags.iter().sum::<usize>() as f64 / lags.len() as f64;
    (mean, lags.iter().copied().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let p = evaluate_transitions(&[100, 200, 300], &[100, 200, 300], 0, 0);
        assert_eq!(p.f1, 1.0);
    }

    #[test]
    fn lagging_detection_within_tolerance_counts() {
        let p = evaluate_transitions(&[130, 225], &[100, 200], 0, 50);
        assert_eq!(p.recall, 1.0);
        assert_eq!(p.precision, 1.0);
    }

    #[test]
    fn false_positives_hurt_precision_only() {
        let p = evaluate_transitions(&[100, 150, 160, 170], &[100], 5, 5);
        assert_eq!(p.recall, 1.0);
        assert!((p.precision - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missed_transition_hurts_recall() {
        let p = evaluate_transitions(&[100], &[100, 500], 5, 5);
        assert_eq!(p.precision, 1.0);
        assert!((p.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_detection_matches_one_truth_only() {
        // One detection cannot satisfy two overlapping truths.
        let p = evaluate_transitions(&[100], &[98, 102], 10, 10);
        assert!((p.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lag_statistics() {
        let (mean, max) = detection_lag(&[110, 230], &[100, 200], 50);
        assert!((mean - 20.0).abs() < 1e-12);
        assert_eq!(max, 30);
    }

    #[test]
    fn empty_inputs() {
        let p = evaluate_transitions(&[], &[], 5, 5);
        assert_eq!(p.f1, 0.0);
        let (mean, max) = detection_lag(&[], &[1], 10);
        assert_eq!((mean, max), (0.0, 0));
    }
}
