//! Common interface of all phase-transition detectors: they observe the PC
//! stream one access at a time and report transition events online.

/// An online phase-transition detector over the PC stream.
pub trait TransitionDetector {
    /// Detector name as it appears in Table 4.
    fn name(&self) -> &'static str;

    /// Feeds one PC; returns `true` when a phase transition is declared at
    /// this point in the stream.
    fn update(&mut self, pc: u64) -> bool;

    /// Clears all internal state.
    fn reset(&mut self);

    /// Runs the detector over a whole stream, returning the indices at
    /// which transitions were declared.
    fn detect_all(&mut self, pcs: &[u64]) -> Vec<usize>
    where
        Self: Sized,
    {
        pcs.iter()
            .enumerate()
            .filter_map(|(i, &pc)| self.update(pc).then_some(i))
            .collect()
    }
}
