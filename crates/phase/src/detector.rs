//! Common interface of all phase-transition detectors: they observe the PC
//! stream one access at a time and report transition events online.

/// Lifetime counters every detector exposes through
/// [`TransitionDetector::stats`]. All fields survive [`reset`] — they
/// describe the detector's whole service life, not one window.
///
/// [`reset`]: TransitionDetector::reset
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// PCs fed through `update`.
    pub updates: u64,
    /// Transitions declared (`update` returned `true`).
    pub detections: u64,
    /// Times a soft-detection counter was armed (raw detection that opened
    /// a confirmation window). Zero for hard detectors.
    pub soft_arms: u64,
    /// Explicit `reset` calls.
    pub resets: u64,
    /// Arm→confirm latency samples recorded (one per confirmed detection).
    pub confirm_latency_samples: u64,
    /// Sum of arm→confirm latencies, in stream samples. Hard detectors
    /// confirm on the same update that arms, so they contribute zeros;
    /// soft detectors contribute their confirmation-window lag, bounded
    /// by the detector's window size.
    pub confirm_latency_sum: u64,
    /// Largest single arm→confirm latency observed.
    pub confirm_latency_max: u64,
}

impl DetectorStats {
    /// Records one confirmed detection's arm→confirm latency.
    pub(crate) fn record_confirm_latency(&mut self, lat: u64) {
        self.confirm_latency_samples += 1;
        self.confirm_latency_sum += lat;
        self.confirm_latency_max = self.confirm_latency_max.max(lat);
    }

    /// Mean arm→confirm latency in stream samples (0 when no samples).
    pub fn mean_confirm_latency(&self) -> f64 {
        if self.confirm_latency_samples == 0 {
            0.0
        } else {
            self.confirm_latency_sum as f64 / self.confirm_latency_samples as f64
        }
    }
}

/// An online phase-transition detector over the PC stream.
pub trait TransitionDetector {
    /// Detector name as it appears in Table 4.
    fn name(&self) -> &'static str;

    /// Feeds one PC; returns `true` when a phase transition is declared at
    /// this point in the stream.
    fn update(&mut self, pc: u64) -> bool;

    /// Clears all internal state.
    fn reset(&mut self);

    /// Lifetime counters; detectors that predate the registry report zeros.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }

    /// Runs the detector over a whole stream, returning the indices at
    /// which transitions were declared.
    fn detect_all(&mut self, pcs: &[u64]) -> Vec<usize>
    where
        Self: Sized,
    {
        pcs.iter()
            .enumerate()
            .filter_map(|(i, &pc)| self.update(pc).then_some(i))
            .collect()
    }
}
