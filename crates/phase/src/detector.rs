//! Common interface of all phase-transition detectors: they observe the PC
//! stream one access at a time and report transition events online.

/// Lifetime counters every detector exposes through
/// [`TransitionDetector::stats`]. All fields survive [`reset`] — they
/// describe the detector's whole service life, not one window.
///
/// [`reset`]: TransitionDetector::reset
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// PCs fed through `update`.
    pub updates: u64,
    /// Transitions declared (`update` returned `true`).
    pub detections: u64,
    /// Times a soft-detection counter was armed (raw detection that opened
    /// a confirmation window). Zero for hard detectors.
    pub soft_arms: u64,
    /// Explicit `reset` calls.
    pub resets: u64,
}

/// An online phase-transition detector over the PC stream.
pub trait TransitionDetector {
    /// Detector name as it appears in Table 4.
    fn name(&self) -> &'static str;

    /// Feeds one PC; returns `true` when a phase transition is declared at
    /// this point in the stream.
    fn update(&mut self, pc: u64) -> bool;

    /// Clears all internal state.
    fn reset(&mut self);

    /// Lifetime counters; detectors that predate the registry report zeros.
    fn stats(&self) -> DetectorStats {
        DetectorStats::default()
    }

    /// Runs the detector over a whole stream, returning the indices at
    /// which transitions were declared.
    fn detect_all(&mut self, pcs: &[u64]) -> Vec<usize>
    where
        Self: Sized,
    {
        pcs.iter()
            .enumerate()
            .filter_map(|(i, &pc)| self.update(pc).then_some(i))
            .collect()
    }
}
