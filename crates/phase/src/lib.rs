//! # mpgraph-phase
//!
//! Phase-transition detection for graph analytics (§4.2 of the paper):
//!
//! * **Unsupervised** — [`Kswin`] (the KSWIN concept-drift baseline) and
//!   [`SoftKswin`] (Algorithm 2's soft-detection variant, which samples its
//!   history window from the unpolluted stream prefix and requires a
//!   detection *ratio* before declaring a transition);
//! * **Supervised** — a CART [`DecisionTree`] phase classifier with the
//!   hard [`DtDetector`] and mode-comparing [`SoftDtDetector`] front ends;
//! * **Evaluation** — tolerance-window matching of detections against
//!   ground-truth transitions, producing Table 4's precision/recall/F1.
//!
//! All detectors consume only the PC stream, which clusters by phase
//! (Figure 2b) — they never see the ground-truth labels online.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod detector;
pub mod dtree;
pub mod eval;
pub mod ks;
pub mod kswin;

pub use detector::{DetectorStats, TransitionDetector};
pub use dtree::{build_training_set, DecisionTree, DtDetector, SoftDtDetector};
pub use eval::{detection_lag, evaluate_transitions};
pub use ks::{ks_statistic, ks_threshold};
pub use kswin::{Kswin, KswinConfig, SoftKswin};

/// Precision / recall / F1 triple (same shape as `mpgraph-ml`'s metrics but
/// defined locally to keep this crate dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Prf {
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_counts() {
        let p = Prf::from_counts(3, 1, 0);
        assert_eq!(p.recall, 1.0);
        assert!((p.precision - 0.75).abs() < 1e-12);
    }
}
