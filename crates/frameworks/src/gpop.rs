//! GPOP-like partition-centric Scatter-Gather framework (Lakhotia et al.,
//! TOPC 2020), instrumented to emit a memory trace.
//!
//! GPOP splits the vertex set into cache-sized partitions. Each iteration
//! has two barrier-synchronized phases:
//!
//! * **Scatter** — every partition streams its active vertices, reads their
//!   values and out-edges, and appends `(dst, msg)` update entries into
//!   per-destination-partition *bins*;
//! * **Gather** — every partition streams its own bin, folds the messages
//!   into accumulators, then applies the new vertex values.
//!
//! The bins convert random writes into sequential ones — which is exactly
//! why GPOP's two phases have such different access signatures (Figure 2a).

use crate::apps::VertexProgram;
use crate::trace::{AddressSpace, PcMap, TraceBuilder};
use mpgraph_graph::{Csr, VertexId};

/// Framework id used in the synthetic PC map.
const FRAMEWORK_ID: u8 = 0;

/// Phase indices.
pub const PHASE_SCATTER: u8 = 0;
pub const PHASE_GATHER: u8 = 1;
/// Phases per iteration (Table 1: N = 2).
pub const NUM_PHASES: u8 = 2;
/// Pseudo-phase hosting the framework's *runtime* code page (partition
/// scheduling, buffer management). Real frameworks execute such library
/// code inside every phase; its PCs do not belong to either phase cluster
/// and produce exactly the impulse pattern shifts that cause hard
/// detectors' false positives (paper §4.2, Figure 5a).
pub const RUNTIME_CODE: u8 = 14;

// Code sites (one per static load/store in the kernels).
mod site {
    pub const SC_ACTIVE: u32 = 0;
    pub const SC_VALUE: u32 = 1;
    pub const SC_OFFSET: u32 = 2;
    pub const SC_EDGE: u32 = 3;
    pub const SC_BIN_WRITE: u32 = 4;
    pub const GA_BIN_READ: u32 = 0;
    pub const GA_ACC_READ: u32 = 1;
    pub const GA_ACC_WRITE: u32 = 2;
    pub const GA_APPLY_ACC: u32 = 3;
    pub const GA_APPLY_VAL_R: u32 = 4;
    pub const GA_APPLY_VAL_W: u32 = 5;
    pub const GA_ACTIVE_W: u32 = 6;
}

/// Virtual layout of GPOP's data structures for one execution.
struct Layout {
    values: u64,
    offsets: u64,
    edges: u64,
    acc: u64,
    active: u64,
    /// Partition-descriptor metadata touched by the runtime bursts.
    runtime: u64,
    /// Base of each destination partition's bin segment.
    bin_base: Vec<u64>,
}

/// Runs `prog` over `g` under the GPOP model, logging accesses into `tb`.
/// Returns the final vertex values.
pub fn run(
    g: &Csr,
    prog: &dyn VertexProgram,
    num_partitions: usize,
    iterations: usize,
    tb: &mut TraceBuilder,
) -> Vec<f32> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let pcs = PcMap::new(FRAMEWORK_ID);
    let parts = num_partitions.max(1);
    let part_size = n.div_ceil(parts);
    let part_of = |v: VertexId| (v as usize / part_size.max(1)).min(parts - 1);

    // Bin capacity per destination partition = its total in-degree.
    let mut in_deg_per_part = vec![0u64; parts];
    for v in 0..n as VertexId {
        for &u in g.neighbors(v) {
            in_deg_per_part[part_of(u)] += 1;
        }
    }
    let mut space = AddressSpace::new();
    let layout = Layout {
        values: space.alloc("values", n, 4),
        offsets: space.alloc("offsets", n + 1, 8),
        edges: space.alloc("edges", m, 4),
        acc: space.alloc("acc", n, 4),
        active: space.alloc("active", n, 1),
        runtime: space.alloc("runtime", parts * 16, 64),
        bin_base: in_deg_per_part
            .iter()
            .enumerate()
            .map(|(p, &cap)| space.alloc(&format!("bin{p}"), cap.max(1) as usize, 8))
            .collect(),
    };

    let mut values = prog.init(n);
    let mut active = prog.initial_active(n);
    let num_cores = tb.num_cores();

    for _iter in 0..iterations {
        if tb.is_full() {
            break;
        }
        // Converged (no frontier): restart the run, as a benchmarking
        // harness re-executing the app would. Keeps every iteration of the
        // trace populated and reproduces the paper's iterative reuse.
        if !prog.always_active() && !active.iter().any(|&a| a) {
            values = prog.init(n);
            active = prog.initial_active(n);
        }
        tb.begin_iteration();

        // -------------------------- Scatter --------------------------
        // bins[p] holds (dst, msg) pairs destined for partition p.
        let mut bins: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); parts];
        let mut bin_cursor = vec![0u64; parts];
        let mut rec = tb.phase(PHASE_SCATTER);
        for p in 0..parts {
            let core = p % num_cores;
            // Partition scheduling: runtime code walks the partition's
            // descriptor block before processing it.
            for j in 0..24u64 {
                rec.log(
                    core,
                    pcs.pc(RUNTIME_CODE, (j % 6) as u32),
                    layout.runtime + (p as u64 * 16 + j % 16) * 64,
                    false,
                );
            }
            let lo = (p * part_size).min(n);
            let hi = ((p + 1) * part_size).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_ACTIVE),
                    layout.active + v as u64,
                    false,
                );
                if !(active[v] || prog.always_active()) {
                    continue;
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_VALUE),
                    layout.values + v as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_OFFSET),
                    layout.offsets + v as u64 * 8,
                    false,
                );
                let deg = g.degree(v as VertexId);
                for (k, (u, w)) in g.neighbors_weighted(v as VertexId).enumerate() {
                    let e_idx = g.edge_range(v as VertexId).start + k;
                    rec.log(
                        core,
                        pcs.pc(PHASE_SCATTER, site::SC_EDGE),
                        layout.edges + e_idx as u64 * 4,
                        false,
                    );
                    if let Some(msg) = prog.scatter_value(values[v], deg, w) {
                        let dp = part_of(u);
                        rec.log(
                            core,
                            pcs.pc(PHASE_SCATTER, site::SC_BIN_WRITE),
                            layout.bin_base[dp] + bin_cursor[dp] * 8,
                            true,
                        );
                        bin_cursor[dp] += 1;
                        bins[dp].push((u, msg));
                    }
                }
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // -------------------------- Gather ---------------------------
        // Accumulators conceptually reset to identity by a streaming memset
        // before the phase; the memset is not traced (non-temporal stores
        // bypass the LLC in the real framework).
        let mut acc = vec![prog.identity(); n];
        let mut got = vec![false; n];
        let mut rec = tb.phase(PHASE_GATHER);
        for (p, bin) in bins.iter().enumerate() {
            let core = p % num_cores;
            for j in 0..24u64 {
                rec.log(
                    core,
                    pcs.pc(RUNTIME_CODE, (j % 6) as u32),
                    layout.runtime + (p as u64 * 16 + j % 16) * 64,
                    false,
                );
            }
            for (k, &(dst, msg)) in bin.iter().enumerate() {
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_BIN_READ),
                    layout.bin_base[p] + k as u64 * 8,
                    false,
                );
                // acc[dst]: dst was just loaded from the bin entry — a
                // true data dependence (indirection).
                rec.log_dep(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACC_READ),
                    layout.acc + dst as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACC_WRITE),
                    layout.acc + dst as u64 * 4,
                    true,
                );
                acc[dst as usize] = prog.accumulate(acc[dst as usize], msg);
                got[dst as usize] = true;
            }
            // Apply loop over the partition's own vertices.
            let lo = (p * part_size).min(n);
            let hi = ((p + 1) * part_size).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_APPLY_ACC),
                    layout.acc + v as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_APPLY_VAL_R),
                    layout.values + v as u64 * 4,
                    false,
                );
                let new = prog.apply(values[v], acc[v], got[v]);
                let changed = new != values[v] && !(new.is_nan() && values[v].is_nan());
                if changed || prog.always_active() {
                    rec.log(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_APPLY_VAL_W),
                        layout.values + v as u64 * 4,
                        true,
                    );
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACTIVE_W),
                    layout.active + v as u64,
                    true,
                );
                values[v] = new;
                active[v] = changed;
            }
        }
        tb.commit_phase(rec);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{self, App};
    use mpgraph_graph::{rmat, RmatConfig};

    fn run_app(app: App, g: &Csr, iters: usize) -> (Vec<f32>, crate::trace::Trace) {
        let prog = apps::program_for(app, g, 0).unwrap();
        let mut tb = TraceBuilder::new(NUM_PHASES, 4, 7, usize::MAX);
        let vals = run(g, prog.as_ref(), 8, iters, &mut tb);
        (vals, tb.finish())
    }

    #[test]
    fn gpop_bfs_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 3));
        let (vals, _) = run_app(App::Bfs, &g, 40);
        assert_eq!(vals, apps::ref_bfs(&g, 0));
    }

    #[test]
    fn gpop_cc_matches_reference_on_symmetrized() {
        let g = rmat(RmatConfig::new(6, 300, 4)).symmetrize();
        let (vals, _) = run_app(App::Cc, &g, 60);
        assert_eq!(vals, apps::ref_cc(&g));
    }

    #[test]
    fn gpop_sssp_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 5));
        let (vals, _) = run_app(App::Sssp, &g, 60);
        assert_eq!(vals, apps::ref_sssp(&g, 0));
    }

    #[test]
    fn gpop_pagerank_close_to_reference() {
        let g = rmat(RmatConfig::new(6, 500, 6));
        let iters = 15;
        let (vals, _) = run_app(App::Pr, &g, iters);
        let expect = apps::ref_pagerank(&g, iters);
        for (a, b) in vals.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn trace_has_two_alternating_phases() {
        let g = rmat(RmatConfig::new(6, 400, 8));
        let (_, t) = run_app(App::Pr, &g, 3);
        assert_eq!(t.num_phases, 2);
        assert_eq!(t.num_iterations(), 3);
        // 3 iterations × 2 phases → 5 transitions.
        assert_eq!(t.transitions.len(), 5);
        let phases: Vec<u8> = t.records.iter().map(|r| r.phase).collect();
        // Phases only change at recorded transitions.
        for i in 1..phases.len() {
            if phases[i] != phases[i - 1] {
                assert!(t.transitions.contains(&i));
            }
        }
    }

    #[test]
    fn trace_uses_all_cores() {
        let g = rmat(RmatConfig::new(7, 2000, 9));
        let (_, t) = run_app(App::Pr, &g, 2);
        let cores: std::collections::HashSet<u8> = t.records.iter().map(|r| r.core).collect();
        assert_eq!(cores.len(), 4);
    }

    #[test]
    fn bin_writes_are_sequential_per_partition() {
        let g = rmat(RmatConfig::new(6, 400, 10));
        let (_, t) = run_app(App::Pr, &g, 1);
        // Collect bin-write addresses in program order per partition region;
        // within a partition, the cursor never decreases.
        let pcs = PcMap::new(FRAMEWORK_ID);
        let pc = pcs.pc(PHASE_SCATTER, site::SC_BIN_WRITE);
        let writes: Vec<u64> = t
            .records
            .iter()
            .filter(|r| r.pc == pc)
            .map(|r| r.vaddr)
            .collect();
        assert!(!writes.is_empty());
    }

    #[test]
    fn frontier_apps_restart_after_convergence() {
        let g = rmat(RmatConfig::new(5, 150, 11)).symmetrize();
        // Enough iterations for BFS to converge several times over.
        let (_, t) = run_app(App::Bfs, &g, 30);
        assert_eq!(t.num_iterations(), 30);
        // Every iteration must contain records (restart keeps them busy).
        for i in 0..t.num_iterations() {
            assert!(!t.iteration(i).is_empty(), "iteration {i} empty");
        }
    }
}
