//! # mpgraph-frameworks
//!
//! Instrumented graph-analytics frameworks that generate multi-core memory
//! traces — the stand-in for the paper's Intel Pin instrumentation of GPOP,
//! X-Stream, and PowerGraph (see DESIGN.md for the substitution rationale).
//!
//! Three framework models run the five benchmark applications of Table 1
//! over any [`mpgraph_graph::Csr`], logging every modelled data-structure
//! access as a [`trace::MemRecord`] with a synthetic per-code-site PC,
//! ground-truth phase label, and core id. The resulting [`trace::Trace`]
//! streams feed the simulator, the phase detectors, and the ML predictors.
//!
//! ```
//! use mpgraph_frameworks::{generate_trace, App, Framework, TraceConfig};
//! use mpgraph_graph::{rmat, RmatConfig};
//!
//! let g = rmat(RmatConfig::new(8, 2000, 42));
//! let cfg = TraceConfig { iterations: 2, ..TraceConfig::default() };
//! let out = generate_trace(Framework::Gpop, App::Pr, &g, &cfg);
//! assert!(out.trace.records.len() > 1000);
//! assert_eq!(out.trace.num_phases, 2); // Scatter, Gather
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod apps;
pub mod gpop;
pub mod io;
pub mod powergraph;
pub mod runner;
pub mod trace;
pub mod xstream;

pub use apps::App;
pub use runner::{generate_trace, Framework, RunOutput, TraceConfig};
pub use trace::{MemRecord, Trace, BLOCKS_PER_PAGE, BLOCK_SIZE, PAGE_SIZE};
