//! The five benchmark applications of Table 1 (BFS, CC, PR, SSSP, TC),
//! expressed as *vertex programs* so that each of the three framework
//! paradigms can execute them, plus straightforward reference
//! implementations used by the test suite to check that the instrumented
//! frameworks compute correct results.

use mpgraph_graph::{Csr, VertexId};
use std::collections::VecDeque;

/// Application identifiers, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    Bfs,
    Cc,
    Pr,
    Sssp,
    /// Triangle counting: only PowerGraph runs it (Table 1), via a dedicated
    /// gather that intersects adjacency lists.
    Tc,
}

impl App {
    pub fn name(&self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::Cc => "CC",
            App::Pr => "PR",
            App::Sssp => "SSSP",
            App::Tc => "TC",
        }
    }

    pub const ALL: [App; 5] = [App::Bfs, App::Cc, App::Pr, App::Sssp, App::Tc];
}

/// Value used to mean "unreached" for BFS/SSSP.
pub const INF: f32 = f32::INFINITY;

/// A Scatter-Gather / GAS vertex program over `f32` vertex values.
///
/// Semantics per iteration:
/// 1. every *active* vertex `u` sends `scatter_value(value[u], deg(u), w)`
///    along each out-edge `(u, v, w)`;
/// 2. each destination folds received messages with `accumulate`, starting
///    from `identity()`;
/// 3. `apply(old, acc, received_any)` produces the new value; a vertex whose
///    value changed becomes active for the next iteration.
pub trait VertexProgram {
    /// Initial vertex values (and implicitly the initial active set: every
    /// vertex with a finite value for traversal apps, everyone for PR/CC).
    fn init(&self, n: usize) -> Vec<f32>;

    /// Initially active vertices.
    fn initial_active(&self, n: usize) -> Vec<bool>;

    /// Message along an out-edge; `None` means the vertex sends nothing
    /// (e.g. unreached BFS vertex).
    fn scatter_value(&self, val: f32, out_degree: usize, weight: f32) -> Option<f32>;

    /// Identity element of `accumulate`.
    fn identity(&self) -> f32;

    /// Commutative, associative fold of incoming messages.
    fn accumulate(&self, acc: f32, msg: f32) -> f32;

    /// New vertex value from the old value and the accumulator.
    /// `received_any` distinguishes "no messages" from "identity message".
    fn apply(&self, old: f32, acc: f32, received_any: bool) -> f32;

    /// Whether every vertex scatters every iteration regardless of change
    /// (PageRank-style stationary iteration) or only changed vertices do
    /// (frontier-style traversal).
    fn always_active(&self) -> bool {
        false
    }
}

/// PageRank with damping 0.85 (the frameworks' built-in default).
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    pub n: usize,
}

impl VertexProgram for PageRank {
    fn init(&self, n: usize) -> Vec<f32> {
        vec![1.0 / n.max(1) as f32; n]
    }
    fn initial_active(&self, n: usize) -> Vec<bool> {
        vec![true; n]
    }
    fn scatter_value(&self, val: f32, out_degree: usize, _w: f32) -> Option<f32> {
        (out_degree > 0).then(|| val / out_degree as f32)
    }
    fn identity(&self) -> f32 {
        0.0
    }
    fn accumulate(&self, acc: f32, msg: f32) -> f32 {
        acc + msg
    }
    fn apply(&self, _old: f32, acc: f32, _received_any: bool) -> f32 {
        0.15 / self.n.max(1) as f32 + 0.85 * acc
    }
    fn always_active(&self) -> bool {
        true
    }
}

/// Breadth-first search from `source` computing hop counts.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    pub source: VertexId,
}

impl VertexProgram for Bfs {
    fn init(&self, n: usize) -> Vec<f32> {
        let mut v = vec![INF; n];
        if (self.source as usize) < n {
            v[self.source as usize] = 0.0;
        }
        v
    }
    fn initial_active(&self, n: usize) -> Vec<bool> {
        let mut a = vec![false; n];
        if (self.source as usize) < n {
            a[self.source as usize] = true;
        }
        a
    }
    fn scatter_value(&self, val: f32, _deg: usize, _w: f32) -> Option<f32> {
        val.is_finite().then_some(val + 1.0)
    }
    fn identity(&self) -> f32 {
        INF
    }
    fn accumulate(&self, acc: f32, msg: f32) -> f32 {
        acc.min(msg)
    }
    fn apply(&self, old: f32, acc: f32, _received_any: bool) -> f32 {
        old.min(acc)
    }
}

/// Connected components by label propagation (on the directed graph viewed
/// as undirected via the framework's symmetrized input).
#[derive(Debug, Clone, Copy)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    fn init(&self, n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }
    fn initial_active(&self, n: usize) -> Vec<bool> {
        vec![true; n]
    }
    fn scatter_value(&self, val: f32, _deg: usize, _w: f32) -> Option<f32> {
        Some(val)
    }
    fn identity(&self) -> f32 {
        INF
    }
    fn accumulate(&self, acc: f32, msg: f32) -> f32 {
        acc.min(msg)
    }
    fn apply(&self, old: f32, acc: f32, _received_any: bool) -> f32 {
        old.min(acc)
    }
}

/// Single-source shortest paths (Bellman-Ford style relaxation).
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    pub source: VertexId,
}

impl VertexProgram for Sssp {
    fn init(&self, n: usize) -> Vec<f32> {
        let mut v = vec![INF; n];
        if (self.source as usize) < n {
            v[self.source as usize] = 0.0;
        }
        v
    }
    fn initial_active(&self, n: usize) -> Vec<bool> {
        let mut a = vec![false; n];
        if (self.source as usize) < n {
            a[self.source as usize] = true;
        }
        a
    }
    fn scatter_value(&self, val: f32, _deg: usize, w: f32) -> Option<f32> {
        val.is_finite().then_some(val + w)
    }
    fn identity(&self) -> f32 {
        INF
    }
    fn accumulate(&self, acc: f32, msg: f32) -> f32 {
        acc.min(msg)
    }
    fn apply(&self, old: f32, acc: f32, _received_any: bool) -> f32 {
        old.min(acc)
    }
}

/// Builds the vertex program for `app`, or `None` for TC, which has no
/// vertex-program form (PowerGraph special-cases it).
pub fn program_for(app: App, g: &Csr, source: VertexId) -> Option<Box<dyn VertexProgram>> {
    match app {
        App::Pr => Some(Box::new(PageRank {
            n: g.num_vertices(),
        })),
        App::Bfs => Some(Box::new(Bfs { source })),
        App::Cc => Some(Box::new(ConnectedComponents)),
        App::Sssp => Some(Box::new(Sssp { source })),
        App::Tc => None,
    }
}

// ---------------------------------------------------------------------------
// Reference implementations (test oracles)
// ---------------------------------------------------------------------------

/// Reference BFS hop counts via queue traversal.
pub fn ref_bfs(g: &Csr, source: VertexId) -> Vec<f32> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0.0;
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u as usize].is_infinite() {
                dist[u as usize] = dist[v as usize] + 1.0;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Reference connected-component labels (min vertex id per component) on the
/// symmetrized graph, via union-find.
pub fn ref_cc(g: &Csr) -> Vec<f32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in 0..n as VertexId {
        for &u in g.neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, u));
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v) as f32).collect()
}

/// Reference SSSP distances via Dijkstra (weights must be non-negative).
pub fn ref_sssp(g: &Csr, source: VertexId) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if (source as usize) >= n {
        return dist;
    }
    dist[source as usize] = 0.0;
    // Order f32 distances through their bit pattern (all non-negative here).
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.neighbors_weighted(v) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd.to_bits(), u)));
            }
        }
    }
    dist
}

/// Reference PageRank: dense power iteration, `iters` rounds.
pub fn ref_pagerank(g: &Csr, iters: usize) -> Vec<f32> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n.max(1) as f32; n];
    for _ in 0..iters {
        let mut next = vec![0.15 / n.max(1) as f32; n];
        for v in 0..n as VertexId {
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let share = 0.85 * rank[v as usize] / deg as f32;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        rank = next;
    }
    rank
}

/// Reference triangle count on the symmetrized graph via sorted-list
/// intersection, counting each triangle once.
pub fn ref_triangles(g: &Csr) -> u64 {
    let u = g.symmetrize();
    let n = u.num_vertices();
    let mut count = 0u64;
    for v in 0..n as VertexId {
        for &w in u.neighbors(v) {
            if w <= v {
                continue;
            }
            // Count common neighbors x with x > w to orient each triangle.
            let (mut i, mut j) = (0usize, 0usize);
            let a = u.neighbors(v);
            let b = u.neighbors(w);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > w {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_graph::{rmat, RmatConfig};

    fn path_graph() -> Csr {
        // 0 -1-> 1 -1-> 2 -1-> 3, plus shortcut 0 -5-> 3
        Csr::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 5.0)])
    }

    #[test]
    fn ref_bfs_levels() {
        let g = path_graph();
        assert_eq!(ref_bfs(&g, 0), vec![0.0, 1.0, 2.0, 1.0]);
        assert_eq!(ref_bfs(&g, 3), vec![INF, INF, INF, 0.0]);
    }

    #[test]
    fn ref_sssp_prefers_cheap_path() {
        let g = path_graph();
        assert_eq!(ref_sssp(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn ref_cc_two_components() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let sym = g.symmetrize();
        assert_eq!(ref_cc(&sym), vec![0.0, 0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn ref_pagerank_sums_to_one_ish() {
        let g = rmat(RmatConfig::new(8, 2000, 5));
        let pr = ref_pagerank(&g, 20);
        let total: f32 = pr.iter().sum();
        // Dangling vertices leak mass; total stays in (0.15, 1].
        assert!(total > 0.15 && total <= 1.0 + 1e-3, "total {total}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn ref_triangles_on_known_graphs() {
        // Triangle 0-1-2 plus pendant 3.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(ref_triangles(&g), 1);
        // K4 has 4 triangles.
        let mut edges = vec![];
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let k4 = Csr::from_edges(4, &edges);
        assert_eq!(ref_triangles(&k4), 4);
    }

    #[test]
    fn program_traits_are_consistent() {
        let g = path_graph();
        let pr = program_for(App::Pr, &g, 0).unwrap();
        assert!(pr.always_active());
        assert_eq!(pr.accumulate(1.0, 2.0), 3.0);
        let bfs = program_for(App::Bfs, &g, 0).unwrap();
        assert!(!bfs.always_active());
        assert_eq!(bfs.scatter_value(INF, 1, 1.0), None);
        assert_eq!(bfs.scatter_value(2.0, 1, 1.0), Some(3.0));
        let init = bfs.init(4);
        assert_eq!(init[0], 0.0);
        assert!(init[1].is_infinite());
    }

    #[test]
    fn tc_is_not_a_vertex_program() {
        let g = path_graph();
        assert!(program_for(App::Tc, &g, 0).is_none());
    }
}
