//! Memory-trace machinery: records, virtual address-space layout, synthetic
//! program counters, per-core recording, and multi-core interleaving.
//!
//! The paper extracts traces with Intel Pin from real executions on 4 cores
//! and feeds them through ChampSim. Our substitution runs the actual graph
//! algorithms in Rust and logs every *modelled* memory touch with a virtual
//! address computed from the data-structure layout and a synthetic PC per
//! code site. What must be preserved for the downstream ML models is:
//!
//! * distinct access patterns per phase (drives phase-specific models),
//! * PC values clustering by phase (drives the PC-based transition
//!   detectors, cf. Figure 2b),
//! * wide page jumps from irregular neighbor access (Figure 3),
//! * interleaved multi-core streams with irregular relative progress.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Cache block size in bytes (matches Table 3 / common x86).
pub const BLOCK_SIZE: u64 = 64;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Blocks per page (the spatial range of the delta predictor).
pub const BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;

/// One recorded memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRecord {
    /// Synthetic program counter of the instruction.
    pub pc: u64,
    /// Virtual byte address touched.
    pub vaddr: u64,
    /// Logical core (0..num_cores).
    pub core: u8,
    /// Store (true) vs load (false).
    pub is_write: bool,
    /// Ground-truth phase index within the framework's iteration (used for
    /// supervised detector training and for evaluation only — the online
    /// prefetcher never sees it).
    pub phase: u8,
    /// Number of non-memory instructions retired before this access; the
    /// simulator charges them to the front end when computing IPC.
    pub gap: u8,
    /// True when the access address *depends on the data of the previous
    /// load* on this core (e.g. `values[dst]` where `dst` was just loaded
    /// from the edge array). Dependent loads cannot overlap with their
    /// producer — the indirection chains that make graph analytics
    /// latency-bound and prefetching valuable.
    pub dep: bool,
}

impl MemRecord {
    /// Block address (vaddr / 64).
    #[inline]
    pub fn block(&self) -> u64 {
        self.vaddr / BLOCK_SIZE
    }

    /// Page number (vaddr / 4096).
    #[inline]
    pub fn page(&self) -> u64 {
        self.vaddr / PAGE_SIZE
    }

    /// Block offset within the page (0..64).
    #[inline]
    pub fn page_offset(&self) -> u64 {
        (self.vaddr % PAGE_SIZE) / BLOCK_SIZE
    }
}

/// A complete interleaved trace for one application execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub records: Vec<MemRecord>,
    /// Number of phases per iteration for the generating framework.
    pub num_phases: u8,
    /// Record indices at which the ground-truth phase changes (the first
    /// record of each new phase, excluding index 0).
    pub transitions: Vec<usize>,
    /// Record index where each iteration begins (index 0 included).
    pub iteration_starts: Vec<usize>,
}

impl Trace {
    /// Total instruction count modelled by the trace (memory + gaps).
    pub fn instruction_count(&self) -> u64 {
        self.records.iter().map(|r| 1 + r.gap as u64).sum()
    }

    /// Slice of records belonging to iteration `i`.
    pub fn iteration(&self, i: usize) -> &[MemRecord] {
        let lo = self.iteration_starts[i];
        let hi = self
            .iteration_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.records.len());
        &self.records[lo..hi]
    }

    pub fn num_iterations(&self) -> usize {
        self.iteration_starts.len()
    }

    /// Recomputes `transitions` from the per-record phase labels. Useful
    /// after slicing or concatenating traces.
    pub fn recompute_transitions(&mut self) {
        self.transitions.clear();
        for i in 1..self.records.len() {
            if self.records[i].phase != self.records[i - 1].phase {
                self.transitions.push(i);
            }
        }
    }
}

/// Lays out named arrays in a synthetic virtual address space. Regions are
/// page-aligned and separated by an unmapped guard gap so distinct arrays
/// never share a page — as the loader/allocator of a real framework would
/// arrange for large allocations.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
    regions: Vec<(String, u64, u64)>, // (name, base, len)
}

impl AddressSpace {
    /// Region alignment (2 MiB, the typical huge-page / mmap granularity).
    const REGION_ALIGN: u64 = 2 * 1024 * 1024;
    /// Bottom of the modelled heap.
    const HEAP_BASE: u64 = 0x10_0000_0000;

    pub fn new() -> Self {
        AddressSpace {
            next: Self::HEAP_BASE,
            regions: Vec::new(),
        }
    }

    /// Allocates a region for `count` elements of `elem_size` bytes and
    /// returns its base address.
    pub fn alloc(&mut self, name: &str, count: usize, elem_size: usize) -> u64 {
        let len = (count.max(1) * elem_size) as u64;
        let base = self.next;
        self.regions.push((name.to_string(), base, len));
        let end = base + len;
        self.next = (end + Self::REGION_ALIGN) & !(Self::REGION_ALIGN - 1);
        base
    }

    /// Named regions allocated so far: (name, base, byte length).
    pub fn regions(&self) -> &[(String, u64, u64)] {
        &self.regions
    }

    /// Returns the region containing `vaddr`, if any.
    pub fn region_of(&self, vaddr: u64) -> Option<&str> {
        self.regions
            .iter()
            .find(|(_, base, len)| vaddr >= *base && vaddr < base + len)
            .map(|(n, _, _)| n.as_str())
    }
}

/// Assigns synthetic PCs. Each (phase, site) pair maps to a fixed PC inside
/// a phase-specific 4 KiB code page, so PCs cluster by phase exactly as
/// Figure 2b shows for the real frameworks. All cores execute the same code,
/// hence share PCs — as real threads do.
#[derive(Debug, Clone, Copy)]
pub struct PcMap {
    base: u64,
}

impl PcMap {
    /// `framework_id` separates the code regions of the three frameworks.
    pub fn new(framework_id: u8) -> Self {
        PcMap {
            base: 0x40_0000 + ((framework_id as u64) << 20),
        }
    }

    /// PC of instruction `site` inside `phase`'s code page.
    #[inline]
    pub fn pc(&self, phase: u8, site: u32) -> u64 {
        self.base + ((phase as u64) << 12) + (site as u64) * 4
    }
}

/// Per-core record buffer used while one phase executes.
#[derive(Debug)]
pub struct PhaseRecorder {
    pub buffers: Vec<Vec<MemRecord>>,
    phase: u8,
    gap_state: u32,
}

impl PhaseRecorder {
    pub fn new(num_cores: usize, phase: u8) -> Self {
        PhaseRecorder {
            buffers: vec![Vec::new(); num_cores],
            phase,
            gap_state: 0x9E37_79B9,
        }
    }

    /// Logs one access on `core`. The gap (non-memory instructions) is a
    /// small deterministic pseudo-random value in 1..=6, standing in for the
    /// arithmetic between loads in real graph kernels.
    #[inline]
    pub fn log(&mut self, core: usize, pc: u64, vaddr: u64, is_write: bool) {
        self.log_impl(core, pc, vaddr, is_write, false);
    }

    /// Logs an access whose address was computed from the previous load's
    /// data (an indirection, serialized by the simulator's core model).
    #[inline]
    pub fn log_dep(&mut self, core: usize, pc: u64, vaddr: u64, is_write: bool) {
        self.log_impl(core, pc, vaddr, is_write, true);
    }

    #[inline]
    fn log_impl(&mut self, core: usize, pc: u64, vaddr: u64, is_write: bool, dep: bool) {
        // xorshift for a cheap deterministic gap sequence.
        self.gap_state ^= self.gap_state << 13;
        self.gap_state ^= self.gap_state >> 17;
        self.gap_state ^= self.gap_state << 5;
        let gap = 1 + (self.gap_state % 6) as u8;
        self.buffers[core].push(MemRecord {
            pc,
            vaddr,
            core: core as u8,
            is_write,
            phase: self.phase,
            gap,
            dep,
        });
    }
}

/// Interleaves per-core buffers of one phase into a single stream, modelling
/// parallel execution: at every step a core is chosen with a probability
/// proportional to a per-core rate that drifts over time, producing bursts
/// and irregular relative progress rather than strict round-robin.
pub fn interleave_phase(rec: PhaseRecorder, rng: &mut ChaCha8Rng, out: &mut Vec<MemRecord>) {
    let mut cursors: Vec<usize> = vec![0; rec.buffers.len()];
    let mut rates: Vec<f64> = vec![1.0; rec.buffers.len()];
    let total: usize = rec.buffers.iter().map(|b| b.len()).sum();
    out.reserve(total);
    let mut remaining = total;
    while remaining > 0 {
        // Occasionally drift rates to model OS scheduling noise.
        if remaining.is_multiple_of(64) {
            for r in rates.iter_mut() {
                *r = (*r * 0.9 + rng.gen::<f64>() * 0.6).clamp(0.2, 2.0);
            }
        }
        let weight_sum: f64 = rec
            .buffers
            .iter()
            .enumerate()
            .filter(|(c, b)| cursors[*c] < b.len())
            .map(|(c, _)| rates[c])
            .sum();
        let mut pick = rng.gen::<f64>() * weight_sum;
        let mut chosen = usize::MAX;
        for (c, b) in rec.buffers.iter().enumerate() {
            if cursors[c] >= b.len() {
                continue;
            }
            pick -= rates[c];
            if pick <= 0.0 {
                chosen = c;
                break;
            }
        }
        if chosen == usize::MAX {
            // Floating-point slack: take the last non-exhausted core.
            // `remaining > 0` guarantees one exists; bail out defensively
            // rather than panic if the invariant is ever violated.
            match rec
                .buffers
                .iter()
                .enumerate()
                .rfind(|(c, b)| cursors[*c] < b.len())
            {
                Some((c, _)) => chosen = c,
                None => break,
            }
        }
        // Emit a small burst from the chosen core: threads run many
        // instructions between context interleavings.
        let burst = 4 + (rng.gen::<u32>() % 12) as usize;
        let b = &rec.buffers[chosen];
        let take = burst.min(b.len() - cursors[chosen]);
        out.extend_from_slice(&b[cursors[chosen]..cursors[chosen] + take]);
        cursors[chosen] += take;
        remaining -= take;
    }
}

/// Accumulates interleaved phases into a [`Trace`], maintaining transition
/// and iteration bookkeeping.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    rng: ChaCha8Rng,
    num_cores: usize,
    /// Hard cap on recorded accesses; generation stops once reached.
    pub record_limit: usize,
}

impl TraceBuilder {
    pub fn new(num_phases: u8, num_cores: usize, seed: u64, record_limit: usize) -> Self {
        TraceBuilder {
            trace: Trace {
                records: Vec::new(),
                num_phases,
                transitions: Vec::new(),
                iteration_starts: Vec::new(),
            },
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE_5EED),
            num_cores,
            record_limit,
        }
    }

    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    pub fn begin_iteration(&mut self) {
        self.trace.iteration_starts.push(self.trace.records.len());
    }

    /// Starts a phase recorder for phase `phase`.
    pub fn phase(&mut self, phase: u8) -> PhaseRecorder {
        PhaseRecorder::new(self.num_cores, phase)
    }

    /// Interleaves and appends one finished phase.
    pub fn commit_phase(&mut self, rec: PhaseRecorder) {
        let start = self.trace.records.len();
        if start > 0 && !rec.buffers.iter().all(|b| b.is_empty()) {
            let prev_phase = self.trace.records[start - 1].phase;
            if prev_phase != rec.phase {
                self.trace.transitions.push(start);
            }
        }
        interleave_phase(rec, &mut self.rng, &mut self.trace.records);
        if self.trace.records.len() > self.record_limit {
            self.trace.records.truncate(self.record_limit);
        }
    }

    pub fn is_full(&self) -> bool {
        self.trace.records.len() >= self.record_limit
    }

    pub fn finish(mut self) -> Trace {
        // Drop bookkeeping that points past the truncated end.
        let n = self.trace.records.len();
        self.trace.transitions.retain(|&t| t < n);
        self.trace.iteration_starts.retain(|&t| t < n);
        if self.trace.iteration_starts.is_empty() && n > 0 {
            self.trace.iteration_starts.push(0);
        }
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_address_decomposition() {
        let r = MemRecord {
            pc: 0,
            vaddr: 0x1234_5678,
            core: 0,
            is_write: false,
            phase: 0,
            gap: 3,
            dep: false,
        };
        assert_eq!(r.block(), 0x1234_5678 / 64);
        assert_eq!(r.page(), 0x1234_5678 / 4096);
        assert_eq!(r.page_offset(), (0x1234_5678 % 4096) / 64);
        assert!(r.page_offset() < BLOCKS_PER_PAGE);
    }

    #[test]
    fn address_space_regions_are_disjoint_and_page_aligned() {
        let mut a = AddressSpace::new();
        let b1 = a.alloc("values", 1000, 4);
        let b2 = a.alloc("edges", 5000, 4);
        assert_eq!(b1 % PAGE_SIZE, 0);
        assert_eq!(b2 % PAGE_SIZE, 0);
        assert!(b2 >= b1 + 4000);
        assert_eq!(a.region_of(b1), Some("values"));
        assert_eq!(a.region_of(b1 + 3999), Some("values"));
        assert_eq!(a.region_of(b1 + 4000), None);
        assert_eq!(a.region_of(b2 + 1), Some("edges"));
    }

    #[test]
    fn pcs_cluster_by_phase() {
        let m = PcMap::new(0);
        // All phase-0 sites live in one 4 KiB page, disjoint from phase 1's.
        let p0 = m.pc(0, 0) / PAGE_SIZE;
        assert_eq!(m.pc(0, 100) / PAGE_SIZE, p0);
        let p1 = m.pc(1, 0) / PAGE_SIZE;
        assert_ne!(p0, p1);
        assert_eq!(m.pc(1, 100) / PAGE_SIZE, p1);
    }

    #[test]
    fn pc_maps_of_frameworks_are_disjoint() {
        let a = PcMap::new(0).pc(0, 0);
        let b = PcMap::new(1).pc(0, 0);
        let c = PcMap::new(2).pc(0, 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn interleave_preserves_per_core_order_and_count() {
        let mut rec = PhaseRecorder::new(3, 0);
        for core in 0..3usize {
            for i in 0..200u64 {
                rec.log(core, 0x400000, (core as u64) << 32 | i * 64, false);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut out = Vec::new();
        interleave_phase(rec, &mut rng, &mut out);
        assert_eq!(out.len(), 600);
        for core in 0..3u8 {
            let addrs: Vec<u64> = out
                .iter()
                .filter(|r| r.core == core)
                .map(|r| r.vaddr)
                .collect();
            assert_eq!(addrs.len(), 200);
            assert!(addrs.windows(2).all(|w| w[0] < w[1]), "core order broken");
        }
        // Actually interleaved, not concatenated.
        let first_200_cores: std::collections::HashSet<u8> =
            out[..200].iter().map(|r| r.core).collect();
        assert!(first_200_cores.len() > 1);
    }

    #[test]
    fn builder_tracks_transitions_and_iterations() {
        let mut tb = TraceBuilder::new(2, 2, 9, usize::MAX);
        for _iter in 0..2 {
            tb.begin_iteration();
            for phase in 0..2u8 {
                let mut rec = tb.phase(phase);
                for core in 0..2 {
                    for i in 0..10u64 {
                        rec.log(core, 0x400000 + phase as u64, i * 64, false);
                    }
                }
                tb.commit_phase(rec);
            }
        }
        let t = tb.finish();
        assert_eq!(t.records.len(), 80);
        assert_eq!(t.transitions, vec![20, 40, 60]);
        assert_eq!(t.iteration_starts, vec![0, 40]);
        assert_eq!(t.num_iterations(), 2);
        assert_eq!(t.iteration(0).len(), 40);
        assert_eq!(t.iteration(1).len(), 40);
        let mut t2 = t.clone();
        t2.recompute_transitions();
        assert_eq!(t2.transitions, t.transitions);
    }

    #[test]
    fn record_limit_truncates() {
        let mut tb = TraceBuilder::new(1, 1, 0, 15);
        tb.begin_iteration();
        let mut rec = tb.phase(0);
        for i in 0..100u64 {
            rec.log(0, 0x400000, i * 64, false);
        }
        tb.commit_phase(rec);
        assert!(tb.is_full());
        let t = tb.finish();
        assert_eq!(t.records.len(), 15);
    }

    #[test]
    fn instruction_count_includes_gaps() {
        let mut tb = TraceBuilder::new(1, 1, 0, usize::MAX);
        tb.begin_iteration();
        let mut rec = tb.phase(0);
        rec.log(0, 0x400000, 0, false);
        rec.log(0, 0x400004, 64, false);
        tb.commit_phase(rec);
        let t = tb.finish();
        assert!(t.instruction_count() >= 2 + 2); // each gap >= 1
    }
}
