//! High-level entry point: pick a framework and an application, run the
//! instrumented execution over a graph, and receive the interleaved
//! multi-core memory trace plus the computed result.

use crate::apps::{self, App};
use crate::trace::{Trace, TraceBuilder};
use crate::{gpop, powergraph, xstream};
use mpgraph_graph::Csr;

/// The three graph processing frameworks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    Gpop,
    XStream,
    PowerGraph,
}

impl Framework {
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Gpop => "GPOP",
            Framework::XStream => "X-Stream",
            Framework::PowerGraph => "PowerGraph",
        }
    }

    /// Phases per iteration (Table 1's N column).
    pub fn num_phases(&self) -> u8 {
        match self {
            Framework::Gpop => gpop::NUM_PHASES,
            Framework::XStream => xstream::NUM_PHASES,
            Framework::PowerGraph => powergraph::NUM_PHASES,
        }
    }

    /// The applications the framework ships with (Table 1).
    pub fn apps(&self) -> &'static [App] {
        match self {
            Framework::Gpop | Framework::XStream => &[App::Bfs, App::Cc, App::Pr, App::Sssp],
            Framework::PowerGraph => &[App::Cc, App::Pr, App::Sssp, App::Tc],
        }
    }

    pub const ALL: [Framework; 3] = [Framework::Gpop, Framework::XStream, Framework::PowerGraph];
}

/// Parameters of one trace-generation run.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Logical cores (the paper pins 4).
    pub num_cores: usize,
    /// Framework iterations to execute (paper: 1 training + 10 evaluation).
    pub iterations: usize,
    /// GPOP partition count.
    pub gpop_partitions: usize,
    /// Hard cap on recorded accesses.
    pub record_limit: usize,
    /// Source vertex for BFS/SSSP.
    pub source: u32,
    /// Interleaver seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_cores: 4,
            iterations: 11,
            gpop_partitions: 16,
            record_limit: 2_000_000,
            source: 0,
            seed: 0xC0FFEE,
        }
    }
}

/// Output of a run: the trace and the application's final vertex values.
#[derive(Debug)]
pub struct RunOutput {
    pub trace: Trace,
    pub values: Vec<f32>,
}

/// Runs `app` on `framework` over `graph` and returns the trace + result.
///
/// CC and TC operate on the symmetrized graph (as the real frameworks
/// preprocess undirected inputs); the other apps use the graph as given.
pub fn generate_trace(framework: Framework, app: App, graph: &Csr, cfg: &TraceConfig) -> RunOutput {
    assert!(
        framework.apps().contains(&app),
        "{} does not ship {} (Table 1)",
        framework.name(),
        app.name()
    );
    let needs_sym = matches!(app, App::Cc | App::Tc);
    let sym;
    let g: &Csr = if needs_sym {
        sym = graph.symmetrize();
        &sym
    } else {
        graph
    };
    let mut tb = TraceBuilder::new(
        framework.num_phases(),
        cfg.num_cores,
        cfg.seed,
        cfg.record_limit,
    );
    let values = match (framework, app) {
        (Framework::PowerGraph, App::Tc) => powergraph::run_tc(g, cfg.iterations, &mut tb),
        (fw, app) => {
            // TC only ships on PowerGraph (Table 1 guard above), so every
            // remaining app has a vertex-program form.
            let Some(prog) = apps::program_for(app, g, cfg.source) else {
                unreachable!("{} does not ship {}", fw.name(), app.name())
            };
            match fw {
                Framework::Gpop => gpop::run(
                    g,
                    prog.as_ref(),
                    cfg.gpop_partitions,
                    cfg.iterations,
                    &mut tb,
                ),
                Framework::XStream => xstream::run(g, prog.as_ref(), cfg.iterations, &mut tb),
                Framework::PowerGraph => powergraph::run(g, prog.as_ref(), cfg.iterations, &mut tb),
            }
        }
    };
    RunOutput {
        trace: tb.finish(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_graph::{rmat, RmatConfig};

    #[test]
    fn all_table1_combinations_run() {
        let g = rmat(RmatConfig::new(6, 300, 2));
        let cfg = TraceConfig {
            iterations: 2,
            record_limit: 200_000,
            ..TraceConfig::default()
        };
        for fw in Framework::ALL {
            for &app in fw.apps() {
                let out = generate_trace(fw, app, &g, &cfg);
                assert!(
                    !out.trace.records.is_empty(),
                    "{} {} produced empty trace",
                    fw.name(),
                    app.name()
                );
                assert_eq!(out.trace.num_phases, fw.num_phases());
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not ship")]
    fn gpop_tc_is_rejected() {
        let g = rmat(RmatConfig::new(5, 100, 2));
        generate_trace(Framework::Gpop, App::Tc, &g, &TraceConfig::default());
    }

    #[test]
    fn record_limit_is_respected() {
        let g = rmat(RmatConfig::new(8, 3000, 2));
        let cfg = TraceConfig {
            record_limit: 10_000,
            ..TraceConfig::default()
        };
        let out = generate_trace(Framework::Gpop, App::Pr, &g, &cfg);
        assert!(out.trace.records.len() <= 10_000);
    }

    #[test]
    fn traces_are_deterministic() {
        let g = rmat(RmatConfig::new(6, 400, 2));
        let cfg = TraceConfig {
            iterations: 2,
            ..TraceConfig::default()
        };
        let a = generate_trace(Framework::XStream, App::Pr, &g, &cfg);
        let b = generate_trace(Framework::XStream, App::Pr, &g, &cfg);
        assert_eq!(a.trace.records, b.trace.records);
    }

    #[test]
    fn page_jumps_are_wide_in_gpop_scatter() {
        // Figure 3: GPOP shows frequent wide page jumps. Verify the scatter
        // phase of PR on an R-MAT graph jumps across many distinct pages.
        let g = rmat(RmatConfig::new(9, 4000, 2));
        let cfg = TraceConfig {
            iterations: 1,
            ..TraceConfig::default()
        };
        let out = generate_trace(Framework::Gpop, App::Pr, &g, &cfg);
        let pages: Vec<u64> = out
            .trace
            .records
            .iter()
            .filter(|r| r.phase == crate::gpop::PHASE_SCATTER)
            .map(|r| r.page())
            .collect();
        let distinct: std::collections::HashSet<u64> = pages.iter().copied().collect();
        assert!(distinct.len() > 20, "only {} pages", distinct.len());
        let jumps = pages
            .windows(2)
            .filter(|w| (w[1] as i64 - w[0] as i64).unsigned_abs() > 4)
            .count();
        assert!(
            jumps as f64 > 0.05 * pages.len() as f64,
            "too few wide jumps: {jumps}/{}",
            pages.len()
        );
    }
}
