//! X-Stream-like edge-centric streaming framework (Roy, Mihailovic,
//! Zwaenepoel, SOSP 2013), instrumented to emit a memory trace.
//!
//! X-Stream never builds per-vertex adjacency indexes; it *streams the edge
//! list*. Each iteration:
//!
//! * **Scatter** — stream every edge `(src, dst, w)` sequentially, look up
//!   `values[src]` (random access), and if `src` is active append an update
//!   `(dst, msg)` to the per-core update buffer (sequential write);
//! * **Gather** — stream the update buffers sequentially, fold each update
//!   into `acc[dst]` (random access), then run the apply loop.
//!
//! The signature pattern is long sequential runs punctuated by random vertex
//! lookups — different from GPOP's bin-partitioned locality, which is why
//! the paper's per-framework models differ.

use crate::apps::VertexProgram;
use crate::trace::{AddressSpace, PcMap, TraceBuilder};
use mpgraph_graph::{Csr, VertexId};

const FRAMEWORK_ID: u8 = 1;

pub const PHASE_SCATTER: u8 = 0;
pub const PHASE_GATHER: u8 = 1;
pub const NUM_PHASES: u8 = 2;
/// Runtime code page (streaming-buffer management); see the GPOP module
/// for why these impulse bursts exist.
pub const RUNTIME_CODE: u8 = 14;
/// Edges streamed between buffer-management bursts.
const CHUNK: usize = 4096;

mod site {
    pub const SC_EDGE: u32 = 0;
    pub const SC_ACTIVE: u32 = 1;
    pub const SC_VALUE: u32 = 2;
    pub const SC_UPD_WRITE: u32 = 3;
    pub const GA_UPD_READ: u32 = 0;
    pub const GA_ACC_READ: u32 = 1;
    pub const GA_ACC_WRITE: u32 = 2;
    pub const GA_APPLY_ACC: u32 = 3;
    pub const GA_APPLY_VAL_R: u32 = 4;
    pub const GA_APPLY_VAL_W: u32 = 5;
    pub const GA_ACTIVE_W: u32 = 6;
}

/// Runs `prog` over `g` under the X-Stream model. Returns final values.
pub fn run(
    g: &Csr,
    prog: &dyn VertexProgram,
    iterations: usize,
    tb: &mut TraceBuilder,
) -> Vec<f32> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let num_cores = tb.num_cores();
    let pcs = PcMap::new(FRAMEWORK_ID);

    let mut space = AddressSpace::new();
    let values_base = space.alloc("values", n, 4);
    // X-Stream stores edges as (src, dst, weight) tuples, 12 bytes each.
    let edges_base = space.alloc("edges", m, 12);
    let acc_base = space.alloc("acc", n, 4);
    let active_base = space.alloc("active", n, 1);
    let runtime_base = space.alloc("runtime", num_cores * 64, 64);
    // One update segment per core; capacity = worst case all edges.
    let upd_base: Vec<u64> = (0..num_cores)
        .map(|c| space.alloc(&format!("updates{c}"), m.max(1), 8))
        .collect();

    // Flatten edges once; this mirrors X-Stream's on-disk edge array.
    let mut flat_edges: Vec<(VertexId, VertexId, f32)> = Vec::with_capacity(m);
    for v in 0..n as VertexId {
        for (u, w) in g.neighbors_weighted(v) {
            flat_edges.push((v, u, w));
        }
    }
    // Out-degree per vertex, needed by scatter_value (PR divides by degree).
    let degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();

    let mut values = prog.init(n);
    let mut active = prog.initial_active(n);
    let edges_per_core = m.div_ceil(num_cores.max(1));

    for _iter in 0..iterations {
        if tb.is_full() {
            break;
        }
        if !prog.always_active() && !active.iter().any(|&a| a) {
            values = prog.init(n);
            active = prog.initial_active(n);
        }
        tb.begin_iteration();

        // -------------------------- Scatter --------------------------
        let mut updates: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); num_cores];
        let mut rec = tb.phase(PHASE_SCATTER);
        for core in 0..num_cores {
            let lo = (core * edges_per_core).min(m);
            let hi = ((core + 1) * edges_per_core).min(m);
            for (i, &(src, dst, w)) in flat_edges[lo..hi].iter().enumerate() {
                let e = lo + i;
                if i % CHUNK == 0 {
                    // Stream-buffer management burst at each chunk boundary.
                    for j in 0..24u64 {
                        rec.log(
                            core,
                            pcs.pc(RUNTIME_CODE, (j % 6) as u32),
                            runtime_base + (core as u64 * 64 + j % 64) * 64,
                            false,
                        );
                    }
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_EDGE),
                    edges_base + e as u64 * 12,
                    false,
                );
                // active[src]: src was just loaded from the edge tuple.
                rec.log_dep(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_ACTIVE),
                    active_base + src as u64,
                    false,
                );
                if !(active[src as usize] || prog.always_active()) {
                    continue;
                }
                rec.log_dep(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_VALUE),
                    values_base + src as u64 * 4,
                    false,
                );
                if let Some(msg) = prog.scatter_value(values[src as usize], degree[src as usize], w)
                {
                    rec.log(
                        core,
                        pcs.pc(PHASE_SCATTER, site::SC_UPD_WRITE),
                        upd_base[core] + updates[core].len() as u64 * 8,
                        true,
                    );
                    updates[core].push((dst, msg));
                }
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // -------------------------- Gather ---------------------------
        let mut acc = vec![prog.identity(); n];
        let mut got = vec![false; n];
        let mut rec = tb.phase(PHASE_GATHER);
        // Each core streams the buffer it produced (X-Stream's shuffle step
        // is folded in: updates stay core-local in shared memory).
        for core in 0..num_cores {
            for (k, &(dst, msg)) in updates[core].iter().enumerate() {
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_UPD_READ),
                    upd_base[core] + k as u64 * 8,
                    false,
                );
                // acc[dst]: dst was just loaded from the update entry.
                rec.log_dep(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACC_READ),
                    acc_base + dst as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACC_WRITE),
                    acc_base + dst as u64 * 4,
                    true,
                );
                acc[dst as usize] = prog.accumulate(acc[dst as usize], msg);
                got[dst as usize] = true;
            }
        }
        // Apply loop, vertices split across cores.
        let verts_per_core = n.div_ceil(num_cores.max(1));
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_APPLY_ACC),
                    acc_base + v as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_APPLY_VAL_R),
                    values_base + v as u64 * 4,
                    false,
                );
                let new = prog.apply(values[v], acc[v], got[v]);
                let changed = new != values[v] && !(new.is_nan() && values[v].is_nan());
                if changed || prog.always_active() {
                    rec.log(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_APPLY_VAL_W),
                        values_base + v as u64 * 4,
                        true,
                    );
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACTIVE_W),
                    active_base + v as u64,
                    true,
                );
                values[v] = new;
                active[v] = changed;
            }
        }
        tb.commit_phase(rec);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{self, App};
    use mpgraph_graph::{rmat, RmatConfig};

    fn run_app(app: App, g: &Csr, iters: usize) -> (Vec<f32>, crate::trace::Trace) {
        let prog = apps::program_for(app, g, 0).unwrap();
        let mut tb = TraceBuilder::new(NUM_PHASES, 4, 7, usize::MAX);
        let vals = run(g, prog.as_ref(), iters, &mut tb);
        (vals, tb.finish())
    }

    #[test]
    fn xstream_bfs_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 3));
        let (vals, _) = run_app(App::Bfs, &g, 40);
        assert_eq!(vals, apps::ref_bfs(&g, 0));
    }

    #[test]
    fn xstream_cc_matches_reference() {
        let g = rmat(RmatConfig::new(6, 300, 4)).symmetrize();
        let (vals, _) = run_app(App::Cc, &g, 60);
        assert_eq!(vals, apps::ref_cc(&g));
    }

    #[test]
    fn xstream_sssp_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 5));
        let (vals, _) = run_app(App::Sssp, &g, 60);
        assert_eq!(vals, apps::ref_sssp(&g, 0));
    }

    #[test]
    fn xstream_pagerank_close_to_reference() {
        let g = rmat(RmatConfig::new(6, 500, 6));
        let (vals, _) = run_app(App::Pr, &g, 15);
        let expect = apps::ref_pagerank(&g, 15);
        for (a, b) in vals.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn edge_reads_are_sequential_per_core() {
        let g = rmat(RmatConfig::new(6, 500, 7));
        let (_, t) = run_app(App::Pr, &g, 1);
        let pcs = PcMap::new(FRAMEWORK_ID);
        let edge_pc = pcs.pc(PHASE_SCATTER, site::SC_EDGE);
        for core in 0..4u8 {
            let addrs: Vec<u64> = t
                .records
                .iter()
                .filter(|r| r.pc == edge_pc && r.core == core)
                .map(|r| r.vaddr)
                .collect();
            assert!(!addrs.is_empty());
            assert!(
                addrs.windows(2).all(|w| w[0] < w[1]),
                "edge stream not sequential on core {core}"
            );
        }
    }

    #[test]
    fn phases_alternate() {
        let g = rmat(RmatConfig::new(6, 400, 8));
        let (_, t) = run_app(App::Pr, &g, 4);
        assert_eq!(t.transitions.len(), 7);
        assert_eq!(t.num_iterations(), 4);
    }
}
