//! Trace persistence: a compact binary format (24 bytes/record, ~4× denser
//! than JSON) plus JSON via serde for interoperability. Lets expensive
//! trace generation be done once and shared across experiment runs — the
//! role ChampSim's `.trace.xz` files play in the paper's workflow.

use crate::trace::{MemRecord, Trace};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes + format version for the binary container.
const MAGIC: &[u8; 8] = b"MPGTRC01";

/// Errors from the trace container format.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    BadMagic,
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
            TraceIoError::BadMagic => write!(f, "not an mpgraph trace file"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a trace in the binary container format.
pub fn write_binary<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&[trace.num_phases])?;
    write_u64(w, trace.records.len() as u64)?;
    write_u64(w, trace.transitions.len() as u64)?;
    write_u64(w, trace.iteration_starts.len() as u64)?;
    for &t in &trace.transitions {
        write_u64(w, t as u64)?;
    }
    for &t in &trace.iteration_starts {
        write_u64(w, t as u64)?;
    }
    for r in &trace.records {
        write_u64(w, r.pc)?;
        write_u64(w, r.vaddr)?;
        // Flags byte: bit0 write, bit1 dep; then core, phase, gap.
        let flags = (r.is_write as u8) | ((r.dep as u8) << 1);
        w.write_all(&[flags, r.core, r.phase, r.gap])?;
        // 4 bytes padding keeps records 24-byte aligned for mmap use.
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

/// Reads a trace from the binary container format.
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut one = [0u8; 1];
    r.read_exact(&mut one)?;
    let num_phases = one[0];
    let n_records = read_u64(r)? as usize;
    let n_transitions = read_u64(r)? as usize;
    let n_iters = read_u64(r)? as usize;
    // Sanity bounds before allocating.
    if n_records > 1 << 32 || n_transitions > n_records || n_iters > n_records + 1 {
        return Err(TraceIoError::Corrupt("implausible section sizes"));
    }
    let mut transitions = Vec::with_capacity(n_transitions);
    for _ in 0..n_transitions {
        transitions.push(read_u64(r)? as usize);
    }
    let mut iteration_starts = Vec::with_capacity(n_iters);
    for _ in 0..n_iters {
        iteration_starts.push(read_u64(r)? as usize);
    }
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let pc = read_u64(r)?;
        let vaddr = read_u64(r)?;
        let mut tail = [0u8; 8];
        r.read_exact(&mut tail)?;
        records.push(MemRecord {
            pc,
            vaddr,
            is_write: tail[0] & 1 != 0,
            dep: tail[0] & 2 != 0,
            core: tail[1],
            phase: tail[2],
            gap: tail[3],
        });
    }
    Ok(Trace {
        records,
        num_phases,
        transitions,
        iteration_starts,
    })
}

/// Saves a trace to `path` (binary container).
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    write_binary(trace, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Loads a trace from `path` (binary container).
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let f = std::fs::File::open(path)?;
    read_binary(&mut BufReader::new(f))
}

/// Saves a trace as pretty JSON (interoperability / inspection).
pub fn save_json<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let json = serde_json::to_string(trace).expect("trace serializes");
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a trace from JSON.
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|_| TraceIoError::Corrupt("json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{generate_trace, Framework, TraceConfig};
    use crate::App;
    use mpgraph_graph::{rmat, RmatConfig};

    fn sample_trace() -> Trace {
        let g = rmat(RmatConfig::new(6, 400, 3));
        generate_trace(
            Framework::Gpop,
            App::Pr,
            &g,
            &TraceConfig {
                iterations: 2,
                record_limit: 50_000,
                ..TraceConfig::default()
            },
        )
        .trace
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.records, t.records);
        assert_eq!(back.transitions, t.transitions);
        assert_eq!(back.iteration_starts, t.iteration_starts);
        assert_eq!(back.num_phases, t.num_phases);
    }

    #[test]
    fn binary_is_compact() {
        let t = sample_trace();
        let mut bin = Vec::new();
        write_binary(&t, &mut bin).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert!(bin.len() * 3 < json.len(), "{} vs {}", bin.len(), json.len());
    }

    #[test]
    fn rejects_wrong_magic() {
        let garbage = b"NOTATRACE_AT_ALL____".to_vec();
        match read_binary(&mut garbage.as_slice()) {
            Err(TraceIoError::BadMagic) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_implausible_sizes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(2);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // records
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary(&mut buf.as_slice()) {
            Err(TraceIoError::Corrupt(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("mpgraph_trace_io");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.mpgtrc");
        save(&t, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(back.records.len(), t.records.len());
        let pj = dir.join("t.json");
        save_json(&t, &pj).unwrap();
        let back_json = load_json(&pj).unwrap();
        assert_eq!(back_json.records, t.records);
        std::fs::remove_file(p).ok();
        std::fs::remove_file(pj).ok();
    }

    #[test]
    fn dep_and_write_flags_survive() {
        let mut t = sample_trace();
        // Force known flag combos on the first records.
        t.records[0].dep = true;
        t.records[0].is_write = false;
        t.records[1].dep = true;
        t.records[1].is_write = true;
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert!(back.records[0].dep && !back.records[0].is_write);
        assert!(back.records[1].dep && back.records[1].is_write);
    }
}
