//! Trace persistence: a compact binary format (24 bytes/record, ~4× denser
//! than JSON) plus JSON via serde for interoperability. Lets expensive
//! trace generation be done once and shared across experiment runs — the
//! role ChampSim's `.trace.xz` files play in the paper's workflow.

use crate::trace::{MemRecord, Trace};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes + format version for the binary container.
const MAGIC: &[u8; 8] = b"MPGTRC02";

/// Upper bound on `Vec` capacity reserved from header-declared counts. The
/// header is untrusted input: a corrupt length must cost at most this many
/// reserved elements (the vector still grows to the true size on demand),
/// never an allocation sized by the lie itself.
const MAX_TRUSTED_CAPACITY: usize = 1 << 20;

/// FNV-1a over every byte after the magic; stored as the file trailer so a
/// flipped byte anywhere in the body is detected at load.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Writer adapter that folds everything written into the running checksum.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: Fnv1a,
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter mirroring [`HashingWriter`].
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hash: Fnv1a,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// Errors from the trace container format.
#[derive(Debug)]
pub enum TraceIoError {
    Io(std::io::Error),
    BadMagic,
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "io error: {e}"),
            TraceIoError::BadMagic => write!(f, "not an mpgraph trace file"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a trace in the binary container format.
pub fn write_binary<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    let mut hw = HashingWriter {
        inner: w,
        hash: Fnv1a::new(),
    };
    let w = &mut hw;
    w.write_all(&[trace.num_phases])?;
    write_u64(w, trace.records.len() as u64)?;
    write_u64(w, trace.transitions.len() as u64)?;
    write_u64(w, trace.iteration_starts.len() as u64)?;
    for &t in &trace.transitions {
        write_u64(w, t as u64)?;
    }
    for &t in &trace.iteration_starts {
        write_u64(w, t as u64)?;
    }
    for r in &trace.records {
        write_u64(w, r.pc)?;
        write_u64(w, r.vaddr)?;
        // Flags byte: bit0 write, bit1 dep; then core, phase, gap.
        let flags = (r.is_write as u8) | ((r.dep as u8) << 1);
        w.write_all(&[flags, r.core, r.phase, r.gap])?;
        // 4 bytes padding keeps records 24-byte aligned for mmap use.
        w.write_all(&[0u8; 4])?;
    }
    // Trailer: FNV-1a of everything after the magic.
    let checksum = hw.hash.0;
    write_u64(hw.inner, checksum)?;
    Ok(())
}

/// Reads a trace from the binary container format.
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut hr = HashingReader {
        inner: r,
        hash: Fnv1a::new(),
    };
    let r = &mut hr;
    let mut one = [0u8; 1];
    r.read_exact(&mut one)?;
    let num_phases = one[0];
    let n_records = read_u64(r)? as usize;
    let n_transitions = read_u64(r)? as usize;
    let n_iters = read_u64(r)? as usize;
    // Sanity bounds before allocating. These reject the obviously absurd;
    // the capped `with_capacity` below is what makes a lying-but-plausible
    // length cost a bounded reservation plus an EOF error, never an OOM.
    if n_records > 1 << 32 || n_transitions > n_records || n_iters > n_records + 1 {
        return Err(TraceIoError::Corrupt("implausible section sizes"));
    }
    let mut transitions = Vec::with_capacity(n_transitions.min(MAX_TRUSTED_CAPACITY));
    for _ in 0..n_transitions {
        transitions.push(read_u64(r)? as usize);
    }
    let mut iteration_starts = Vec::with_capacity(n_iters.min(MAX_TRUSTED_CAPACITY));
    for _ in 0..n_iters {
        iteration_starts.push(read_u64(r)? as usize);
    }
    let mut records = Vec::with_capacity(n_records.min(MAX_TRUSTED_CAPACITY));
    for _ in 0..n_records {
        let pc = read_u64(r)?;
        let vaddr = read_u64(r)?;
        let mut tail = [0u8; 8];
        r.read_exact(&mut tail)?;
        records.push(MemRecord {
            pc,
            vaddr,
            is_write: tail[0] & 1 != 0,
            dep: tail[0] & 2 != 0,
            core: tail[1],
            phase: tail[2],
            gap: tail[3],
        });
    }
    // Verify the trailer before trusting any of it.
    let computed = hr.hash.0;
    let stored = read_u64(hr.inner)?;
    if stored != computed {
        return Err(TraceIoError::Corrupt("checksum mismatch"));
    }
    Ok(Trace {
        records,
        num_phases,
        transitions,
        iteration_starts,
    })
}

/// Saves a trace to `path` (binary container).
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    write_binary(trace, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Loads a trace from `path` (binary container).
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let f = std::fs::File::open(path)?;
    read_binary(&mut BufReader::new(f))
}

/// Saves a trace as pretty JSON (interoperability / inspection).
pub fn save_json<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceIoError> {
    let json = serde_json::to_string(trace).expect("trace serializes");
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads a trace from JSON.
pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Trace, TraceIoError> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|_| TraceIoError::Corrupt("json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{generate_trace, Framework, TraceConfig};
    use crate::App;
    use mpgraph_graph::{rmat, RmatConfig};

    fn sample_trace() -> Trace {
        let g = rmat(RmatConfig::new(6, 400, 3));
        generate_trace(
            Framework::Gpop,
            App::Pr,
            &g,
            &TraceConfig {
                iterations: 2,
                record_limit: 50_000,
                ..TraceConfig::default()
            },
        )
        .trace
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.records, t.records);
        assert_eq!(back.transitions, t.transitions);
        assert_eq!(back.iteration_starts, t.iteration_starts);
        assert_eq!(back.num_phases, t.num_phases);
    }

    #[test]
    fn binary_is_compact() {
        let t = sample_trace();
        let mut bin = Vec::new();
        write_binary(&t, &mut bin).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert!(
            bin.len() * 3 < json.len(),
            "{} vs {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn rejects_wrong_magic() {
        let garbage = b"NOTATRACE_AT_ALL____".to_vec();
        match read_binary(&mut garbage.as_slice()) {
            Err(TraceIoError::BadMagic) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_binary(&mut buf.as_slice()).is_err());
    }

    fn tiny_trace() -> Trace {
        Trace {
            records: (0..300u64)
                .map(|i| MemRecord {
                    pc: 0x400000 + i,
                    vaddr: 0x1000 + i * 64,
                    core: (i % 4) as u8,
                    is_write: i % 7 == 0,
                    phase: (i % 3) as u8,
                    gap: 2,
                    dep: i % 5 == 0,
                })
                .collect(),
            num_phases: 3,
            transitions: vec![100, 200],
            iteration_starts: vec![0, 150],
        }
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let t = tiny_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // Every sampled single-byte flip — header, counts, payload, or the
        // checksum trailer itself — must surface as an error, never as
        // silently different data and never as a panic or huge allocation.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                read_binary(&mut bad.as_slice()).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn lying_record_count_fails_fast_without_huge_allocation() {
        // A header claiming 2^31 records (plausible per the sanity bound)
        // over an empty body must fail with EOF after a bounded capacity
        // reservation — not attempt a ~50 GB Vec.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(1);
        buf.extend_from_slice(&(1u64 << 31).to_le_bytes()); // records
        buf.extend_from_slice(&0u64.to_le_bytes()); // transitions
        buf.extend_from_slice(&0u64.to_le_bytes()); // iteration starts
        assert!(read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_implausible_sizes() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(2);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // records
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_binary(&mut buf.as_slice()) {
            Err(TraceIoError::Corrupt(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("mpgraph_trace_io");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.mpgtrc");
        save(&t, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(back.records.len(), t.records.len());
        let pj = dir.join("t.json");
        save_json(&t, &pj).unwrap();
        let back_json = load_json(&pj).unwrap();
        assert_eq!(back_json.records, t.records);
        std::fs::remove_file(p).ok();
        std::fs::remove_file(pj).ok();
    }

    #[test]
    fn dep_and_write_flags_survive() {
        let mut t = sample_trace();
        // Force known flag combos on the first records.
        t.records[0].dep = true;
        t.records[0].is_write = false;
        t.records[1].dep = true;
        t.records[1].is_write = true;
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert!(back.records[0].dep && !back.records[0].is_write);
        assert!(back.records[1].dep && back.records[1].is_write);
    }
}
