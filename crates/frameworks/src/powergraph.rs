//! PowerGraph-like Gather-Apply-Scatter framework (Gonzalez et al., OSDI
//! 2012), instrumented to emit a memory trace. Three barrier-synchronized
//! phases per iteration (Table 1: N = 3):
//!
//! * **Gather** — every active vertex pulls messages from its in-neighbors
//!   (random reads of neighbor values through the transpose CSR);
//! * **Apply** — sequential sweep writing the new vertex values;
//! * **Scatter** — every changed vertex touches its out-neighbors to signal
//!   activation (random writes to the frontier flags).
//!
//! Triangle counting (TC) is special-cased: its gather intersects the sorted
//! adjacency lists of each vertex and its neighbors — the two-pointer walk
//! over the edge array that makes TC's access pattern unique among the apps.

use crate::apps::VertexProgram;
use crate::trace::{AddressSpace, PcMap, TraceBuilder};
use mpgraph_graph::{Csr, VertexId};

const FRAMEWORK_ID: u8 = 2;

pub const PHASE_GATHER: u8 = 0;
pub const PHASE_APPLY: u8 = 1;
pub const PHASE_SCATTER: u8 = 2;
pub const NUM_PHASES: u8 = 3;
/// Runtime code page (vertex-range scheduling); see the GPOP module for
/// why these impulse bursts exist.
pub const RUNTIME_CODE: u8 = 14;
/// Vertices processed between scheduling bursts.
const SCHED_CHUNK: usize = 2048;

mod site {
    pub const GA_ACTIVE: u32 = 0;
    pub const GA_IN_OFFSET: u32 = 1;
    pub const GA_IN_EDGE: u32 = 2;
    pub const GA_NBR_VALUE: u32 = 3;
    pub const GA_ACC_WRITE: u32 = 4;
    // TC-specific gather sites.
    pub const GA_TC_LIST_A: u32 = 5;
    pub const GA_TC_LIST_B: u32 = 6;
    pub const AP_ACC: u32 = 0;
    pub const AP_VAL_R: u32 = 1;
    pub const AP_VAL_W: u32 = 2;
    pub const SC_OUT_OFFSET: u32 = 0;
    pub const SC_OUT_EDGE: u32 = 1;
    pub const SC_ACTIVE_W: u32 = 2;
}

struct Layout {
    values: u64,
    in_offsets: u64,
    in_edges: u64,
    out_offsets: u64,
    out_edges: u64,
    acc: u64,
    active: u64,
    runtime: u64,
}

fn layout(n: usize, m_in: usize, m_out: usize) -> Layout {
    let mut space = AddressSpace::new();
    Layout {
        values: space.alloc("values", n, 4),
        in_offsets: space.alloc("in_offsets", n + 1, 8),
        in_edges: space.alloc("in_edges", m_in, 4),
        out_offsets: space.alloc("out_offsets", n + 1, 8),
        out_edges: space.alloc("out_edges", m_out, 4),
        acc: space.alloc("acc", n, 4),
        active: space.alloc("active", n, 1),
        runtime: space.alloc("runtime", 256, 64),
    }
}

/// Runs `prog` over `g` under the GAS model. Returns final values.
pub fn run(
    g: &Csr,
    prog: &dyn VertexProgram,
    iterations: usize,
    tb: &mut TraceBuilder,
) -> Vec<f32> {
    let n = g.num_vertices();
    let t = g.transpose();
    let lay = layout(n, t.num_edges(), g.num_edges());
    let pcs = PcMap::new(FRAMEWORK_ID);
    let num_cores = tb.num_cores();
    let verts_per_core = n.div_ceil(num_cores.max(1));

    let mut values = prog.init(n);
    let mut active = prog.initial_active(n);

    for _iter in 0..iterations {
        if tb.is_full() {
            break;
        }
        if !prog.always_active() && !active.iter().any(|&a| a) {
            values = prog.init(n);
            active = prog.initial_active(n);
        }
        tb.begin_iteration();

        // -------------------------- Gather ---------------------------
        // Pull-style: acc[v] folds messages computed from in-neighbors.
        let mut acc = vec![prog.identity(); n];
        let mut got = vec![false; n];
        let mut rec = tb.phase(PHASE_GATHER);
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                if (v - lo).is_multiple_of(SCHED_CHUNK) {
                    for j in 0..24u64 {
                        rec.log(
                            core,
                            pcs.pc(RUNTIME_CODE, (j % 6) as u32),
                            lay.runtime + (j % 256) * 64,
                            false,
                        );
                    }
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_ACTIVE),
                    lay.active + v as u64,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_IN_OFFSET),
                    lay.in_offsets + v as u64 * 8,
                    false,
                );
                let mut any = false;
                for (k, (u, w)) in t.neighbors_weighted(v as VertexId).enumerate() {
                    let e = t.edge_range(v as VertexId).start + k;
                    rec.log(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_IN_EDGE),
                        lay.in_edges + e as u64 * 4,
                        false,
                    );
                    // Only active in-neighbors contribute (mirrors message
                    // delivery in push-style engines).
                    if !(active[u as usize] || prog.always_active()) {
                        continue;
                    }
                    // values[u]: u was just loaded from the in-edge array —
                    // the pull-model indirection.
                    rec.log_dep(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_NBR_VALUE),
                        lay.values + u as u64 * 4,
                        false,
                    );
                    if let Some(msg) = prog.scatter_value(values[u as usize], g.degree(u), w) {
                        acc[v] = prog.accumulate(acc[v], msg);
                        any = true;
                    }
                }
                if any {
                    rec.log(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_ACC_WRITE),
                        lay.acc + v as u64 * 4,
                        true,
                    );
                    got[v] = true;
                }
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // -------------------------- Apply ----------------------------
        let mut changed_set = vec![false; n];
        let mut rec = tb.phase(PHASE_APPLY);
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_APPLY, site::AP_ACC),
                    lay.acc + v as u64 * 4,
                    false,
                );
                rec.log(
                    core,
                    pcs.pc(PHASE_APPLY, site::AP_VAL_R),
                    lay.values + v as u64 * 4,
                    false,
                );
                let new = prog.apply(values[v], acc[v], got[v]);
                let changed = new != values[v] && !(new.is_nan() && values[v].is_nan());
                if changed || prog.always_active() {
                    rec.log(
                        core,
                        pcs.pc(PHASE_APPLY, site::AP_VAL_W),
                        lay.values + v as u64 * 4,
                        true,
                    );
                }
                values[v] = new;
                changed_set[v] = changed;
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // -------------------------- Scatter --------------------------
        let mut rec = tb.phase(PHASE_SCATTER);
        let mut next_active = vec![false; n];
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for (v, &changed) in changed_set.iter().enumerate().take(hi).skip(lo) {
                if !(changed || prog.always_active()) {
                    continue;
                }
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_OUT_OFFSET),
                    lay.out_offsets + v as u64 * 8,
                    false,
                );
                for (k, &u) in g.neighbors(v as VertexId).iter().enumerate() {
                    let e = g.edge_range(v as VertexId).start + k;
                    rec.log(
                        core,
                        pcs.pc(PHASE_SCATTER, site::SC_OUT_EDGE),
                        lay.out_edges + e as u64 * 4,
                        false,
                    );
                    rec.log(
                        core,
                        pcs.pc(PHASE_SCATTER, site::SC_ACTIVE_W),
                        lay.active + u as u64,
                        true,
                    );
                    next_active[u as usize] = true;
                }
            }
        }
        tb.commit_phase(rec);
        let _ = next_active; // notification flags exist for their memory trace
                             // Gather pulls messages from in-neighbors that *changed* this round,
                             // so the changed set is the next frontier (PR stays always-active).
        active = changed_set;
    }
    values
}

/// Triangle counting under the GAS model. Returns per-vertex triangle
/// counts (each triangle counted at all three corners; total = sum / 3).
pub fn run_tc(g_undirected: &Csr, iterations: usize, tb: &mut TraceBuilder) -> Vec<f32> {
    let g = g_undirected;
    let n = g.num_vertices();
    let lay = layout(n, g.num_edges(), g.num_edges());
    let pcs = PcMap::new(FRAMEWORK_ID);
    let num_cores = tb.num_cores();
    let verts_per_core = n.div_ceil(num_cores.max(1));
    let mut counts = vec![0.0f32; n];

    for _iter in 0..iterations {
        if tb.is_full() {
            break;
        }
        tb.begin_iteration();

        // Gather: for each vertex v, for each neighbor u > v, intersect
        // adjacency lists with the classic two-pointer walk.
        let mut new_counts = vec![0.0f32; n];
        let mut rec = tb.phase(PHASE_GATHER);
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_GATHER, site::GA_IN_OFFSET),
                    lay.out_offsets + v as u64 * 8,
                    false,
                );
                let va = g.neighbors(v as VertexId);
                let v_lo = g.edge_range(v as VertexId).start;
                for (k, &u) in va.iter().enumerate() {
                    rec.log(
                        core,
                        pcs.pc(PHASE_GATHER, site::GA_IN_EDGE),
                        lay.out_edges + (v_lo + k) as u64 * 4,
                        false,
                    );
                    if u <= v as VertexId {
                        continue;
                    }
                    let ub = g.neighbors(u);
                    let u_lo = g.edge_range(u).start;
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < va.len() && j < ub.len() {
                        rec.log(
                            core,
                            pcs.pc(PHASE_GATHER, site::GA_TC_LIST_A),
                            lay.out_edges + (v_lo + i) as u64 * 4,
                            false,
                        );
                        rec.log(
                            core,
                            pcs.pc(PHASE_GATHER, site::GA_TC_LIST_B),
                            lay.out_edges + (u_lo + j) as u64 * 4,
                            false,
                        );
                        match va[i].cmp(&ub[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                if va[i] > u {
                                    new_counts[v] += 1.0;
                                    new_counts[u as usize] += 1.0;
                                    new_counts[va[i] as usize] += 1.0;
                                }
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                }
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // Apply: write the counts.
        let mut rec = tb.phase(PHASE_APPLY);
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_APPLY, site::AP_VAL_W),
                    lay.values + v as u64 * 4,
                    true,
                );
                counts[v] = new_counts[v];
            }
        }
        tb.commit_phase(rec);
        if tb.is_full() {
            break;
        }

        // Scatter: light bookkeeping sweep re-arming the vertices (TC is
        // re-executed per iteration by the benchmarking harness).
        let mut rec = tb.phase(PHASE_SCATTER);
        for core in 0..num_cores {
            let lo = (core * verts_per_core).min(n);
            let hi = ((core + 1) * verts_per_core).min(n);
            for v in lo..hi {
                rec.log(
                    core,
                    pcs.pc(PHASE_SCATTER, site::SC_ACTIVE_W),
                    lay.active + v as u64,
                    true,
                );
            }
        }
        tb.commit_phase(rec);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{self, App};
    use mpgraph_graph::{rmat, RmatConfig};

    fn run_app(app: App, g: &Csr, iters: usize) -> (Vec<f32>, crate::trace::Trace) {
        let prog = apps::program_for(app, g, 0).unwrap();
        let mut tb = TraceBuilder::new(NUM_PHASES, 4, 7, usize::MAX);
        let vals = run(g, prog.as_ref(), iters, &mut tb);
        (vals, tb.finish())
    }

    #[test]
    fn powergraph_bfs_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 3));
        let (vals, _) = run_app(App::Bfs, &g, 40);
        assert_eq!(vals, apps::ref_bfs(&g, 0));
    }

    #[test]
    fn powergraph_cc_matches_reference() {
        let g = rmat(RmatConfig::new(6, 300, 4)).symmetrize();
        let (vals, _) = run_app(App::Cc, &g, 60);
        assert_eq!(vals, apps::ref_cc(&g));
    }

    #[test]
    fn powergraph_sssp_matches_reference() {
        let g = rmat(RmatConfig::new(7, 600, 5));
        let (vals, _) = run_app(App::Sssp, &g, 60);
        assert_eq!(vals, apps::ref_sssp(&g, 0));
    }

    #[test]
    fn powergraph_pagerank_close_to_reference() {
        let g = rmat(RmatConfig::new(6, 500, 6));
        let (vals, _) = run_app(App::Pr, &g, 15);
        let expect = apps::ref_pagerank(&g, 15);
        for (a, b) in vals.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn tc_counts_match_reference() {
        let g = rmat(RmatConfig::new(6, 500, 12)).symmetrize();
        let mut tb = TraceBuilder::new(NUM_PHASES, 4, 7, usize::MAX);
        let counts = run_tc(&g, 2, &mut tb);
        let total: f32 = counts.iter().sum();
        assert_eq!((total / 3.0).round() as u64, apps::ref_triangles(&g));
    }

    #[test]
    fn three_phases_per_iteration() {
        let g = rmat(RmatConfig::new(6, 400, 8));
        let (_, t) = run_app(App::Pr, &g, 3);
        assert_eq!(t.num_phases, 3);
        // 3 iterations × 3 phases → 8 transitions.
        assert_eq!(t.transitions.len(), 8);
        // Phase sequence is 0,1,2,0,1,2,...
        let mut last = t.records[0].phase;
        assert_eq!(last, PHASE_GATHER);
        for &tr in &t.transitions {
            let p = t.records[tr].phase;
            assert_eq!(p, (last + 1) % 3);
            last = p;
        }
    }
}
