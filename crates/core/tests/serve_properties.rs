//! Property tests for the multi-stream prefetch service (DESIGN.md §14):
//! the bounded queue can never exceed its capacity under any push/pop
//! interleaving, the admission controller sheds in priority order
//! (speculative work before whole-stream degradation, never the access
//! path), and the overload ladder's recovery is hysteretic — it climbs
//! fast and descends only after a sustained calm streak.

use mpgraph_core::{BoundedQueue, PrefetchService, ServeConfig};
use mpgraph_sim::{LlcAccess, Prefetcher};
use proptest::prelude::*;

/// Deterministic stand-in for a trained model: fixed candidates, fixed
/// inference latency, honours injected stalls like the real prefetcher.
struct StubMl {
    latency: u64,
}

impl Prefetcher for StubMl {
    fn name(&self) -> String {
        "stub-ml".to_string()
    }

    fn on_access(&mut self, access: &LlcAccess, out: &mut Vec<u64>) {
        out.push(access.block + 1);
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn effective_latency(&mut self, injected_stall: u64) -> u64 {
        self.latency + injected_stall
    }
}

fn access(block: u64) -> LlcAccess {
    LlcAccess {
        pc: 0x400000,
        block,
        core: 0,
        is_write: false,
        hit: false,
        cycle: 0,
    }
}

fn service(cfg: ServeConfig, streams: u32) -> PrefetchService {
    let mut svc = PrefetchService::new(cfg);
    for s in 0..streams {
        svc.register_stream(s, Box::new(StubMl { latency: 0 }));
    }
    svc
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        num_shards: 2,
        queue_capacity: 4,
        batch_size: 4,
        batch_deadline: 1024,
        ml_item_cost: 10,
        fallback_item_cost: 1,
        escalate_pumps: 2,
        hysteresis_pumps: 3,
        stream_miss_window: 4,
        stream_trip_fraction: 0.5,
        stream_cooldown: 8,
        stream_recover_clean: 4,
        deadline_cycles: 100,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant: `len() <= capacity` after every operation, pushes into
    /// a full queue hand the item back unchanged, and the queue is FIFO.
    #[test]
    fn bounded_queue_never_exceeds_capacity(
        capacity in 1usize..16,
        // Values below 1000 push that value; values >= 1000 pop.
        ops in prop::collection::vec(0u64..1500, 1..200),
    ) {
        let mut q: BoundedQueue<u64> = BoundedQueue::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for op in ops {
            if op < 1000 {
                match q.push(op) {
                    Ok(()) => {
                        model.push_back(op);
                        prop_assert!(model.len() <= capacity);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, op, "rejected item was mangled");
                        prop_assert_eq!(model.len(), capacity, "refused while not full");
                    }
                }
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert!(q.len() <= q.capacity());
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_full(), model.len() == capacity);
        }
    }

    /// Invariants under an arbitrary open-loop drive with healthy (no
    /// stall) streams: the access path never blocks or loses work, and
    /// load shedding observes the priority ladder — speculative sheds
    /// require level >= 1 (at least one escalation), stream-wide
    /// degradation requires level 2 (at least two escalations), and
    /// healthy streams are never quarantined.
    #[test]
    fn shed_ordering_is_respected(
        streams in 1u32..6,
        bursts in prop::collection::vec(0usize..24, 1..60),
    ) {
        let mut svc = service(small_cfg(), streams);
        let mut out = Vec::new();
        let mut offered = 0u64;
        let mut block = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                svc.ingest(block as u32 % streams, &access(block), 0);
                offered += 1;
                block += 1;
            }
            svc.pump(&mut out);
        }
        svc.flush(&mut out);
        let m = svc.metrics();
        prop_assert_eq!(m.ingested, offered);
        prop_assert_eq!(out.len() as u64, offered, "work lost or blocked");
        if m.shed_speculative > 0 {
            prop_assert!(m.escalations >= 1, "shed speculative work at level 0");
        }
        if m.degraded_accesses > 0 {
            prop_assert!(
                m.escalations >= 2,
                "degraded a healthy stream before reaching level 2"
            );
        }
        prop_assert_eq!(m.quarantines, 0, "quarantined a healthy stream");
        prop_assert!(m.deescalations <= m.escalations);
        for s in 0..streams {
            prop_assert!(!svc.is_quarantined(s));
        }
    }

    /// Recovery hysteresis: once traffic stops, an escalated ladder must
    /// hold its level for at least `hysteresis_pumps` calm pumps per step
    /// down, and must eventually return all the way to level 0.
    #[test]
    fn recovery_hysteresis_holds(
        extra_calm in 0u64..4,
        overdrive in 30usize..120,
    ) {
        let cfg = small_cfg();
        let mut svc = service(cfg, 2);
        let mut out = Vec::new();
        // Saturate until the ladder escalates: far more offered work per
        // pump than one batch drains. (Driving a *fixed* number of pumps
        // would race the ladder's own shed-then-recover oscillation — at
        // level 1 sheds empty the queues, which cools the ladder back
        // down, so we stop the moment we observe an escalated level.)
        let mut block = 0u64;
        let mut pumps = 0usize;
        while svc.overload_level() == 0 && pumps < overdrive {
            for _ in 0..12 {
                svc.ingest(block as u32 % 2, &access(block), 0);
                block += 1;
            }
            svc.pump(&mut out);
            pumps += 1;
        }
        prop_assert!(svc.overload_level() >= 1, "overdrive never escalated");
        // Drain whatever is still queued so the ladder sees calm queues.
        while svc.queued() > 0 {
            svc.pump(&mut out);
        }
        let start = svc.overload_level() as u64;
        let mut calm_pumps = 0u64;
        while svc.overload_level() > 0 {
            svc.pump(&mut out);
            calm_pumps += 1;
            prop_assert!(
                calm_pumps <= (start + extra_calm + 1) * (cfg.hysteresis_pumps as u64 + 1),
                "ladder stuck above level 0 after {} calm pumps",
                calm_pumps
            );
        }
        // Each step down demands a full hysteresis streak and the streak
        // resets on descent. The first descent may ride a streak begun
        // during the drain loop, so the bound counts the remaining steps.
        prop_assert!(
            calm_pumps >= start.saturating_sub(1) * cfg.hysteresis_pumps as u64,
            "descended {} levels in only {} calm pumps (hysteresis {})",
            start,
            calm_pumps,
            cfg.hysteresis_pumps
        );
        let m = svc.metrics();
        prop_assert_eq!(m.overload_level, 0);
        prop_assert_eq!(m.deescalations, m.escalations);
    }
}
