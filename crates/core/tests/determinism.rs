//! Determinism of the parallel AMMA-PS training fan-out: two runs with the
//! same seed must produce byte-identical weights, regardless of how the
//! per-phase model jobs were scheduled across threads.

use mpgraph_core::{
    AmmaConfig, DeltaPredictor, DeltaPredictorConfig, PageHead, PagePredictor, PagePredictorConfig,
    Variant,
};
use mpgraph_frameworks::MemRecord;
use mpgraph_prefetchers::TrainCfg;

fn rec(vaddr: u64, pc: u64, phase: u8, core: u8) -> MemRecord {
    MemRecord {
        pc,
        vaddr,
        core,
        is_write: false,
        phase,
        gap: 1,
        dep: false,
    }
}

/// Three-phase trace with distinct stride/page behaviour per phase, spread
/// over two cores so the page predictor exercises its per-core streams.
fn trace() -> Vec<MemRecord> {
    let mut v = Vec::new();
    for rep in 0..2 {
        let mut a = (4 + rep) * 4096u64;
        for i in 0..200 {
            v.push(rec(a, 0x400000 + (i % 3) * 4, 0, (i % 2) as u8));
            a += 64;
        }
        for i in 0..200 {
            let page = [40u64, 80, 120][i % 3];
            v.push(rec(
                page * 4096 + (i % 60) as u64 * 64,
                0x401000,
                1,
                (i % 2) as u8,
            ));
        }
        let mut b = 1u64 << 26;
        for i in 0..200 {
            v.push(rec(b, 0x402000, 2, (i % 2) as u8));
            b += 4 * 64;
        }
    }
    v
}

fn amma() -> AmmaConfig {
    AmmaConfig {
        history: 5,
        attn_dim: 8,
        fusion_dim: 16,
        layers: 1,
        heads: 2,
    }
}

fn tc() -> TrainCfg {
    TrainCfg {
        history: 5,
        max_samples: 200,
        epochs: 2,
        lr: 4e-3,
        seed: 77,
    }
}

#[test]
fn parallel_amma_ps_delta_training_is_byte_identical() {
    let tr = trace();
    let cfg = DeltaPredictorConfig {
        amma: amma(),
        segments: 6,
        delta_range: 15,
        look_forward: 8,
        threshold: 0.5,
    };
    let a = DeltaPredictor::train(&tr, 3, Variant::AmmaPs, cfg, &tc());
    let b = DeltaPredictor::train(&tr, 3, Variant::AmmaPs, cfg, &tc());
    assert_eq!(
        a.final_loss.to_bits(),
        b.final_loss.to_bits(),
        "final loss diverged between same-seed runs"
    );
    assert_eq!(
        a.weight_bytes(),
        b.weight_bytes(),
        "weights diverged between same-seed runs"
    );
}

#[test]
fn parallel_amma_ps_page_training_is_byte_identical() {
    let tr = trace();
    for head in [PageHead::Softmax, PageHead::BinaryEncoded] {
        let cfg = PagePredictorConfig {
            amma: amma(),
            page_vocab: 64,
            embed_dim: 8,
            head,
        };
        let a = PagePredictor::train(&tr, 3, Variant::AmmaPs, cfg, &tc());
        let b = PagePredictor::train(&tr, 3, Variant::AmmaPs, cfg, &tc());
        assert_eq!(
            a.final_loss.to_bits(),
            b.final_loss.to_bits(),
            "{head:?}: final loss diverged between same-seed runs"
        );
        assert_eq!(
            a.weight_bytes(),
            b.weight_bytes(),
            "{head:?}: weights diverged between same-seed runs"
        );
    }
}

#[test]
fn different_seeds_actually_change_the_weights() {
    // Guard against the fingerprint accessor trivially returning equal
    // bytes: a different seed must produce different weights.
    let tr = trace();
    let cfg = DeltaPredictorConfig {
        amma: amma(),
        segments: 6,
        delta_range: 15,
        look_forward: 8,
        threshold: 0.5,
    };
    let a = DeltaPredictor::train(&tr, 3, Variant::AmmaPs, cfg, &tc());
    let b = DeltaPredictor::train(&tr, 3, Variant::AmmaPs, cfg, &TrainCfg { seed: 78, ..tc() });
    assert_ne!(a.weight_bytes(), b.weight_bytes());
}
