//! Property tests for the shard-merge discipline (DESIGN.md §15): the
//! snapshot-level histogram merge must conserve counts and commute, and
//! `MetricsSnapshot::merge_at` must conserve every counter, rebase the
//! windowed series onto the merged timeline, and be a pure function of
//! its inputs in fixed shard order — the invariant that makes
//! `mpgraph run --all --shards N` byte-identical at any worker count.

use mpgraph_core::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot};
use mpgraph_core::{PrefetchScoreboard, TraceConfig};
use mpgraph_sim::{PrefetchLane, PrefetchObserver, PrefetchTag};
use proptest::prelude::*;

fn hist(samples: &[u64]) -> HistogramSnapshot {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Builds a realistic shard snapshot by driving a traced scoreboard with
/// a deterministic event mix derived from `seed`.
fn shard_snapshot(seed: u64, events: u64) -> MetricsSnapshot {
    let mut sb = PrefetchScoreboard::with_trace(
        2,
        64,
        TraceConfig {
            ring_capacity: 64,
            window: 16,
            max_windows: 64,
            ..TraceConfig::default()
        },
    );
    let mut x = seed | 1;
    for i in 0..events {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sb.on_record(i);
        let tag = PrefetchTag {
            phase: (x % 2) as u8,
            lane: if x.is_multiple_of(3) {
                PrefetchLane::Spatial
            } else {
                PrefetchLane::Temporal
            },
        };
        sb.on_issued(x, tag, !x.is_multiple_of(5));
        match x % 4 {
            0 => sb.on_useful(x, false),
            1 => sb.on_useful(x, true),
            2 => sb.on_useless_evict(x),
            _ => {}
        }
        if x.is_multiple_of(6) {
            sb.on_demand_miss((x % 2) as u8);
        }
        sb.on_inference_latency(x % 500);
        sb.on_memory_latency(100 + x % 300);
    }
    sb.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_snapshot_merge_conserves_counts_and_commutes(
        a in prop::collection::vec(0u64..1_000_000, 0..120),
        b in prop::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let mut ab = hist(&a);
        ab.merge(&hist(&b));
        let mut ba = hist(&b);
        ba.merge(&hist(&a));
        prop_assert_eq!(ab.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(&ab, &ba);
        if let (Some(&lo), Some(&hi)) = (
            a.iter().chain(&b).min(),
            a.iter().chain(&b).max(),
        ) {
            prop_assert!(ab.min <= lo || ab.min == hist(&a).min.min(hist(&b).min));
            prop_assert!(ab.max >= hi.min(ab.max));
        }
        // Empty is the identity on both sides.
        let mut with_empty = hist(&a);
        with_empty.merge(&HistogramSnapshot::default());
        prop_assert_eq!(with_empty, hist(&a));
        let mut from_empty = HistogramSnapshot::default();
        from_empty.merge(&hist(&a));
        prop_assert_eq!(from_empty, hist(&a));
    }

    #[test]
    fn merge_at_conserves_counters_and_rebases_windows(
        seeds in prop::collection::vec(1u64..u64::MAX, 1..5),
        events in 32u64..256,
    ) {
        let shards: Vec<MetricsSnapshot> =
            seeds.iter().map(|&s| shard_snapshot(s, events)).collect();
        let mut merged = shards[0].clone();
        let mut offset = events;
        for s in &shards[1..] {
            merged.merge_at(s, offset);
            offset += events;
        }
        // Every additive counter is conserved.
        let sum = |f: fn(&MetricsSnapshot) -> u64| shards.iter().map(f).sum::<u64>();
        prop_assert_eq!(merged.issued, sum(|s| s.issued));
        prop_assert_eq!(merged.useful, sum(|s| s.useful));
        prop_assert_eq!(merged.late, sum(|s| s.late));
        prop_assert_eq!(merged.useless, sum(|s| s.useless));
        prop_assert_eq!(merged.demand_misses, sum(|s| s.demand_misses));
        prop_assert_eq!(merged.issued_untimely, sum(|s| s.issued_untimely));
        prop_assert_eq!(
            merged.inference_latency.count,
            sum(|s| s.inference_latency.count)
        );
        prop_assert_eq!(
            merged.memory_latency.count,
            sum(|s| s.memory_latency.count)
        );
        let phase_issued: u64 = merged.phases.iter().map(|p| p.issued).sum();
        prop_assert_eq!(phase_issued, merged.issued);
        let lane_issued: u64 = merged.lanes.iter().map(|l| l.issued).sum();
        prop_assert_eq!(lane_issued, merged.issued);
        // Windows concatenate in shard order: indices are contiguous from
        // 0 and each shard's spans land rebased inside its offset range.
        prop_assert_eq!(
            merged.windows.len(),
            shards.iter().map(|s| s.windows.len()).sum::<usize>()
        );
        for (i, w) in merged.windows.iter().enumerate() {
            prop_assert_eq!(w.index, i as u64);
            prop_assert!(w.start < w.end);
            prop_assert!(w.end <= events * shards.len() as u64);
        }
        for pair in merged.windows.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start || pair[0].start < pair[1].start);
        }
    }

    #[test]
    fn merge_at_is_deterministic_in_fixed_order(
        seeds in prop::collection::vec(1u64..u64::MAX, 2..5),
    ) {
        let shards: Vec<MetricsSnapshot> =
            seeds.iter().map(|&s| shard_snapshot(s, 96)).collect();
        let fold = || {
            let mut m = shards[0].clone();
            let mut off = 96u64;
            for s in &shards[1..] {
                m.merge_at(s, off);
                off += 96;
            }
            m.canonicalize_wall_clock();
            m.to_json_pretty().expect("serialize")
        };
        // Same inputs, same order → identical bytes, every time.
        prop_assert_eq!(fold(), fold());
    }
}
