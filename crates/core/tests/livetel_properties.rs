//! Property tests for live-telemetry interval derivation (DESIGN.md §18):
//! the delta/rate math in `mpgraph_core::livetel::derive_interval` must
//! hold for *any* monotone counter history, not just the ones the service
//! happens to produce —
//!
//! * every per-interval delta is non-negative;
//! * chaining intervals over a counter history telescopes: the deltas sum
//!   to the final cumulative snapshot, so an NDJSON consumer can checksum
//!   the stream;
//! * every derived rate is finite (and a well-defined 0) for zero-length
//!   intervals, empty intervals, and zero-GHz-adjacent clock configs.

use mpgraph_core::livetel::derive_interval;
use mpgraph_core::{ServeMetrics, StreamServeMetrics};
use proptest::prelude::*;

/// Builds a cumulative `ServeMetrics` history from per-step increments:
/// each step adds its increments onto the running totals, so every
/// counter is monotonically non-decreasing by construction — exactly the
/// contract the service's real counters obey.
fn history(steps: &[(u64, u64, u64, u64, u64, u64)]) -> Vec<ServeMetrics> {
    let mut cur = ServeMetrics::default();
    cur.per_stream = vec![StreamServeMetrics {
        id: 0,
        ..StreamServeMetrics::default()
    }];
    let mut out = vec![cur.clone()];
    for &(ing, ml, fb, shed, obs, miss) in steps {
        // Sheds are a subset of ingested accesses in the real service, so
        // the history counts them into `ingested` too — keeping derived
        // fractions in [0, 1] meaningful.
        cur.ingested += ing + shed;
        cur.ml_processed += ml;
        cur.fallback_processed += fb;
        cur.shed_queue_full += shed;
        cur.per_stream[0].ml_served += ml;
        cur.per_stream[0].fallback_served += fb;
        cur.per_stream[0].shed += shed;
        cur.per_stream[0].deadline_observations += obs;
        cur.per_stream[0].deadline_misses += miss.min(obs);
        out.push(cur.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deltas are non-negative and each interval's totals echo the
    /// cumulative snapshot it closed on.
    #[test]
    fn deltas_are_non_negative_for_any_monotone_history(
        steps in prop::collection::vec(
            (0u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50),
            1..20,
        ),
        span in 0u64..10_000,
    ) {
        let hist = history(&steps);
        for (i, pair) in hist.windows(2).enumerate() {
            let start = i as u64 * span;
            let iv = derive_interval(i as u64, &pair[0], &pair[1], start, start + span, 2.0);
            prop_assert!(iv.delta_ingested <= iv.total_ingested);
            prop_assert_eq!(iv.total_ingested, pair[1].ingested);
            prop_assert_eq!(iv.delta_ingested, pair[1].ingested - pair[0].ingested);
            prop_assert_eq!(
                iv.delta_ml_processed,
                pair[1].ml_processed - pair[0].ml_processed
            );
            prop_assert_eq!(iv.cycles, span);
            for s in &iv.per_stream {
                prop_assert!(s.delta_ml_served <= pair[1].per_stream[0].ml_served);
            }
        }
    }

    /// Telescoping: summing every interval's deltas reproduces the final
    /// cumulative snapshot exactly. This is the invariant the CI smoke
    /// job checks on real NDJSON output; here it holds for any history.
    #[test]
    fn interval_deltas_sum_to_the_final_cumulative_snapshot(
        steps in prop::collection::vec(
            (0u64..100, 0u64..100, 0u64..100, 0u64..100, 0u64..100, 0u64..100),
            1..25,
        ),
    ) {
        let hist = history(&steps);
        let mut sum_ingested = 0u64;
        let mut sum_ml = 0u64;
        let mut sum_fb = 0u64;
        let mut sum_shed = 0u64;
        let mut sum_obs = 0u64;
        let mut sum_miss = 0u64;
        for (i, pair) in hist.windows(2).enumerate() {
            let iv = derive_interval(
                i as u64,
                &pair[0],
                &pair[1],
                i as u64 * 100,
                (i as u64 + 1) * 100,
                2.0,
            );
            sum_ingested += iv.delta_ingested;
            sum_ml += iv.delta_ml_processed;
            sum_fb += iv.delta_fallback_processed;
            sum_shed += iv.delta_shed;
            sum_obs += iv.delta_deadline_observations;
            sum_miss += iv.delta_deadline_misses;
        }
        let last = hist.last().expect("non-empty history");
        prop_assert_eq!(sum_ingested, last.ingested);
        prop_assert_eq!(sum_ml, last.ml_processed);
        prop_assert_eq!(sum_fb, last.fallback_processed);
        prop_assert_eq!(
            sum_shed,
            last.shed_speculative + last.shed_queue_full + last.timeout_deferred
        );
        prop_assert_eq!(sum_obs, last.per_stream[0].deadline_observations);
        prop_assert_eq!(sum_miss, last.per_stream[0].deadline_misses);
    }

    /// Rates stay finite whatever the interval geometry: zero-length
    /// cycle spans, empty deltas, and tiny clock frequencies must all
    /// produce well-defined numbers, never NaN or infinity.
    #[test]
    fn rates_are_finite_even_at_zero_length_intervals(
        steps in prop::collection::vec(
            (0u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50),
            1..10,
        ),
        span in prop::sample::select(vec![0u64, 1, 100]),
        ghz_milli in 1u64..5_000,
    ) {
        let hist = history(&steps);
        let ghz = ghz_milli as f64 / 1000.0;
        for (i, pair) in hist.windows(2).enumerate() {
            let start = i as u64 * span;
            let iv = derive_interval(i as u64, &pair[0], &pair[1], start, start + span, ghz);
            for (name, rate) in [
                ("accesses_per_sec", iv.accesses_per_sec),
                ("shed_fraction", iv.shed_fraction),
                ("deadline_miss_fraction", iv.deadline_miss_fraction),
                ("ml_fraction", iv.ml_fraction),
            ] {
                prop_assert!(rate.is_finite(), "{} not finite: {}", name, rate);
                prop_assert!(rate >= 0.0, "{} negative: {}", name, rate);
            }
            if span == 0 {
                prop_assert_eq!(iv.accesses_per_sec, 0.0);
            }
            prop_assert!(iv.shed_fraction <= 1.0 || iv.delta_ingested == 0);
            prop_assert!(iv.deadline_miss_fraction <= 1.0);
            prop_assert!(iv.ml_fraction <= 1.0);
        }
    }

    /// Snapshots arriving out of order (a consumer replaying a truncated
    /// stream, or a reset service) must saturate to zero deltas rather
    /// than wrap.
    #[test]
    fn reversed_snapshots_saturate_instead_of_wrapping(
        steps in prop::collection::vec(
            (1u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50, 0u64..50),
            1..10,
        ),
    ) {
        let hist = history(&steps);
        let first = hist.first().expect("non-empty");
        let last = hist.last().expect("non-empty");
        let iv = derive_interval(0, last, first, 100, 50, 2.0);
        prop_assert_eq!(iv.delta_ingested, 0);
        prop_assert_eq!(iv.delta_ml_processed, 0);
        prop_assert_eq!(iv.delta_shed, 0);
        prop_assert_eq!(iv.cycles, 0);
        prop_assert_eq!(iv.accesses_per_sec, 0.0);
    }
}
