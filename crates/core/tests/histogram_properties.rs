//! Property tests for the latency histogram feeding the scoreboard:
//! percentiles must be monotone in `p`, and `merge` must behave like an
//! abelian-monoid operation (empty identity, commutativity) so that
//! per-thread histograms can be combined in any order.

use mpgraph_core::LatencyHistogram;
use proptest::prelude::*;

fn filled(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_is_monotone_in_p(
        samples in prop::collection::vec(0u64..1_000_000, 0..200),
        cuts in prop::collection::vec(0u64..101, 2..20),
    ) {
        let h = filled(&samples);
        let mut ps: Vec<f64> = cuts.iter().map(|c| *c as f64 / 100.0).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for pair in ps.windows(2) {
            prop_assert!(
                h.percentile(pair[0]) <= h.percentile(pair[1]),
                "p{} = {} > p{} = {}",
                pair[0], h.percentile(pair[0]), pair[1], h.percentile(pair[1]),
            );
        }
        // Percentiles of a non-empty histogram fall within [min, max].
        if let (Some(lo), Some(hi)) = (samples.iter().min(), samples.iter().max()) {
            prop_assert!(h.percentile(0.0) >= *lo.min(&h.percentile(1.0)));
            // Bucketed percentiles report bucket lower bounds, so they can
            // undershoot the true max but must never exceed it.
            prop_assert!(h.percentile(1.0) <= *hi);
        }
    }

    #[test]
    fn merge_with_empty_is_identity(
        samples in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let reference = filled(&samples);
        let mut merged = filled(&samples);
        merged.merge(&LatencyHistogram::new());
        prop_assert_eq!(merged.snapshot(), reference.snapshot());

        // And absorbing into an empty histogram reproduces the original.
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&reference);
        prop_assert_eq!(from_empty.snapshot(), reference.snapshot());
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..120),
        b in prop::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let mut ab = filled(&a);
        ab.merge(&filled(&b));
        let mut ba = filled(&b);
        ba.merge(&filled(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }
}
