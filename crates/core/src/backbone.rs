//! Unified sequence-model backbone used by the Table 6/7 comparisons: the
//! same predictor heads can run on an LSTM (the Hashemi-style baseline row),
//! a vanilla attention stack (the TransFetch-style row), or AMMA — so the
//! only difference measured is exactly what the paper varies.

use crate::amma::{Amma, AmmaConfig, ModalInput};
use mpgraph_ml::arena::ScratchArena;
use mpgraph_ml::layers::{Linear, Module, Param};
use mpgraph_ml::lstm::Lstm;
use mpgraph_ml::qinfer::{QuantLstm, QuantTransformerLayer};
use mpgraph_ml::quant::QuantizedLinear;
use mpgraph_ml::tensor::Matrix;
use mpgraph_ml::transformer::TransformerLayer;
use rand_chacha::ChaCha8Rng;

/// Which sequence model extracts features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackboneKind {
    /// Concatenated-modality LSTM (Tables 6-7 "LSTM" row; hidden = fusion
    /// dim for parameter parity).
    Lstm,
    /// Vanilla Transformer over concatenated modalities with the PC as
    /// plain side features (Tables 6-7 "Attention" row; 2 layers).
    Attention,
    /// The paper's multi-modality attention fusion network.
    Amma,
}

impl BackboneKind {
    pub fn name(&self) -> &'static str {
        match self {
            BackboneKind::Lstm => "LSTM",
            BackboneKind::Attention => "Attention",
            BackboneKind::Amma => "AMMA",
        }
    }
}

/// A backbone instance. All variants map a [`ModalInput`] (addr features
/// `[T, Fa]`, pc features `[T, Fp]`) to a pooled `[1, out_dim]` vector.
#[derive(Debug, Clone)]
pub enum Backbone {
    Lstm {
        lstm: Lstm,
        cache_rows: usize,
        pc_feats: usize,
        quant: Option<Box<QuantLstm>>,
    },
    Attention {
        proj: Linear,
        layers: Vec<TransformerLayer>,
        dim: usize,
        cache_rows: usize,
        pc_feats: usize,
        quant: Option<Box<QuantAttentionStack>>,
    },
    Amma(Box<Amma>),
}

/// Int8 snapshot of the vanilla-attention backbone: quantized input
/// projection plus quantized Transformer layers (the AMMA variant keeps
/// its snapshot inside [`Amma`]).
#[derive(Debug, Clone)]
pub struct QuantAttentionStack {
    pub proj: QuantizedLinear,
    pub layers: Vec<QuantTransformerLayer>,
}

impl QuantAttentionStack {
    pub fn storage_bytes(&self) -> usize {
        self.proj.storage_bytes()
            + self
                .layers
                .iter()
                .map(QuantTransformerLayer::storage_bytes)
                .sum::<usize>()
    }
}

impl Backbone {
    pub fn new(
        kind: BackboneKind,
        addr_feats: usize,
        pc_feats: usize,
        cfg: AmmaConfig,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        match kind {
            BackboneKind::Lstm => Backbone::Lstm {
                lstm: Lstm::new(addr_feats + pc_feats, cfg.fusion_dim, rng),
                cache_rows: 0,
                pc_feats,
                quant: None,
            },
            BackboneKind::Attention => Backbone::Attention {
                proj: Linear::new(addr_feats + pc_feats, cfg.fusion_dim, rng),
                layers: (0..2)
                    .map(|_| TransformerLayer::new(cfg.fusion_dim, cfg.heads, rng))
                    .collect(),
                dim: cfg.fusion_dim,
                cache_rows: 0,
                pc_feats,
                quant: None,
            },
            BackboneKind::Amma => {
                Backbone::Amma(Box::new(Amma::new(addr_feats, pc_feats, cfg, rng)))
            }
        }
    }

    /// Enables phase-informed mode (only meaningful for AMMA).
    pub fn with_phase_embedding(self, num_phases: usize, rng: &mut ChaCha8Rng) -> Self {
        match self {
            Backbone::Amma(a) => Backbone::Amma(Box::new(a.with_phase_embedding(num_phases, rng))),
            other => other,
        }
    }

    pub fn out_dim(&self) -> usize {
        match self {
            Backbone::Lstm { lstm, .. } => lstm.hidden_dim(),
            Backbone::Attention { dim, .. } => *dim,
            Backbone::Amma(a) => a.out_dim(),
        }
    }

    fn concat(x: &ModalInput) -> Matrix {
        let rows = x.addr.rows;
        let mut out = Matrix::zeros(rows, x.addr.cols + x.pc.cols);
        for r in 0..rows {
            out.row_mut(r)[..x.addr.cols].copy_from_slice(x.addr.row(r));
            out.row_mut(r)[x.addr.cols..].copy_from_slice(x.pc.row(r));
        }
        out
    }

    pub fn forward(&mut self, x: &ModalInput, phase: usize) -> Matrix {
        match self {
            Backbone::Lstm {
                lstm,
                cache_rows,
                quant,
                ..
            } => {
                // Training moves the weights; drop the stale int8 snapshot.
                *quant = None;
                *cache_rows = x.addr.rows;
                let h = lstm.forward(&Self::concat(x));
                Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec())
            }
            Backbone::Attention {
                proj,
                layers,
                cache_rows,
                quant,
                ..
            } => {
                *quant = None;
                *cache_rows = x.addr.rows;
                let mut h = proj.forward(&Self::concat(x));
                h.add_assign(&mpgraph_ml::tensor::positional_encoding(h.rows, h.cols));
                for l in layers.iter_mut() {
                    h = l.forward(&h);
                }
                Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec())
            }
            Backbone::Amma(a) => a.forward(x, phase),
        }
    }

    pub fn infer(&self, x: &ModalInput, phase: usize) -> Matrix {
        match self {
            Backbone::Lstm { lstm, .. } => {
                let h = lstm.infer(&Self::concat(x));
                Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec())
            }
            Backbone::Attention { proj, layers, .. } => {
                let mut h = proj.infer(&Self::concat(x));
                h.add_assign(&mpgraph_ml::tensor::positional_encoding(h.rows, h.cols));
                for l in layers {
                    h = l.infer(&h);
                }
                Matrix::from_vec(1, h.cols, h.row(h.rows - 1).to_vec())
            }
            Backbone::Amma(a) => a.infer(x, phase),
        }
    }

    /// Inference through arena-owned scratch buffers — bit-identical to
    /// [`Backbone::infer`], allocation-free after warmup for every kind.
    pub fn infer_in(&self, x: &ModalInput, phase: usize, s: &mut ScratchArena) -> Matrix {
        match self {
            Backbone::Lstm { lstm, .. } => {
                let cat = Self::concat_in(x, s);
                let h = lstm.infer_in(&cat, s);
                s.give(cat);
                let mut pooled = s.take(1, h.cols);
                pooled.row_mut(0).copy_from_slice(h.row(h.rows - 1));
                s.give(h);
                pooled
            }
            Backbone::Attention { proj, layers, .. } => {
                let cat = Self::concat_in(x, s);
                let mut h = proj.infer_in(&cat, s);
                s.give(cat);
                s.add_positional(&mut h);
                for l in layers {
                    let h2 = l.infer_in(&h, s);
                    s.give(h);
                    h = h2;
                }
                let mut pooled = s.take(1, h.cols);
                pooled.row_mut(0).copy_from_slice(h.row(h.rows - 1));
                s.give(h);
                pooled
            }
            Backbone::Amma(a) => a.infer_in(x, phase, s),
        }
    }

    /// Batched inference: `x` stacks `batch` sequences (`[batch * T, F]`
    /// per modality, each sequence contiguous); returns `[batch, out_dim]`
    /// with row `b` bit-identical to [`Backbone::infer_in`] on sequence
    /// `b` alone. The whole batch shares one `phase`.
    pub fn infer_batch_in(
        &self,
        x: &ModalInput,
        batch: usize,
        phase: usize,
        s: &mut ScratchArena,
    ) -> Matrix {
        assert!(
            batch > 0 && x.addr.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.addr.rows / batch;
        match self {
            Backbone::Lstm { lstm, .. } => {
                let cat = Self::concat_in(x, s);
                let h = lstm.infer_batch_in(&cat, batch, s);
                s.give(cat);
                Self::pool_last_rows(h, batch, seq, s)
            }
            Backbone::Attention { proj, layers, .. } => {
                let cat = Self::concat_in(x, s);
                let mut h = proj.infer_in(&cat, s);
                s.give(cat);
                s.add_positional_per_seq(&mut h, seq);
                for l in layers {
                    let h2 = l.infer_batch_in(&h, batch, s);
                    s.give(h);
                    h = h2;
                }
                Self::pool_last_rows(h, batch, seq, s)
            }
            Backbone::Amma(a) => a.infer_batch_in(x, batch, phase, s),
        }
    }

    /// Gathers each sequence's final hidden row into a `[batch, cols]`
    /// matrix — the batched form of the last-position readout — then
    /// releases `h` back to the arena.
    fn pool_last_rows(h: Matrix, batch: usize, seq: usize, s: &mut ScratchArena) -> Matrix {
        let mut pooled = s.take(batch, h.cols);
        for b in 0..batch {
            pooled.row_mut(b).copy_from_slice(h.row((b + 1) * seq - 1));
        }
        s.give(h);
        pooled
    }

    fn concat_in(x: &ModalInput, s: &mut ScratchArena) -> Matrix {
        let rows = x.addr.rows;
        let mut out = s.take(rows, x.addr.cols + x.pc.cols);
        for r in 0..rows {
            out.row_mut(r)[..x.addr.cols].copy_from_slice(x.addr.row(r));
            out.row_mut(r)[x.addr.cols..].copy_from_slice(x.pc.row(r));
        }
        out
    }

    /// Backward pass; returns gradients w.r.t. the modality inputs
    /// `(d_addr, d_pc)` so upstream embeddings can train.
    pub fn backward(&mut self, d_out: &Matrix) -> (Matrix, Matrix) {
        match self {
            Backbone::Lstm {
                lstm,
                cache_rows,
                pc_feats,
                ..
            } => {
                let rows = *cache_rows;
                let mut dh = Matrix::zeros(rows, d_out.cols);
                dh.row_mut(rows - 1).copy_from_slice(d_out.row(0));
                let dx = lstm.backward(&dh);
                Self::split_concat(&dx, *pc_feats)
            }
            Backbone::Attention {
                proj,
                layers,
                cache_rows,
                dim,
                pc_feats,
                ..
            } => {
                let rows = *cache_rows;
                let mut dh = Matrix::zeros(rows, *dim);
                dh.row_mut(rows - 1).copy_from_slice(d_out.row(0));
                for l in layers.iter_mut().rev() {
                    dh = l.backward(&dh);
                }
                let dx = proj.backward(&dh);
                Self::split_concat(&dx, *pc_feats)
            }
            Backbone::Amma(a) => a.backward(d_out),
        }
    }

    /// Splits a concatenated-input gradient back into (addr, pc) parts;
    /// the pc modality occupies the trailing `pc_cols` columns.
    fn split_concat(dx: &Matrix, pc_cols: usize) -> (Matrix, Matrix) {
        let a_cols = dx.cols - pc_cols;
        let mut da = Matrix::zeros(dx.rows, a_cols);
        let mut dp = Matrix::zeros(dx.rows, pc_cols);
        for r in 0..dx.rows {
            da.row_mut(r).copy_from_slice(&dx.row(r)[..a_cols]);
            dp.row_mut(r).copy_from_slice(&dx.row(r)[a_cols..]);
        }
        (da, dp)
    }

    /// Builds (or rebuilds) the int8 inference snapshot consumed by
    /// [`Backbone::forward_quant`]. Call after training has converged; any
    /// later training forward invalidates the snapshot.
    pub fn quantize(&mut self) {
        match self {
            Backbone::Lstm { lstm, quant, .. } => {
                *quant = Some(Box::new(QuantLstm::from_lstm(lstm)))
            }
            Backbone::Attention {
                proj,
                layers,
                quant,
                ..
            } => {
                *quant = Some(Box::new(QuantAttentionStack {
                    proj: QuantizedLinear::from_linear(proj),
                    layers: layers
                        .iter()
                        .map(QuantTransformerLayer::from_layer)
                        .collect(),
                }))
            }
            Backbone::Amma(a) => a.quantize(),
        }
    }

    pub fn is_quantized(&self) -> bool {
        match self {
            Backbone::Lstm { quant, .. } => quant.is_some(),
            Backbone::Attention { quant, .. } => quant.is_some(),
            Backbone::Amma(a) => a.is_quantized(),
        }
    }

    /// Size of the int8 snapshot, if one exists.
    pub fn quant_storage_bytes(&self) -> Option<usize> {
        match self {
            Backbone::Lstm { quant, .. } => quant.as_ref().map(|q| q.storage_bytes()),
            Backbone::Attention { quant, .. } => quant.as_ref().map(|q| q.storage_bytes()),
            Backbone::Amma(a) => a.quant_storage_bytes(),
        }
    }

    /// Int8 forward through the quantized snapshot; falls back to the f32
    /// [`Backbone::infer_in`] (bit-identically) when no snapshot exists,
    /// so callers can flip quantization on without branching.
    pub fn forward_quant(&self, x: &ModalInput, phase: usize, s: &mut ScratchArena) -> Matrix {
        match self {
            Backbone::Lstm { quant: Some(q), .. } => {
                let cat = Self::concat_in(x, s);
                let h = q.infer_in(&cat, s);
                s.give(cat);
                let mut pooled = s.take(1, h.cols);
                pooled.row_mut(0).copy_from_slice(h.row(h.rows - 1));
                s.give(h);
                pooled
            }
            Backbone::Attention { quant: Some(q), .. } => {
                let cat = Self::concat_in(x, s);
                let mut h = q.proj.infer_in(&cat, s);
                s.give(cat);
                s.add_positional(&mut h);
                for l in &q.layers {
                    let h2 = l.infer_in(&h, s);
                    s.give(h);
                    h = h2;
                }
                let mut pooled = s.take(1, h.cols);
                pooled.row_mut(0).copy_from_slice(h.row(h.rows - 1));
                s.give(h);
                pooled
            }
            Backbone::Amma(a) => a.infer_quant_in(x, phase, s),
            other => other.infer_in(x, phase, s),
        }
    }

    /// Batched int8 forward: row `b` is bit-identical to
    /// [`Backbone::forward_quant`] on sequence `b` alone. Falls back to
    /// [`Backbone::infer_batch_in`] when no snapshot exists.
    pub fn forward_batch_quant(
        &self,
        x: &ModalInput,
        batch: usize,
        phase: usize,
        s: &mut ScratchArena,
    ) -> Matrix {
        assert!(
            batch > 0 && x.addr.rows.is_multiple_of(batch),
            "rows must tile by batch"
        );
        let seq = x.addr.rows / batch;
        match self {
            Backbone::Lstm { quant: Some(q), .. } => {
                let cat = Self::concat_in(x, s);
                let h = q.infer_batch_in(&cat, batch, s);
                s.give(cat);
                Self::pool_last_rows(h, batch, seq, s)
            }
            Backbone::Attention { quant: Some(q), .. } => {
                let cat = Self::concat_in(x, s);
                let mut h = q.proj.infer_in(&cat, s);
                s.give(cat);
                s.add_positional_per_seq(&mut h, seq);
                for l in &q.layers {
                    let h2 = l.infer_batch_in(&h, batch, s);
                    s.give(h);
                    h = h2;
                }
                Self::pool_last_rows(h, batch, seq, s)
            }
            Backbone::Amma(a) => a.infer_batch_quant_in(x, batch, phase, s),
            other => other.infer_batch_in(x, batch, phase, s),
        }
    }
}

impl Module for Backbone {
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Backbone::Lstm { lstm, .. } => lstm.for_each_param(f),
            Backbone::Attention { proj, layers, .. } => {
                proj.for_each_param(f);
                for l in layers {
                    l.for_each_param(f);
                }
            }
            Backbone::Amma(a) => a.for_each_param(f),
        }
    }

    fn for_each_param_ref(&self, f: &mut dyn FnMut(&Param)) {
        match self {
            Backbone::Lstm { lstm, .. } => lstm.for_each_param_ref(f),
            Backbone::Attention { proj, layers, .. } => {
                proj.for_each_param_ref(f);
                for l in layers {
                    l.for_each_param_ref(f);
                }
            }
            Backbone::Amma(a) => a.for_each_param_ref(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_ml::tensor::rng;

    fn tiny_cfg() -> AmmaConfig {
        AmmaConfig {
            history: 4,
            attn_dim: 8,
            fusion_dim: 16,
            layers: 1,
            heads: 2,
        }
    }

    fn input(seed: u64) -> ModalInput {
        let mut r = rng(seed);
        ModalInput {
            addr: Matrix::xavier(4, 3, &mut r),
            pc: Matrix::xavier(4, 1, &mut r),
        }
    }

    #[test]
    fn all_kinds_produce_same_shape() {
        let mut r = rng(1);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let mut b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            let y = b.forward(&input(2), 0);
            assert_eq!((y.rows, y.cols), (1, 16), "{}", kind.name());
            assert_eq!(b.out_dim(), 16);
            let y2 = b.infer(&input(2), 0);
            for (a, c) in y.data.iter().zip(y2.data.iter()) {
                assert!((a - c).abs() < 1e-6, "{}", kind.name());
            }
        }
    }

    #[test]
    fn batched_inference_is_bit_identical_per_sequence() {
        let mut r = rng(7);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            // Phase embedding on (AMMA-PI) exercises the broadcast path.
            let b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r).with_phase_embedding(2, &mut r);
            let mut s = ScratchArena::new();
            // Ragged coverage via odd batch sizes; every batch shares T
            // (the fused serve path stacks equal-length histories).
            for batch in [1usize, 2, 5, 16] {
                let t = 4;
                let seqs: Vec<ModalInput> = (0..batch).map(|i| input(100 + i as u64)).collect();
                let mut addr = Matrix::zeros(batch * t, 3);
                let mut pc = Matrix::zeros(batch * t, 1);
                for (i, q) in seqs.iter().enumerate() {
                    for row in 0..t {
                        addr.row_mut(i * t + row).copy_from_slice(q.addr.row(row));
                        pc.data[i * t + row] = q.pc.data[row];
                    }
                }
                let stacked = ModalInput { addr, pc };
                for phase in 0..2 {
                    let fused = b.infer_batch_in(&stacked, batch, phase, &mut s);
                    assert_eq!((fused.rows, fused.cols), (batch, 16));
                    for (i, q) in seqs.iter().enumerate() {
                        let solo = b.infer_in(q, phase, &mut s);
                        assert_eq!(
                            fused.row(i),
                            solo.row(0),
                            "{} batch={batch} seq={i} phase={phase}",
                            kind.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backward_accumulates_gradients_everywhere() {
        let mut r = rng(3);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let mut b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            let _ = b.forward(&input(4), 0);
            let mut d = Matrix::zeros(1, 16);
            d.data.fill(1.0);
            b.backward(&d);
            let mut total = 0.0f32;
            b.for_each_param(&mut |p| total += p.g.norm());
            assert!(total > 0.0, "{} has zero gradients", kind.name());
        }
    }

    #[test]
    fn arena_infer_matches_infer_for_every_kind() {
        let mut r = rng(7);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            let x = input(8);
            let baseline = b.infer(&x, 0);
            let mut s = ScratchArena::new();
            let y = b.infer_in(&x, 0, &mut s);
            assert_eq!(y.data, baseline.data, "{}", kind.name());
            s.give(y);
            let (_, warm) = s.stats();
            let y2 = b.infer_in(&x, 0, &mut s);
            s.give(y2);
            let (_, steady) = s.stats();
            assert_eq!(warm, steady, "{} steady state allocated", kind.name());
        }
    }

    #[test]
    fn phase_embedding_only_affects_amma() {
        let mut r = rng(5);
        let b = Backbone::new(BackboneKind::Lstm, 3, 1, tiny_cfg(), &mut r)
            .with_phase_embedding(2, &mut r);
        // LSTM backbone ignores the request (stays phase-blind).
        let x = input(6);
        assert_eq!(b.infer(&x, 0), b.infer(&x, 1));
        let a = Backbone::new(BackboneKind::Amma, 3, 1, tiny_cfg(), &mut r)
            .with_phase_embedding(2, &mut r);
        assert_ne!(a.infer(&x, 0), a.infer(&x, 1));
    }

    #[test]
    fn quantized_forward_tracks_f32_for_every_kind() {
        let mut r = rng(31);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let mut b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            b.quantize();
            assert!(b.is_quantized(), "{}", kind.name());
            let x = input(32);
            let mut s = ScratchArena::new();
            let exact = b.infer_in(&x, 0, &mut s);
            let quant = b.forward_quant(&x, 0, &mut s);
            let diff = exact
                .data
                .iter()
                .zip(quant.data.iter())
                .fold(0.0f32, |m, (a, c)| m.max((a - c).abs()));
            assert!(diff < 0.35, "{}: diff {diff}", kind.name());
            assert!(diff > 0.0, "{}: quant path identical to f32", kind.name());
            // The snapshot actually compresses: under a third of f32 bytes.
            let qb = b.quant_storage_bytes().unwrap();
            let fb = b.num_params() * 4;
            assert!(qb * 3 < fb * 2, "{}: {qb} vs {fb}", kind.name());
        }
    }

    #[test]
    fn quantized_batch_is_bit_identical_per_sequence() {
        let mut r = rng(33);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let mut b =
                Backbone::new(kind, 3, 1, tiny_cfg(), &mut r).with_phase_embedding(2, &mut r);
            b.quantize();
            let mut s = ScratchArena::new();
            for batch in [1usize, 3, 8] {
                let t = 4;
                let seqs: Vec<ModalInput> = (0..batch).map(|i| input(200 + i as u64)).collect();
                let mut addr = Matrix::zeros(batch * t, 3);
                let mut pc = Matrix::zeros(batch * t, 1);
                for (i, q) in seqs.iter().enumerate() {
                    for row in 0..t {
                        addr.row_mut(i * t + row).copy_from_slice(q.addr.row(row));
                        pc.data[i * t + row] = q.pc.data[row];
                    }
                }
                let stacked = ModalInput { addr, pc };
                for phase in 0..2 {
                    let fused = b.forward_batch_quant(&stacked, batch, phase, &mut s);
                    for (i, q) in seqs.iter().enumerate() {
                        let solo = b.forward_quant(q, phase, &mut s);
                        assert_eq!(
                            fused.row(i),
                            solo.row(0),
                            "{} batch={batch} seq={i} phase={phase}",
                            kind.name()
                        );
                        s.give(solo);
                    }
                    s.give(fused);
                }
            }
        }
    }

    #[test]
    fn unquantized_forward_quant_falls_back_bit_identically() {
        let mut r = rng(35);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            assert!(!b.is_quantized());
            assert!(b.quant_storage_bytes().is_none());
            let x = input(36);
            let mut s = ScratchArena::new();
            let a = b.infer_in(&x, 0, &mut s);
            let c = b.forward_quant(&x, 0, &mut s);
            assert_eq!(a.data, c.data, "{}", kind.name());
        }
    }

    #[test]
    fn training_forward_invalidates_quant_snapshot() {
        let mut r = rng(37);
        for kind in [
            BackboneKind::Lstm,
            BackboneKind::Attention,
            BackboneKind::Amma,
        ] {
            let mut b = Backbone::new(kind, 3, 1, tiny_cfg(), &mut r);
            b.quantize();
            assert!(b.is_quantized(), "{}", kind.name());
            let _ = b.forward(&input(38), 0);
            assert!(
                !b.is_quantized(),
                "{} kept a stale snapshot across training",
                kind.name()
            );
        }
    }

    #[test]
    fn kind_names_match_tables() {
        assert_eq!(BackboneKind::Lstm.name(), "LSTM");
        assert_eq!(BackboneKind::Attention.name(), "Attention");
        assert_eq!(BackboneKind::Amma.name(), "AMMA");
    }
}
