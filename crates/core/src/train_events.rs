//! Training-side event channel: rollback events reported *as they
//! happen*, not reconstructed from post-hoc counters.
//!
//! The predictors train their per-phase models on rayon worker threads,
//! so the channel is a `Mutex`-guarded buffer shared by reference into
//! the training fan-out ([`crate::DeltaPredictor::train_with_events`] /
//! [`crate::PagePredictor::train_with_events`]). Each `TrainGuard`
//! rollback or budget exhaustion pushes one structured
//! [`TrainRollbackMetrics`] record — predictor, phase-model index,
//! optimizer step, post-rollback learning rate — at the moment the guard
//! fires. After training, [`TrainEventSink::drain`] hands the events back
//! in a deterministic order (worker threads interleave arbitrarily, so
//! the drain sorts by predictor / model / step) for the metrics snapshot
//! and the flight recorder.

use crate::obs::TrainRollbackMetrics;
use std::sync::Mutex;

/// Thread-safe collector for training-time rollback events.
#[derive(Debug, Default)]
pub struct TrainEventSink {
    events: Mutex<Vec<TrainRollbackMetrics>>,
}

impl TrainEventSink {
    pub fn new() -> Self {
        TrainEventSink::default()
    }

    /// Records one event. Called from training worker threads at the
    /// instant the guard rolls back; contention is negligible (rollbacks
    /// are rare by design).
    pub fn record(&self, event: TrainRollbackMetrics) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event);
        }
    }

    /// Takes every recorded event, sorted by (predictor, model, step) so
    /// the result is independent of worker-thread interleaving.
    pub fn drain(&self) -> Vec<TrainRollbackMetrics> {
        let mut events = match self.events.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => Vec::new(),
        };
        events.sort_by(|a, b| {
            (a.predictor.as_str(), a.model, a.step).cmp(&(b.predictor.as_str(), b.model, b.step))
        });
        events
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(predictor: &str, model: u64, step: u64) -> TrainRollbackMetrics {
        TrainRollbackMetrics {
            predictor: predictor.to_string(),
            model,
            step,
            new_lr: 1e-3,
            exhausted: false,
        }
    }

    #[test]
    fn drain_sorts_and_empties() {
        let sink = TrainEventSink::new();
        sink.record(ev("page", 1, 9));
        sink.record(ev("delta", 0, 5));
        sink.record(ev("delta", 0, 2));
        sink.record(ev("page", 0, 1));
        assert_eq!(sink.len(), 4);
        let drained = sink.drain();
        let keys: Vec<(String, u64, u64)> = drained
            .iter()
            .map(|e| (e.predictor.clone(), e.model, e.step))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("delta".to_string(), 0, 2),
                ("delta".to_string(), 0, 5),
                ("page".to_string(), 0, 1),
                ("page".to_string(), 1, 9),
            ]
        );
        assert!(sink.is_empty());
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = TrainEventSink::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for s in 0..8u64 {
                        sink.record(ev("delta", t, s));
                    }
                });
            }
        });
        assert_eq!(sink.drain().len(), 32);
    }
}
