//! Graceful degradation for the ML prefetching path (§6 practicality,
//! taken to deployment): a [`DegradationGuard`] wraps an ML-backed
//! prefetcher, watches two health signals — inference deadline misses and
//! rolling prediction accuracy — and swaps in the rule-based Best-Offset
//! prefetcher when the ML path goes unhealthy. Recovery is hysteretic:
//! the guard returns to the ML path only after a cooldown *and* a run of
//! consecutive healthy inference observations, so a flapping accelerator
//! cannot thrash the policy.
//!
//! While degraded, the guard keeps feeding accesses to the ML model
//! (shadow mode, predictions discarded) so its histories stay warm and its
//! shadow accuracy remains measurable for the recovery decision.

use crate::error::MpGraphError;
use crate::health::{ComponentHealth, ComponentStatus};
use crate::latency::amma_latency;
use crate::obs::GuardMetrics;
use crate::AmmaConfig;
use mpgraph_prefetchers::{BestOffset, BoConfig};
use mpgraph_sim::{LlcAccess, PrefetchTag, Prefetcher, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Guard thresholds. Build with [`GuardConfig::try_new`] (validated) or
/// [`GuardConfig::for_deadline`] (defaults around a deadline).
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Inference must complete within this many cycles; beyond it the
    /// observation counts as a deadline miss.
    pub deadline_cycles: u64,
    /// Rolling window of inference observations for the miss fraction.
    pub miss_window: usize,
    /// Fraction of misses in a full window that trips degradation.
    pub trip_miss_fraction: f64,
    /// Rolling accuracy floor: below it (with a full window) the ML path
    /// is judged useless and the guard trips.
    pub min_accuracy: f64,
    /// Demand accesses in the rolling accuracy window.
    pub accuracy_window: usize,
    /// Minimum accesses spent degraded before recovery is considered.
    pub cooldown_accesses: u64,
    /// Consecutive healthy inference observations required to recover.
    pub recover_healthy_probes: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            deadline_cycles: 500,
            miss_window: 64,
            trip_miss_fraction: 0.5,
            min_accuracy: 0.01,
            accuracy_window: 2048,
            cooldown_accesses: 512,
            recover_healthy_probes: 64,
        }
    }
}

impl GuardConfig {
    /// Validated constructor.
    pub fn try_new(
        deadline_cycles: u64,
        miss_window: usize,
        trip_miss_fraction: f64,
        min_accuracy: f64,
        accuracy_window: usize,
        cooldown_accesses: u64,
        recover_healthy_probes: u32,
    ) -> Result<Self, MpGraphError> {
        if deadline_cycles == 0 {
            return Err(MpGraphError::config("guard", "deadline_cycles must be > 0"));
        }
        if miss_window == 0 || accuracy_window == 0 {
            return Err(MpGraphError::config("guard", "windows must be > 0"));
        }
        if !(0.0..=1.0).contains(&trip_miss_fraction) || trip_miss_fraction == 0.0 {
            return Err(MpGraphError::config(
                "guard",
                format!("trip_miss_fraction must be in (0, 1], got {trip_miss_fraction}"),
            ));
        }
        if !(0.0..=1.0).contains(&min_accuracy) {
            return Err(MpGraphError::config(
                "guard",
                format!("min_accuracy must be in [0, 1], got {min_accuracy}"),
            ));
        }
        if recover_healthy_probes == 0 {
            return Err(MpGraphError::config(
                "guard",
                "recover_healthy_probes must be > 0",
            ));
        }
        Ok(GuardConfig {
            deadline_cycles,
            miss_window,
            trip_miss_fraction,
            min_accuracy,
            accuracy_window,
            cooldown_accesses,
            recover_healthy_probes,
        })
    }

    /// Defaults with an explicit deadline.
    pub fn for_deadline(deadline_cycles: u64) -> Self {
        GuardConfig {
            deadline_cycles: deadline_cycles.max(1),
            ..GuardConfig::default()
        }
    }

    /// Derives the deadline from the Eq. 12 latency model of the deployed
    /// AMMA configuration: inference is expected within `slack ×` its
    /// modelled critical path.
    pub fn from_latency_model(amma: &AmmaConfig, slack: f64) -> Result<Self, MpGraphError> {
        if !slack.is_finite() || slack < 1.0 {
            return Err(MpGraphError::config(
                "guard",
                format!("slack must be >= 1, got {slack}"),
            ));
        }
        let modelled = amma_latency(amma).total.max(1);
        Ok(GuardConfig::for_deadline((modelled as f64 * slack) as u64))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardState {
    Healthy,
    Degraded {
        /// Access count at which degradation began.
        since: u64,
        /// Consecutive healthy inference observations while degraded.
        healthy_probes: u32,
    },
}

/// The wrapper. `P` is the guarded ML prefetcher (in practice
/// `MpGraphPrefetcher`); the fallback is always Best-Offset.
pub struct DegradationGuard<P: Prefetcher> {
    ml: P,
    fallback: BestOffset,
    cfg: GuardConfig,
    state: GuardState,
    accesses: u64,
    // Deadline-miss rolling window.
    miss_ring: VecDeque<bool>,
    misses_in_ring: usize,
    // Rolling accuracy: blocks the ML path recently predicted …
    pred_queue: VecDeque<u64>,
    pred_counts: HashMap<u64, u32>,
    // … checked against arriving demand blocks.
    acc_ring: VecDeque<bool>,
    acc_hits: usize,
    scratch: Vec<u64>,
    // Lifetime counters (introspection / health reports).
    pub deadline_misses: u64,
    pub trips: u64,
    pub recoveries: u64,
    pub accesses_degraded: u64,
    pub slo_trips: u64,
    // Structured tracing (engine-controlled, off by default). The guard
    // buffers its own trip/recover events and passes the wrapped
    // prefetcher's through, so the engine sees one merged stream.
    trace_on: bool,
    trace_events: Vec<TraceEvent>,
}

impl<P: Prefetcher> DegradationGuard<P> {
    pub fn new(ml: P, cfg: GuardConfig) -> Self {
        DegradationGuard {
            ml,
            fallback: BestOffset::new(BoConfig::default()),
            cfg,
            state: GuardState::Healthy,
            accesses: 0,
            miss_ring: VecDeque::with_capacity(cfg.miss_window),
            misses_in_ring: 0,
            pred_queue: VecDeque::new(),
            pred_counts: HashMap::new(),
            acc_ring: VecDeque::with_capacity(cfg.accuracy_window),
            acc_hits: 0,
            scratch: Vec::new(),
            deadline_misses: 0,
            trips: 0,
            recoveries: 0,
            accesses_degraded: 0,
            slo_trips: 0,
            trace_on: false,
            trace_events: Vec::new(),
        }
    }

    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Whether the ML path is currently active.
    pub fn is_healthy(&self) -> bool {
        self.state == GuardState::Healthy
    }

    /// Access to the wrapped ML prefetcher.
    pub fn inner(&self) -> &P {
        &self.ml
    }

    /// Rolling accuracy over the last `accuracy_window` demand accesses
    /// (`None` until the window fills).
    pub fn rolling_accuracy(&self) -> Option<f64> {
        (self.acc_ring.len() >= self.cfg.accuracy_window)
            .then(|| self.acc_hits as f64 / self.acc_ring.len() as f64)
    }

    /// Fraction of deadline misses in the rolling inference window.
    pub fn miss_fraction(&self) -> f64 {
        if self.miss_ring.is_empty() {
            0.0
        } else {
            self.misses_in_ring as f64 / self.miss_ring.len() as f64
        }
    }

    /// Lifetime counters for a [`crate::obs::MetricsSnapshot`].
    pub fn metrics(&self) -> GuardMetrics {
        GuardMetrics {
            trips: self.trips,
            recoveries: self.recoveries,
            deadline_misses: self.deadline_misses,
            accesses_degraded: self.accesses_degraded,
            slo_trips: self.slo_trips,
        }
    }

    /// External escalation input from the live SLO monitor
    /// (`core::livetel`): a Breach verdict trips the guard off the ML
    /// path immediately — the error budget is burning faster than the
    /// guard's own rolling windows would catch. Warn and Ok do not force
    /// anything; recovery still goes through the hysteretic
    /// cooldown-plus-probes path, so a flapping monitor cannot thrash
    /// the policy.
    pub fn apply_slo_verdict(&mut self, verdict: crate::livetel::SloVerdict) {
        if verdict == crate::livetel::SloVerdict::Breach && self.state == GuardState::Healthy {
            self.slo_trips += 1;
            self.trip();
        }
    }

    /// Current condition for a [`crate::health::HealthReport`].
    pub fn health(&self) -> ComponentHealth {
        let status = if self.is_healthy() {
            ComponentStatus::Healthy
        } else {
            ComponentStatus::Degraded
        };
        ComponentHealth::new(
            "degradation-guard",
            status,
            format!(
                "trips {}, recoveries {}, deadline misses {}, degraded accesses {}, miss frac {:.2}",
                self.trips,
                self.recoveries,
                self.deadline_misses,
                self.accesses_degraded,
                self.miss_fraction(),
            ),
        )
    }

    fn trip(&mut self) {
        if self.state == GuardState::Healthy {
            self.trips += 1;
            self.state = GuardState::Degraded {
                since: self.accesses,
                healthy_probes: 0,
            };
            if self.trace_on {
                self.trace_events.push(TraceEvent::GuardTrip);
            }
        }
    }

    /// `degraded_accesses` is the length of the degraded spell that just
    /// ended, for the window summary event.
    fn recover(&mut self, degraded_accesses: u64) {
        self.recoveries += 1;
        self.state = GuardState::Healthy;
        self.miss_ring.clear();
        self.misses_in_ring = 0;
        self.acc_ring.clear();
        self.acc_hits = 0;
        if self.trace_on {
            self.trace_events.push(TraceEvent::GuardRecover);
            self.trace_events.push(TraceEvent::DegradationWindow {
                accesses: degraded_accesses,
            });
        }
    }

    fn push_miss(&mut self, miss: bool) {
        if self.miss_ring.len() == self.cfg.miss_window {
            if let Some(old) = self.miss_ring.pop_front() {
                if old {
                    self.misses_in_ring -= 1;
                }
            }
        }
        self.miss_ring.push_back(miss);
        if miss {
            self.misses_in_ring += 1;
            self.deadline_misses += 1;
        }
    }

    fn note_predictions(&mut self, preds: &[u64]) {
        // Cap the remembered-prediction set at the accuracy window so the
        // membership test reflects *recent* predictions only.
        let cap = self.cfg.accuracy_window;
        for &b in preds {
            self.pred_queue.push_back(b);
            *self.pred_counts.entry(b).or_insert(0) += 1;
            if self.pred_queue.len() > cap {
                if let Some(old) = self.pred_queue.pop_front() {
                    if let Some(c) = self.pred_counts.get_mut(&old) {
                        *c -= 1;
                        if *c == 0 {
                            self.pred_counts.remove(&old);
                        }
                    }
                }
            }
        }
    }

    fn note_demand(&mut self, block: u64) {
        let hit = self.pred_counts.contains_key(&block);
        if self.acc_ring.len() == self.cfg.accuracy_window {
            if let Some(old) = self.acc_ring.pop_front() {
                if old {
                    self.acc_hits -= 1;
                }
            }
        }
        self.acc_ring.push_back(hit);
        if hit {
            self.acc_hits += 1;
        }
    }
}

impl<P: Prefetcher> Prefetcher for DegradationGuard<P> {
    fn name(&self) -> String {
        format!("Guarded({})", self.ml.name())
    }

    fn latency(&self) -> u64 {
        if self.is_healthy() {
            self.ml.latency()
        } else {
            self.fallback.latency()
        }
    }

    /// The guard's deadline monitor. Every access the engine reports the
    /// stall imposed on the inference path; the guard classifies the
    /// observation, trips on a window full of misses, and — while degraded
    /// — serves Best-Offset latency (the ML path is off the critical path)
    /// while counting consecutive healthy observations toward recovery.
    fn effective_latency(&mut self, injected_stall: u64) -> u64 {
        let ml_latency = self.ml.latency() + injected_stall;
        let miss = ml_latency > self.cfg.deadline_cycles;
        self.push_miss(miss);
        match self.state {
            GuardState::Healthy => {
                if self.miss_ring.len() == self.cfg.miss_window
                    && self.miss_fraction() >= self.cfg.trip_miss_fraction
                {
                    self.trip();
                    self.fallback.latency()
                } else {
                    ml_latency
                }
            }
            GuardState::Degraded {
                since,
                healthy_probes,
            } => {
                let healthy_probes = if miss { 0 } else { healthy_probes + 1 };
                self.state = GuardState::Degraded {
                    since,
                    healthy_probes,
                };
                if healthy_probes >= self.cfg.recover_healthy_probes
                    && self.accesses.saturating_sub(since) >= self.cfg.cooldown_accesses
                {
                    self.recover(self.accesses.saturating_sub(since));
                }
                self.fallback.latency()
            }
        }
    }

    /// While healthy the issued batch is the ML path's, so its attribution
    /// passes through; degraded batches come from Best-Offset, which does
    /// not tag (the engine falls back to unattributed tags).
    fn last_batch_tags(&self) -> &[PrefetchTag] {
        if self.is_healthy() {
            self.ml.last_batch_tags()
        } else {
            &[]
        }
    }

    fn current_phase_id(&self) -> u8 {
        self.ml.current_phase_id()
    }

    fn enable_trace_events(&mut self, on: bool) {
        self.trace_on = on;
        self.trace_events.clear();
        self.ml.enable_trace_events(on);
    }

    fn pending_trace_events(&self) -> &[TraceEvent] {
        &self.trace_events
    }

    fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
        if self.trace_on {
            // Cleared per access, like the wrapped prefetcher's buffer.
            // Deadline trips land later in `effective_latency`, which the
            // engine calls after `on_access` and before draining — so they
            // ride the same access.
            self.trace_events.clear();
        }
        self.accesses += 1;
        self.note_demand(a.block);
        match self.state {
            GuardState::Healthy => {
                self.ml.on_access(a, out);
                if self.trace_on {
                    self.trace_events
                        .extend_from_slice(self.ml.pending_trace_events());
                }
                let preds = std::mem::take(&mut self.scratch);
                self.note_predictions(out);
                self.scratch = preds;
                // Accuracy trip: a full window below the floor means the
                // model's predictions are not materializing into hits.
                if let Some(acc) = self.rolling_accuracy() {
                    if acc < self.cfg.min_accuracy {
                        self.trip();
                    }
                }
            }
            GuardState::Degraded { .. } => {
                self.accesses_degraded += 1;
                // Shadow-run the model: state stays warm, predictions are
                // measured for recovery but never issued.
                self.scratch.clear();
                self.ml.on_access(a, &mut self.scratch);
                if self.trace_on {
                    // Shadow-mode events still reach the recorder: phase
                    // transitions keep happening while degraded.
                    self.trace_events
                        .extend_from_slice(self.ml.pending_trace_events());
                }
                let preds = std::mem::take(&mut self.scratch);
                self.note_predictions(&preds);
                self.scratch = preds;
                self.fallback.on_access(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpgraph_sim::NullPrefetcher;

    /// An ML stand-in whose latency and predictions we script.
    struct FakeMl {
        latency: u64,
        predict_next: bool,
    }
    impl Prefetcher for FakeMl {
        fn name(&self) -> String {
            "fake-ml".into()
        }
        fn on_access(&mut self, a: &LlcAccess, out: &mut Vec<u64>) {
            if self.predict_next {
                out.push(a.block + 1);
            }
        }
        fn latency(&self) -> u64 {
            self.latency
        }
        fn effective_latency(&mut self, stall: u64) -> u64 {
            self.latency + stall
        }
    }

    fn cfg() -> GuardConfig {
        GuardConfig {
            deadline_cycles: 100,
            miss_window: 8,
            trip_miss_fraction: 0.5,
            min_accuracy: 0.01,
            accuracy_window: 64,
            cooldown_accesses: 16,
            recover_healthy_probes: 8,
        }
    }

    fn access(block: u64) -> LlcAccess {
        LlcAccess {
            pc: 0x400000,
            block,
            core: 0,
            is_write: false,
            hit: false,
            cycle: 0,
        }
    }

    #[test]
    fn stays_healthy_without_stalls() {
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let mut g = DegradationGuard::new(ml, cfg());
        let mut out = Vec::new();
        for i in 0..200 {
            out.clear();
            g.on_access(&access(i), &mut out);
            assert_eq!(g.effective_latency(0), 10);
        }
        assert!(g.is_healthy());
        assert_eq!(g.trips, 0);
        assert_eq!(g.name(), "Guarded(fake-ml)");
    }

    #[test]
    fn stalls_trip_the_guard_and_switch_to_best_offset() {
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let mut g = DegradationGuard::new(ml, cfg());
        let mut out = Vec::new();
        let mut tripped_at = None;
        for i in 0..100u64 {
            out.clear();
            g.on_access(&access(i), &mut out);
            g.effective_latency(10_000); // every inference stalls
            if !g.is_healthy() && tripped_at.is_none() {
                tripped_at = Some(i);
            }
        }
        let tripped_at = tripped_at.expect("guard never tripped");
        // Trips as soon as the miss window fills at 100% misses.
        assert!(tripped_at <= cfg().miss_window as u64 + 1);
        assert_eq!(g.trips, 1);
        assert!(g.deadline_misses > 0);
        assert!(g.accesses_degraded > 0);
        // Degraded latency is the fallback's (0), not the stalled ML path.
        assert_eq!(g.effective_latency(10_000), 0);
        assert_eq!(g.health().status, ComponentStatus::Degraded);
    }

    #[test]
    fn guard_emits_trip_recover_and_window_events_only_when_tracing() {
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let c = cfg();
        let mut g = DegradationGuard::new(ml, c);
        g.enable_trace_events(true);
        let mut out = Vec::new();
        let mut seen: Vec<TraceEvent> = Vec::new();
        // Trip (stalls), then recover (stalls cease) — draining the event
        // buffer after effective_latency like the engine does.
        for i in 0..200u64 {
            out.clear();
            g.on_access(&access(i), &mut out);
            g.effective_latency(if i < 20 { 10_000 } else { 0 });
            seen.extend_from_slice(g.pending_trace_events());
        }
        assert_eq!(g.trips, 1);
        assert_eq!(g.recoveries, 1);
        let trips = seen.iter().filter(|e| **e == TraceEvent::GuardTrip).count();
        let recovers = seen
            .iter()
            .filter(|e| **e == TraceEvent::GuardRecover)
            .count();
        assert_eq!(trips, 1);
        assert_eq!(recovers, 1);
        // The recovery carries a window summary matching the degraded span.
        let window = seen
            .iter()
            .find_map(|e| match e {
                TraceEvent::DegradationWindow { accesses } => Some(*accesses),
                _ => None,
            })
            .expect("no degradation-window event");
        assert!(window >= c.cooldown_accesses, "window {window} too short");

        // Same scenario untraced: zero events, identical guard behavior.
        let mut quiet = DegradationGuard::new(
            FakeMl {
                latency: 10,
                predict_next: true,
            },
            c,
        );
        for i in 0..200u64 {
            out.clear();
            quiet.on_access(&access(i), &mut out);
            quiet.effective_latency(if i < 20 { 10_000 } else { 0 });
            assert!(quiet.pending_trace_events().is_empty());
        }
        assert_eq!(quiet.trips, g.trips);
        assert_eq!(quiet.recoveries, g.recoveries);
        assert_eq!(quiet.deadline_misses, g.deadline_misses);
    }

    #[test]
    fn recovery_needs_cooldown_and_consecutive_healthy_probes() {
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let c = cfg();
        let mut g = DegradationGuard::new(ml, c);
        let mut out = Vec::new();
        // Trip it.
        for i in 0..20u64 {
            out.clear();
            g.on_access(&access(i), &mut out);
            g.effective_latency(10_000);
        }
        assert!(!g.is_healthy());
        // Stalls cease, but recovery must wait for cooldown + probe run.
        let mut recovered_after = None;
        for i in 0..100u64 {
            out.clear();
            g.on_access(&access(100 + i), &mut out);
            g.effective_latency(0);
            if g.is_healthy() && recovered_after.is_none() {
                recovered_after = Some(i + 1);
            }
        }
        let recovered_after = recovered_after.expect("guard never recovered");
        assert!(
            recovered_after >= c.recover_healthy_probes as u64,
            "recovered after only {recovered_after} healthy probes"
        );
        assert_eq!(g.recoveries, 1);
        assert!(g.is_healthy());
    }

    #[test]
    fn flapping_stalls_reset_the_probe_run() {
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let mut g = DegradationGuard::new(ml, cfg());
        let mut out = Vec::new();
        for i in 0..20u64 {
            out.clear();
            g.on_access(&access(i), &mut out);
            g.effective_latency(10_000);
        }
        assert!(!g.is_healthy());
        // Alternate healthy/stalled: never `recover_healthy_probes` in a
        // row, so the guard must stay degraded (hysteresis).
        for i in 0..200u64 {
            out.clear();
            g.on_access(&access(100 + i), &mut out);
            g.effective_latency(if i % 4 == 3 { 10_000 } else { 0 });
        }
        assert!(!g.is_healthy(), "guard recovered under flapping stalls");
        assert_eq!(g.recoveries, 0);
    }

    #[test]
    fn useless_predictions_trip_on_accuracy() {
        // ML path predicts nothing at all → rolling accuracy 0 once the
        // window fills, even with perfect latency.
        let ml = FakeMl {
            latency: 10,
            predict_next: false,
        };
        let c = cfg();
        let mut g = DegradationGuard::new(ml, c);
        let mut out = Vec::new();
        for i in 0..(c.accuracy_window as u64 + 8) {
            out.clear();
            g.on_access(&access(i), &mut out);
            g.effective_latency(0);
        }
        assert!(!g.is_healthy(), "zero-accuracy model not tripped");
    }

    #[test]
    fn config_validation() {
        assert!(GuardConfig::try_new(0, 8, 0.5, 0.1, 64, 16, 8).is_err());
        assert!(GuardConfig::try_new(100, 0, 0.5, 0.1, 64, 16, 8).is_err());
        assert!(GuardConfig::try_new(100, 8, 0.0, 0.1, 64, 16, 8).is_err());
        assert!(GuardConfig::try_new(100, 8, 1.5, 0.1, 64, 16, 8).is_err());
        assert!(GuardConfig::try_new(100, 8, 0.5, 2.0, 64, 16, 8).is_err());
        assert!(GuardConfig::try_new(100, 8, 0.5, 0.1, 64, 16, 0).is_err());
        assert!(GuardConfig::try_new(100, 8, 0.5, 0.1, 64, 16, 8).is_ok());
        assert!(GuardConfig::from_latency_model(&AmmaConfig::default(), 0.5).is_err());
        let g = GuardConfig::from_latency_model(&AmmaConfig::default(), 2.0).expect("valid");
        assert!(g.deadline_cycles > 0);
    }

    #[test]
    fn slo_breach_trips_the_guard_but_warn_and_ok_do_not() {
        use crate::livetel::SloVerdict;
        let ml = FakeMl {
            latency: 10,
            predict_next: true,
        };
        let mut g = DegradationGuard::new(ml, cfg());
        g.apply_slo_verdict(SloVerdict::Ok);
        g.apply_slo_verdict(SloVerdict::Warn);
        assert!(g.is_healthy());
        assert_eq!(g.slo_trips, 0);
        g.apply_slo_verdict(SloVerdict::Breach);
        assert!(!g.is_healthy());
        assert_eq!(g.trips, 1);
        assert_eq!(g.slo_trips, 1);
        assert_eq!(g.metrics().slo_trips, 1);
        // Breach while already degraded is not a second trip.
        g.apply_slo_verdict(SloVerdict::Breach);
        assert_eq!(g.trips, 1);
        assert_eq!(g.slo_trips, 1);
        // Ok does not short-circuit hysteretic recovery.
        g.apply_slo_verdict(SloVerdict::Ok);
        assert!(!g.is_healthy());
    }

    #[test]
    fn guard_over_null_prefetcher_is_harmless() {
        // Wrapping a latency-0, prediction-free prefetcher: the guard may
        // trip on accuracy but must never panic or emit from thin air.
        let mut g = DegradationGuard::new(NullPrefetcher, GuardConfig::default());
        let mut out = Vec::new();
        for i in 0..5000u64 {
            out.clear();
            g.on_access(&access(i % 97), &mut out);
            g.effective_latency(0);
        }
    }
}
