//! Live service telemetry: periodic snapshot deltas, pump-stage span
//! timing, and an SLO burn-rate monitor for [`crate::serve::PrefetchService`].
//!
//! Everything shipped before this module is post-mortem — one
//! `MetricsSnapshot` and one Perfetto trace, written at end of run. A
//! long-lived `mpgraph serve` process needs its counters *while it runs*:
//!
//! * **Interval deltas** — every `interval_pumps` pump cycles the service
//!   snapshots its monotonic [`ServeMetrics`] counters and
//!   [`derive_interval`] turns consecutive snapshots into a
//!   [`LiveInterval`]: non-negative per-interval deltas, derived rates
//!   (accesses/s via [`cycles_to_ns`], shed fraction, deadline-miss
//!   fraction, per-stream ML/fallback split), and the cumulative totals so
//!   a consumer can checksum the stream. Intervals go to an NDJSON sink
//!   (`--live-metrics <path|->`) and, re-rendered as a Prometheus-style
//!   text exposition, to `--expose <path>` (written to a temp file and
//!   renamed, so scrapers never see a torn dump).
//! * **Pump-stage spans** — queue wait (deterministic cycles), batch
//!   assembly, fused forward (f32 / int8 tagged), and deferred fallback
//!   (host wall ns) accumulate into the per-stage histograms of
//!   [`PumpStageMetrics`] and export as Perfetto counter tracks. The time
//!   telemetry itself costs is measured and reported
//!   (`self_overhead_fraction`), and none of this code runs without a
//!   `LiveTelemetry` attached — the observer discipline's
//!   bit-identical-when-off guarantee extends to the live path.
//! * **SLO monitor** — [`SloMonitor`] compares each interval's
//!   deadline-miss fraction against an error budget
//!   ([`SloConfig::budget_miss_fraction`]) and tracks the windowed burn
//!   rate (miss fraction / budget, averaged over
//!   [`SloConfig::window_intervals`] intervals). The resulting
//!   [`SloVerdict`] feeds the service's overload ladder as an extra
//!   escalation input (and [`crate::DegradationGuard::apply_slo_verdict`]
//!   for guard users); every verdict change emits a
//!   [`TraceEvent::SloEscalate`] / [`TraceEvent::SloRecover`]. A burn-rate
//!   monitor fires on the *first* bad interval rather than waiting for a
//!   per-stream miss window to fill, which is what makes it the early
//!   warning in front of the quarantine path (measured by the chaos
//!   bench).

use crate::error::MpGraphError;
use crate::latency::cycles_to_ns;
use crate::obs::{
    LatencyHistogram, LiveIntervalSummary, PumpStageMetrics, ServeMetrics, SloServeMetrics,
};
use mpgraph_sim::TraceEvent;
use serde::Serialize;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

/// SLO target and error-budget policy for [`SloMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Prediction-latency p99 target in service cycles; a cumulative p99
    /// above it keeps the verdict at least at Warn.
    pub target_p99_cycles: u64,
    /// Allowed deadline-miss fraction — the error budget. A burn rate of
    /// 1.0 means misses arrive exactly at budget.
    pub budget_miss_fraction: f64,
    /// Windowed burn rate at/above which the verdict is Breach.
    pub fast_burn: f64,
    /// Intervals the burn rate is averaged over (the smoothing window).
    pub window_intervals: usize,
    /// Whether a Breach verdict counts as a hot pump for the service's
    /// overload ladder. Off for pure measurement (e.g. the chaos bench
    /// compares SLO detection latency against the quarantine path, which
    /// the ladder's shedding would starve of deadline observations).
    pub wire_ladder: bool,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_p99_cycles: 500,
            budget_miss_fraction: 0.05,
            fast_burn: 4.0,
            window_intervals: 4,
            wire_ladder: true,
        }
    }
}

impl SloConfig {
    /// Validates the configuration, returning it unchanged when sound.
    pub fn try_new(self) -> Result<Self, MpGraphError> {
        if !(self.budget_miss_fraction > 0.0 && self.budget_miss_fraction <= 1.0) {
            return Err(MpGraphError::config(
                "livetel",
                "budget_miss_fraction must be in (0, 1]",
            ));
        }
        if self.fast_burn < 1.0 {
            return Err(MpGraphError::config("livetel", "fast_burn must be >= 1"));
        }
        if self.window_intervals == 0 {
            return Err(MpGraphError::config(
                "livetel",
                "window_intervals must be > 0",
            ));
        }
        Ok(self)
    }
}

/// Configuration for [`LiveTelemetry`].
#[derive(Debug, Clone, Copy)]
pub struct LiveTelemetryConfig {
    /// Pump cycles per telemetry interval.
    pub interval_pumps: u64,
    /// Service clock frequency assumed when converting cycle spans to
    /// seconds for the accesses/s rate.
    pub ghz: f64,
    /// Tags the pump's forward stage as int8 (quantized student) rather
    /// than f32 in [`PumpStageMetrics`].
    pub int8: bool,
    pub slo: SloConfig,
}

impl Default for LiveTelemetryConfig {
    fn default() -> Self {
        LiveTelemetryConfig {
            interval_pumps: 16,
            ghz: 2.0,
            int8: false,
            slo: SloConfig::default(),
        }
    }
}

impl LiveTelemetryConfig {
    /// Validates the configuration, returning it unchanged when sound.
    pub fn try_new(self) -> Result<Self, MpGraphError> {
        if self.interval_pumps == 0 {
            return Err(MpGraphError::config(
                "livetel",
                "interval_pumps must be > 0",
            ));
        }
        if self.ghz.is_nan() || self.ghz <= 0.0 {
            return Err(MpGraphError::config("livetel", "ghz must be > 0"));
        }
        self.slo.try_new()?;
        Ok(self)
    }
}

/// SLO verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloVerdict {
    /// Burn rate under budget and latency inside the target.
    Ok,
    /// Budget burning (windowed burn >= 1) or p99 over target.
    Warn,
    /// Windowed burn at/above the fast-burn threshold.
    Breach,
}

impl SloVerdict {
    /// Numeric severity for serialized artifacts (0 / 1 / 2).
    pub fn level(self) -> u64 {
        match self {
            SloVerdict::Ok => 0,
            SloVerdict::Warn => 1,
            SloVerdict::Breach => 2,
        }
    }
}

/// One stream's share of a telemetry interval.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LiveStreamDelta {
    pub id: u64,
    pub delta_ml_served: u64,
    pub delta_fallback_served: u64,
    pub delta_shed: u64,
    /// Cooldown accesses still owed before recovery (0 when healthy).
    pub cooldown_remaining: u64,
}

/// One telemetry interval: cumulative totals (monotonic across the NDJSON
/// stream), per-interval counter deltas, and derived rates. The SLO fields
/// are filled by [`SloMonitor::observe`] after derivation.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LiveInterval {
    /// 0-based interval ordinal.
    pub seq: u64,
    /// Service clock at the previous interval close, in cycles.
    pub start_cycle: u64,
    /// Service clock at this close.
    pub end_cycle: u64,
    /// Cycle span of the interval.
    pub cycles: u64,
    // Cumulative counters — each is monotonically non-decreasing across
    // the stream, which is what live consumers checksum.
    pub total_ingested: u64,
    pub total_ml_processed: u64,
    pub total_fallback_processed: u64,
    pub total_shed: u64,
    pub total_deadline_misses: u64,
    // Per-interval deltas (cumulative now minus cumulative at the last
    // interval; non-negative by counter monotonicity).
    pub delta_ingested: u64,
    pub delta_ml_processed: u64,
    pub delta_fallback_processed: u64,
    pub delta_shed: u64,
    pub delta_deferred: u64,
    pub delta_quarantines: u64,
    pub delta_deadline_observations: u64,
    pub delta_deadline_misses: u64,
    // Derived rates, finite even for empty or zero-length intervals.
    pub accesses_per_sec: f64,
    pub shed_fraction: f64,
    pub deadline_miss_fraction: f64,
    pub ml_fraction: f64,
    // Gauges at interval close.
    pub overload_level: u64,
    pub degraded_streams: u64,
    /// Cumulative end-to-end prediction-latency p99, in cycles.
    pub p99_latency_cycles: u64,
    // SLO state (filled by the monitor).
    pub burn_rate: f64,
    pub windowed_burn_rate: f64,
    pub verdict_level: u64,
    /// Per-stream ML/fallback split over the interval.
    pub per_stream: Vec<LiveStreamDelta>,
}

/// Total shed work (speculative + queue-full + deadline-deferred).
fn shed_total(m: &ServeMetrics) -> u64 {
    m.shed_speculative + m.shed_queue_full + m.timeout_deferred
}

fn sum_misses(m: &ServeMetrics) -> (u64, u64) {
    m.per_stream.iter().fold((0, 0), |(obs, miss), s| {
        (obs + s.deadline_observations, miss + s.deadline_misses)
    })
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Derives one telemetry interval from two cumulative snapshots of the
/// serve counters. Pure: the property tests pin that every delta is
/// non-negative, that chained intervals sum back to the final cumulative
/// snapshot, and that every rate is finite even when `start_cycle ==
/// end_cycle` or nothing happened.
pub fn derive_interval(
    seq: u64,
    prev: &ServeMetrics,
    cur: &ServeMetrics,
    start_cycle: u64,
    end_cycle: u64,
    ghz: f64,
) -> LiveInterval {
    let (prev_obs, prev_miss) = sum_misses(prev);
    let (cur_obs, cur_miss) = sum_misses(cur);
    let delta_ingested = cur.ingested.saturating_sub(prev.ingested);
    let delta_ml = cur.ml_processed.saturating_sub(prev.ml_processed);
    let delta_fallback = cur
        .fallback_processed
        .saturating_sub(prev.fallback_processed);
    let delta_shed = shed_total(cur).saturating_sub(shed_total(prev));
    let delta_obs = cur_obs.saturating_sub(prev_obs);
    let delta_miss = cur_miss.saturating_sub(prev_miss);
    let cycles = end_cycle.saturating_sub(start_cycle);
    let span_secs = cycles_to_ns(cycles, ghz) * 1e-9;
    let per_stream = cur
        .per_stream
        .iter()
        .map(|s| {
            let p = prev.per_stream.iter().find(|q| q.id == s.id);
            let base = |f: fn(&crate::obs::StreamServeMetrics) -> u64| p.map_or(0, f);
            LiveStreamDelta {
                id: s.id,
                delta_ml_served: s.ml_served.saturating_sub(base(|q| q.ml_served)),
                delta_fallback_served: s
                    .fallback_served
                    .saturating_sub(base(|q| q.fallback_served)),
                delta_shed: s.shed.saturating_sub(base(|q| q.shed)),
                cooldown_remaining: s.cooldown_remaining,
            }
        })
        .collect();
    LiveInterval {
        seq,
        start_cycle,
        end_cycle,
        cycles,
        total_ingested: cur.ingested,
        total_ml_processed: cur.ml_processed,
        total_fallback_processed: cur.fallback_processed,
        total_shed: shed_total(cur),
        total_deadline_misses: cur_miss,
        delta_ingested,
        delta_ml_processed: delta_ml,
        delta_fallback_processed: delta_fallback,
        delta_shed,
        delta_deferred: cur
            .deferred_fallback_processed
            .saturating_sub(prev.deferred_fallback_processed),
        delta_quarantines: cur.quarantines.saturating_sub(prev.quarantines),
        delta_deadline_observations: delta_obs,
        delta_deadline_misses: delta_miss,
        accesses_per_sec: if span_secs > 0.0 {
            delta_ingested as f64 / span_secs
        } else {
            0.0
        },
        shed_fraction: frac(delta_shed, delta_ingested),
        deadline_miss_fraction: frac(delta_miss, delta_obs),
        ml_fraction: frac(delta_ml, delta_ml + delta_fallback),
        overload_level: cur.overload_level,
        degraded_streams: cur.degraded_streams,
        p99_latency_cycles: cur.prediction_latency.p99,
        burn_rate: 0.0,
        windowed_burn_rate: 0.0,
        verdict_level: 0,
        per_stream,
    }
}

/// Error-budget burn-rate monitor over the live interval series.
#[derive(Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    burns: VecDeque<f64>,
    verdict: SloVerdict,
    intervals: u64,
    escalations: u64,
    recoveries: u64,
    breach_intervals: u64,
    worst_burn: f64,
    current_burn: f64,
}

impl SloMonitor {
    pub fn new(cfg: SloConfig) -> Self {
        SloMonitor {
            cfg,
            burns: VecDeque::with_capacity(cfg.window_intervals.max(1)),
            verdict: SloVerdict::Ok,
            intervals: 0,
            escalations: 0,
            recoveries: 0,
            breach_intervals: 0,
            worst_burn: 0.0,
            current_burn: 0.0,
        }
    }

    /// Feeds one interval: computes its burn rate, updates the windowed
    /// burn and the verdict, writes the SLO fields back into the interval,
    /// and returns the trace event when the verdict changed.
    pub fn observe(&mut self, interval: &mut LiveInterval) -> Option<TraceEvent> {
        self.intervals += 1;
        let burn = interval.deadline_miss_fraction / self.cfg.budget_miss_fraction;
        self.burns.push_back(burn);
        while self.burns.len() > self.cfg.window_intervals {
            self.burns.pop_front();
        }
        let windowed = self.burns.iter().sum::<f64>() / self.burns.len() as f64;
        self.current_burn = windowed;
        self.worst_burn = self.worst_burn.max(windowed);
        let next = if windowed >= self.cfg.fast_burn {
            SloVerdict::Breach
        } else if windowed >= 1.0 || interval.p99_latency_cycles > self.cfg.target_p99_cycles {
            SloVerdict::Warn
        } else {
            SloVerdict::Ok
        };
        interval.burn_rate = burn;
        interval.windowed_burn_rate = windowed;
        interval.verdict_level = next.level();
        if next == SloVerdict::Breach {
            self.breach_intervals += 1;
        }
        let prev = self.verdict;
        self.verdict = next;
        if next > prev {
            self.escalations += 1;
            Some(TraceEvent::SloEscalate {
                level: next.level() as u8,
                burn_x100: (windowed * 100.0).clamp(0.0, f64::from(u16::MAX)) as u16,
            })
        } else if next < prev {
            self.recoveries += 1;
            Some(TraceEvent::SloRecover {
                level: next.level() as u8,
            })
        } else {
            None
        }
    }

    pub fn verdict(&self) -> SloVerdict {
        self.verdict
    }

    pub fn metrics(&self) -> SloServeMetrics {
        SloServeMetrics {
            target_p99_cycles: self.cfg.target_p99_cycles,
            budget_miss_fraction: self.cfg.budget_miss_fraction,
            intervals: self.intervals,
            escalations: self.escalations,
            recoveries: self.recoveries,
            breach_intervals: self.breach_intervals,
            worst_burn_rate: self.worst_burn,
            current_burn_rate: self.current_burn,
            verdict_level: self.verdict.level(),
        }
    }
}

/// Renders the serve counters as a Prometheus-style text exposition
/// (`# TYPE` comments, `name value` samples, `{stream="N"}` labels).
pub fn render_exposition(m: &ServeMetrics) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(2048);
    let mut counter = |name: &str, help: &str, v: u64| {
        let _ = writeln!(s, "# HELP {name} {help}");
        let _ = writeln!(s, "# TYPE {name} counter");
        let _ = writeln!(s, "{name} {v}");
    };
    counter(
        "mpgraph_serve_ingested_total",
        "Accesses ingested.",
        m.ingested,
    );
    counter(
        "mpgraph_serve_ml_processed_total",
        "Accesses served by ML inference.",
        m.ml_processed,
    );
    counter(
        "mpgraph_serve_fallback_processed_total",
        "Accesses served by the fallback.",
        m.fallback_processed,
    );
    counter(
        "mpgraph_serve_shed_total",
        "Accesses shed (speculative + queue-full + deferred).",
        shed_total(m),
    );
    counter(
        "mpgraph_serve_quarantines_total",
        "Per-stream quarantine entries.",
        m.quarantines,
    );
    counter(
        "mpgraph_serve_slo_escalations_total",
        "SLO verdict raises.",
        m.slo.escalations,
    );
    let mut gauge = |name: &str, help: &str, v: f64| {
        let _ = writeln!(s, "# HELP {name} {help}");
        let _ = writeln!(s, "# TYPE {name} gauge");
        let _ = writeln!(s, "{name} {v}");
    };
    gauge(
        "mpgraph_serve_overload_level",
        "Overload-ladder level.",
        m.overload_level as f64,
    );
    gauge(
        "mpgraph_serve_shed_fraction",
        "Cumulative shed fraction.",
        m.shed_fraction,
    );
    gauge(
        "mpgraph_serve_prediction_latency_p99_cycles",
        "End-to-end prediction-latency p99.",
        m.prediction_latency.p99 as f64,
    );
    gauge(
        "mpgraph_serve_slo_burn_rate",
        "Windowed error-budget burn rate.",
        m.slo.current_burn_rate,
    );
    gauge(
        "mpgraph_serve_slo_verdict",
        "SLO verdict (0 ok, 1 warn, 2 breach).",
        m.slo.verdict_level as f64,
    );
    gauge(
        "mpgraph_serve_telemetry_overhead_fraction",
        "Telemetry wall time over pump wall time.",
        m.pump_stages.self_overhead_fraction,
    );
    let _ = writeln!(
        s,
        "# HELP mpgraph_serve_stream_ml_served_total Per-stream ML-served accesses."
    );
    let _ = writeln!(s, "# TYPE mpgraph_serve_stream_ml_served_total counter");
    for st in &m.per_stream {
        let _ = writeln!(
            s,
            "mpgraph_serve_stream_ml_served_total{{stream=\"{}\"}} {}",
            st.id, st.ml_served
        );
    }
    let _ = writeln!(
        s,
        "# HELP mpgraph_serve_stream_cooldown_remaining Cooldown accesses before recovery."
    );
    let _ = writeln!(s, "# TYPE mpgraph_serve_stream_cooldown_remaining gauge");
    for st in &m.per_stream {
        let _ = writeln!(
            s,
            "mpgraph_serve_stream_cooldown_remaining{{stream=\"{}\"}} {}",
            st.id, st.cooldown_remaining
        );
    }
    s
}

/// Writes `text` to `path` atomically: the bytes land in `<path>.tmp`
/// first and are renamed into place, so a reader polling `path` sees
/// either the previous dump or the new one, never a torn write.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

enum LiveSink {
    Stdout,
    File(std::io::BufWriter<std::fs::File>),
}

impl LiveSink {
    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        match self {
            LiveSink::Stdout => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                lock.write_all(line.as_bytes())?;
                lock.write_all(b"\n")?;
                lock.flush()
            }
            LiveSink::File(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
                // NDJSON is a live feed: land each record so a tailing
                // consumer sees intervals as they close.
                w.flush()
            }
        }
    }
}

/// Per-stage pump timing accumulators (histograms live here until
/// snapshotted into [`PumpStageMetrics`]).
struct PumpStages {
    queue_wait: LatencyHistogram,
    assembly: LatencyHistogram,
    forward_f32: LatencyHistogram,
    forward_int8: LatencyHistogram,
    deferred: LatencyHistogram,
    pump_wall_ns: u64,
    telemetry_wall_ns: u64,
}

impl PumpStages {
    fn new() -> Self {
        PumpStages {
            queue_wait: LatencyHistogram::new(),
            assembly: LatencyHistogram::new(),
            forward_f32: LatencyHistogram::new(),
            forward_int8: LatencyHistogram::new(),
            deferred: LatencyHistogram::new(),
            pump_wall_ns: 0,
            telemetry_wall_ns: 0,
        }
    }

    fn metrics(&self) -> PumpStageMetrics {
        PumpStageMetrics {
            queue_wait_cycles: self.queue_wait.snapshot(),
            assembly_ns: self.assembly.snapshot(),
            forward_f32_ns: self.forward_f32.snapshot(),
            forward_int8_ns: self.forward_int8.snapshot(),
            deferred_fallback_ns: self.deferred.snapshot(),
            pump_wall_ns: self.pump_wall_ns,
            telemetry_wall_ns: self.telemetry_wall_ns,
            self_overhead_fraction: if self.pump_wall_ns == 0 {
                0.0
            } else {
                self.telemetry_wall_ns as f64 / self.pump_wall_ns as f64
            },
        }
    }
}

/// The live telemetry attachment for a `PrefetchService`. Owns the
/// interval state, the SLO monitor, the stage timers, and the sinks; the
/// service calls into it from `pump` and folds its rollups into
/// [`ServeMetrics`] via [`LiveTelemetry::overlay`].
pub struct LiveTelemetry {
    cfg: LiveTelemetryConfig,
    slo: SloMonitor,
    sink: Option<LiveSink>,
    expose: Option<PathBuf>,
    stages: PumpStages,
    /// Serve counters at the last interval close.
    prev: ServeMetrics,
    prev_cycle: u64,
    seq: u64,
    pumps_since_interval: u64,
    summaries: Vec<LiveIntervalSummary>,
    sink_errors: u64,
}

impl LiveTelemetry {
    pub fn new(cfg: LiveTelemetryConfig) -> Self {
        LiveTelemetry {
            slo: SloMonitor::new(cfg.slo),
            cfg,
            sink: None,
            expose: None,
            stages: PumpStages::new(),
            prev: ServeMetrics::default(),
            prev_cycle: 0,
            seq: 0,
            pumps_since_interval: 0,
            summaries: Vec::new(),
            sink_errors: 0,
        }
    }

    /// Attaches the NDJSON sink: `"-"` streams to stdout, anything else
    /// creates/truncates that file. Fails up front on an unwritable path
    /// rather than silently dropping every interval later.
    pub fn with_sink(mut self, spec: &str) -> Result<Self, MpGraphError> {
        self.sink = Some(if spec == "-" {
            LiveSink::Stdout
        } else {
            let f = std::fs::File::create(spec).map_err(|e| {
                MpGraphError::config(
                    "livetel",
                    format!("cannot open live-metrics sink {spec}: {e}"),
                )
            })?;
            LiveSink::File(std::io::BufWriter::new(f))
        });
        Ok(self)
    }

    /// Attaches the Prometheus-style exposition file, atomically rewritten
    /// at each interval close.
    pub fn with_expose(mut self, path: impl Into<PathBuf>) -> Self {
        self.expose = Some(path.into());
        self
    }

    pub fn config(&self) -> &LiveTelemetryConfig {
        &self.cfg
    }

    /// Whether the SLO verdict should currently count as a hot pump for
    /// the overload ladder.
    pub fn ladder_hot(&self) -> bool {
        self.cfg.slo.wire_ladder && self.slo.verdict() == SloVerdict::Breach
    }

    pub fn verdict(&self) -> SloVerdict {
        self.slo.verdict()
    }

    /// Intervals closed so far.
    pub fn intervals_closed(&self) -> u64 {
        self.seq
    }

    /// NDJSON/exposition write failures (the service keeps running).
    pub fn sink_errors(&self) -> u64 {
        self.sink_errors
    }

    // --- stage timers (called from `pump`, only while attached) ---

    pub fn note_queue_wait(&mut self, cycles: u64) {
        self.stages.queue_wait.record(cycles);
    }

    pub fn note_assembly_ns(&mut self, ns: u64) {
        self.stages.assembly.record(ns);
    }

    /// Records the forward-stage span, tagged f32 or int8 by
    /// [`LiveTelemetryConfig::int8`].
    pub fn note_forward_ns(&mut self, ns: u64) {
        if self.cfg.int8 {
            self.stages.forward_int8.record(ns);
        } else {
            self.stages.forward_f32.record(ns);
        }
    }

    pub fn note_deferred_ns(&mut self, ns: u64) {
        self.stages.deferred.record(ns);
    }

    pub fn note_pump_wall_ns(&mut self, ns: u64) {
        self.stages.pump_wall_ns += ns;
    }

    /// Counts one pump; true when this pump closes an interval.
    pub fn interval_due(&mut self) -> bool {
        self.pumps_since_interval += 1;
        self.pumps_since_interval >= self.cfg.interval_pumps
    }

    /// Closes one interval at `at_record` on the trace clock: derives the
    /// delta record from `cur`, runs the SLO monitor, emits NDJSON and the
    /// exposition dump, and returns the trace events to stamp (the
    /// interval marker plus any verdict change). Self-times into
    /// `telemetry_wall_ns`.
    pub fn close_interval(
        &mut self,
        at_record: u64,
        clock: u64,
        cur: &ServeMetrics,
    ) -> Vec<TraceEvent> {
        let started = std::time::Instant::now();
        self.pumps_since_interval = 0;
        let mut interval = derive_interval(
            self.seq,
            &self.prev,
            cur,
            self.prev_cycle,
            clock,
            self.cfg.ghz,
        );
        let slo_event = self.slo.observe(&mut interval);
        let mut events = vec![TraceEvent::TelemetryInterval {
            seq: u32::try_from(self.seq).unwrap_or(u32::MAX),
        }];
        events.extend(slo_event);
        self.summaries.push(LiveIntervalSummary {
            seq: interval.seq,
            at_record,
            end_cycle: interval.end_cycle,
            delta_ingested: interval.delta_ingested,
            delta_shed: interval.delta_shed,
            delta_deadline_observations: interval.delta_deadline_observations,
            delta_deadline_misses: interval.delta_deadline_misses,
            shed_fraction: interval.shed_fraction,
            deadline_miss_fraction: interval.deadline_miss_fraction,
            burn_rate: interval.windowed_burn_rate,
            verdict_level: interval.verdict_level,
            queue_wait_p99_cycles: self.stages.queue_wait.snapshot().p99,
            forward_p99_ns: self
                .stages
                .forward_f32
                .snapshot()
                .p99
                .max(self.stages.forward_int8.snapshot().p99),
        });
        if let Some(sink) = self.sink.as_mut() {
            match serde_json::to_string(&interval) {
                Ok(line) => {
                    if sink.write_line(&line).is_err() {
                        self.sink_errors += 1;
                    }
                }
                Err(_) => self.sink_errors += 1,
            }
        }
        if let Some(path) = self.expose.clone() {
            let mut full = cur.clone();
            self.overlay(&mut full);
            if write_atomic(&path, &render_exposition(&full)).is_err() {
                self.sink_errors += 1;
            }
        }
        self.prev = cur.clone();
        self.prev_cycle = clock;
        self.seq += 1;
        self.stages.telemetry_wall_ns += started.elapsed().as_nanos() as u64;
        events
    }

    /// Closes the trailing partial interval (if any counters moved or no
    /// interval was ever written) and flushes the sink — the end-of-run /
    /// EOF path, so a live session's last accesses are never lost.
    pub fn finish(&mut self, at_record: u64, clock: u64, cur: &ServeMetrics) -> Vec<TraceEvent> {
        let moved = cur.ingested != self.prev.ingested || self.seq == 0;
        let events = if moved {
            self.close_interval(at_record, clock, cur)
        } else {
            Vec::new()
        };
        if let Some(LiveSink::File(w)) = self.sink.as_mut() {
            if w.flush().is_err() {
                self.sink_errors += 1;
            }
        }
        events
    }

    /// Folds the live rollups (stage spans, SLO state, interval series)
    /// into a serve-counter snapshot.
    pub fn overlay(&self, m: &mut ServeMetrics) {
        m.pump_stages = self.stages.metrics();
        m.slo = self.slo.metrics();
        m.live = self.summaries.clone();
    }

    /// The closed-interval series (for trace export).
    pub fn summaries(&self) -> &[LiveIntervalSummary] {
        &self.summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::StreamServeMetrics;

    fn serve_counters(ingested: u64, misses: u64, obs: u64) -> ServeMetrics {
        ServeMetrics {
            ingested,
            ml_processed: ingested / 2,
            fallback_processed: ingested - ingested / 2,
            per_stream: vec![StreamServeMetrics {
                id: 0,
                deadline_observations: obs,
                deadline_misses: misses,
                ..StreamServeMetrics::default()
            }],
            ..ServeMetrics::default()
        }
    }

    #[test]
    fn interval_deltas_and_rates_derive_from_cumulative_snapshots() {
        let prev = serve_counters(100, 2, 40);
        let cur = serve_counters(180, 10, 80);
        let iv = derive_interval(3, &prev, &cur, 1000, 2000, 2.0);
        assert_eq!(iv.seq, 3);
        assert_eq!(iv.cycles, 1000);
        assert_eq!(iv.delta_ingested, 80);
        assert_eq!(iv.total_ingested, 180);
        assert_eq!(iv.delta_deadline_misses, 8);
        assert_eq!(iv.delta_deadline_observations, 40);
        assert!((iv.deadline_miss_fraction - 0.2).abs() < 1e-12);
        // 1000 cycles at 2 GHz = 500 ns; 80 accesses over 500e-9 s.
        assert!((iv.accesses_per_sec - 80.0 / 500e-9).abs() < 1.0);
    }

    #[test]
    fn zero_length_and_empty_intervals_keep_every_rate_finite() {
        let m = serve_counters(50, 0, 0);
        let iv = derive_interval(0, &m, &m, 700, 700, 2.0);
        assert_eq!(iv.delta_ingested, 0);
        for r in [
            iv.accesses_per_sec,
            iv.shed_fraction,
            iv.deadline_miss_fraction,
            iv.ml_fraction,
        ] {
            assert!(r.is_finite(), "rate not finite: {r}");
            assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn slo_monitor_escalates_on_burn_and_recovers_when_budget_stops_burning() {
        let cfg = SloConfig {
            budget_miss_fraction: 0.05,
            fast_burn: 4.0,
            window_intervals: 2,
            wire_ladder: true,
            target_p99_cycles: 10_000,
        };
        let mut mon = SloMonitor::new(cfg);
        let mut calm = LiveInterval {
            deadline_miss_fraction: 0.0,
            ..LiveInterval::default()
        };
        assert_eq!(mon.observe(&mut calm), None);
        assert_eq!(mon.verdict(), SloVerdict::Ok);

        // 50% misses on a 5% budget: burn 10, windowed (0+10)/2 = 5 ≥ 4.
        let mut bad = LiveInterval {
            deadline_miss_fraction: 0.5,
            ..LiveInterval::default()
        };
        let ev = mon.observe(&mut bad);
        assert_eq!(mon.verdict(), SloVerdict::Breach);
        assert!(matches!(ev, Some(TraceEvent::SloEscalate { level: 2, .. })));
        assert_eq!(bad.verdict_level, 2);
        assert!(bad.windowed_burn_rate >= 4.0);

        // Calm intervals flush the window. The first one still averages
        // with the bad interval (windowed (10+0)/2 = 5, still Breach);
        // the second empties the window and the verdict drops to Ok with
        // a recover event.
        let mut after = LiveInterval::default();
        assert_eq!(mon.observe(&mut after), None);
        assert_eq!(mon.verdict(), SloVerdict::Breach);
        let mut after2 = LiveInterval::default();
        let second = mon.observe(&mut after2);
        assert_eq!(mon.verdict(), SloVerdict::Ok);
        assert!(matches!(second, Some(TraceEvent::SloRecover { level: 0 })));
        let m = mon.metrics();
        assert_eq!(m.escalations, 1);
        assert!(m.recoveries >= 1);
        // The bad interval plus the calm one whose window still averaged
        // at Breach.
        assert_eq!(m.breach_intervals, 2);
        assert!(m.worst_burn_rate >= 4.0);
    }

    #[test]
    fn p99_over_target_warns_without_breaching() {
        let mut mon = SloMonitor::new(SloConfig {
            target_p99_cycles: 100,
            ..SloConfig::default()
        });
        let mut iv = LiveInterval {
            p99_latency_cycles: 250,
            ..LiveInterval::default()
        };
        let ev = mon.observe(&mut iv);
        assert_eq!(mon.verdict(), SloVerdict::Warn);
        assert!(matches!(ev, Some(TraceEvent::SloEscalate { level: 1, .. })));
    }

    #[test]
    fn exposition_renders_counters_gauges_and_stream_labels() {
        let mut m = serve_counters(500, 3, 100);
        m.quarantines = 2;
        m.per_stream[0].ml_served = 77;
        m.per_stream[0].cooldown_remaining = 41;
        m.slo.current_burn_rate = 1.5;
        m.slo.verdict_level = 1;
        let text = render_exposition(&m);
        assert!(text.contains("# TYPE mpgraph_serve_ingested_total counter"));
        assert!(text.contains("mpgraph_serve_ingested_total 500"));
        assert!(text.contains("mpgraph_serve_quarantines_total 2"));
        assert!(text.contains("# TYPE mpgraph_serve_slo_burn_rate gauge"));
        assert!(text.contains("mpgraph_serve_slo_burn_rate 1.5"));
        assert!(text.contains("mpgraph_serve_stream_ml_served_total{stream=\"0\"} 77"));
        assert!(text.contains("mpgraph_serve_stream_cooldown_remaining{stream=\"0\"} 41"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparsable sample value in {line:?}"
            );
        }
    }

    #[test]
    fn atomic_exposition_rewrite_replaces_the_previous_dump() {
        let dir = std::env::temp_dir().join("mpgraph_livetel_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.prom");
        write_atomic(&path, "first 1\n").expect("first write");
        write_atomic(&path, "second 2\n").expect("second write");
        let got = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(got, "second 2\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_closes_intervals_and_counts_monotonic_sequence() {
        let mut tel = LiveTelemetry::new(LiveTelemetryConfig {
            interval_pumps: 2,
            ..LiveTelemetryConfig::default()
        });
        assert!(!tel.interval_due());
        assert!(tel.interval_due());
        let cur = serve_counters(40, 0, 10);
        let events = tel.close_interval(39, 400, &cur);
        assert!(matches!(
            events.as_slice(),
            [TraceEvent::TelemetryInterval { seq: 0 }]
        ));
        let cur2 = serve_counters(90, 0, 20);
        let events = tel.close_interval(89, 900, &cur2);
        assert!(matches!(
            events.as_slice(),
            [TraceEvent::TelemetryInterval { seq: 1 }]
        ));
        assert_eq!(tel.intervals_closed(), 2);
        let s = tel.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].delta_ingested, 40);
        assert_eq!(s[1].delta_ingested, 50);
        assert_eq!(s[1].at_record, 89);
        // finish() with no counter movement adds nothing new.
        let events = tel.finish(95, 950, &cur2);
        assert!(events.is_empty());
        assert_eq!(tel.intervals_closed(), 2);
    }
}
