//! Workspace error taxonomy.
//!
//! Library code reports failures through [`MpGraphError`] instead of
//! panicking: configuration problems surface at construction time via
//! `try_new` constructors, shape mismatches at call sites return
//! recoverable errors, and training anomalies (NaN loss, divergence) are
//! reported so callers can roll back and retry rather than abort.

use std::fmt;

/// All recoverable failure classes in the MPGraph stack.
#[derive(Debug, Clone, PartialEq)]
pub enum MpGraphError {
    /// A configuration value is out of range or inconsistent.
    Config {
        component: &'static str,
        reason: String,
    },
    /// An input's dimensions disagree with what the component was built for.
    Shape {
        component: &'static str,
        expected: usize,
        actual: usize,
    },
    /// Training failed in a way the caller can react to (e.g. NaN loss
    /// that exhausted rollback retries).
    Training {
        component: &'static str,
        reason: String,
    },
}

impl MpGraphError {
    pub fn config(component: &'static str, reason: impl Into<String>) -> Self {
        MpGraphError::Config {
            component,
            reason: reason.into(),
        }
    }

    pub fn shape(component: &'static str, expected: usize, actual: usize) -> Self {
        MpGraphError::Shape {
            component,
            expected,
            actual,
        }
    }

    pub fn training(component: &'static str, reason: impl Into<String>) -> Self {
        MpGraphError::Training {
            component,
            reason: reason.into(),
        }
    }

    /// The component that raised the error.
    pub fn component(&self) -> &'static str {
        match self {
            MpGraphError::Config { component, .. }
            | MpGraphError::Shape { component, .. }
            | MpGraphError::Training { component, .. } => component,
        }
    }
}

impl fmt::Display for MpGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpGraphError::Config { component, reason } => {
                write!(f, "{component}: invalid configuration: {reason}")
            }
            MpGraphError::Shape {
                component,
                expected,
                actual,
            } => write!(
                f,
                "{component}: shape mismatch: expected {expected}, got {actual}"
            ),
            MpGraphError::Training { component, reason } => {
                write!(f, "{component}: training failed: {reason}")
            }
        }
    }
}

impl std::error::Error for MpGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpGraphError::config("controller", "probe_window must be > 0");
        assert!(e.to_string().contains("controller"));
        assert!(e.to_string().contains("probe_window"));
        assert_eq!(e.component(), "controller");

        let e = MpGraphError::shape("controller", 4, 2);
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("got 2"));

        let e = MpGraphError::training("amma", "NaN loss at step 17");
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MpGraphError::config("x", "y"));
    }
}
